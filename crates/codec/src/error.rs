//! Error types for the entropy-coding substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by the bitstream, differencing and Huffman layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// A read ran past the end of the bit stream.
    UnexpectedEndOfStream {
        /// Absolute bit position at which the stream ended.
        bit: usize,
    },
    /// A decoded bit pattern matched no codeword.
    InvalidCodeword,
    /// A symbol fell outside the codebook's alphabet.
    SymbolOutOfRange {
        /// The offending symbol value.
        symbol: i32,
        /// Alphabet size of the codebook.
        alphabet: usize,
    },
    /// A difference value fell outside the representable alphabet range.
    ValueOutOfRange {
        /// The offending difference value.
        value: i32,
        /// Alphabet size of the code.
        alphabet: usize,
    },
    /// Codebook construction was given unusable inputs.
    InvalidCodebook(String),
    /// A delta packet arrived before any reference packet established the
    /// decoder state.
    MissingReference,
    /// A packet's length did not match the codec's configured vector size.
    LengthMismatch {
        /// Expected vector length.
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEndOfStream { bit } => {
                write!(f, "unexpected end of bit stream at bit {bit}")
            }
            CodecError::InvalidCodeword => write!(f, "bit pattern matches no codeword"),
            CodecError::SymbolOutOfRange { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside alphabet of {alphabet}")
            }
            CodecError::ValueOutOfRange { value, alphabet } => {
                let half = (*alphabet / 2) as i32;
                write!(
                    f,
                    "value {value} outside [{}, {}) for alphabet of {alphabet}",
                    -half, half
                )
            }
            CodecError::InvalidCodebook(msg) => write!(f, "invalid codebook: {msg}"),
            CodecError::MissingReference => {
                write!(f, "delta packet received before any reference packet")
            }
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "packet length {actual} does not match configured {expected}")
            }
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CodecError::UnexpectedEndOfStream { bit: 17 }
            .to_string()
            .contains("bit 17"));
        assert!(CodecError::SymbolOutOfRange {
            symbol: 999,
            alphabet: 512
        }
        .to_string()
        .contains("999"));
        assert!(CodecError::LengthMismatch {
            expected: 256,
            actual: 255
        }
        .to_string()
        .contains("256"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<CodecError>();
    }
}
