//! Golomb–Rice coding — the table-free embedded alternative to Huffman.
//!
//! The paper stores a 1.5 kB Huffman codebook on the mote. A common
//! embedded alternative is Golomb–Rice coding, which needs **no table at
//! all**: a value `v ≥ 0` with Rice parameter `k` is sent as `v >> k` in
//! unary followed by the low `k` bits. For the geometric-ish distributions
//! that prediction residuals follow, a well-chosen `k` comes within a few
//! percent of Huffman. The `entropy_stage` ablation quantifies that trade
//! (bits vs. zero table storage) on real measurement deltas; signed deltas
//! are mapped through the standard zigzag transform first.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::CodecError;

/// Largest supported Rice parameter (5 bits of header when adaptive).
pub const MAX_RICE_K: u8 = 24;

/// Cap on a single unary prefix. A corrupt stream would otherwise make
/// the decoder consume unbounded input; real embedded decoders bound the
/// run the same way.
const MAX_QUOTIENT: u32 = 1 << 16;

/// Maps a signed value to the non-negative zigzag domain
/// (`0, −1, 1, −2, … → 0, 1, 2, 3, …`).
///
/// # Examples
///
/// ```
/// use cs_codec::{zigzag_decode, zigzag_encode};
/// assert_eq!(zigzag_encode(0), 0);
/// assert_eq!(zigzag_encode(-1), 1);
/// assert_eq!(zigzag_encode(1), 2);
/// assert_eq!(zigzag_decode(zigzag_encode(-12345)), -12345);
/// ```
pub fn zigzag_encode(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// Encodes one non-negative value with Rice parameter `k`.
///
/// # Panics
///
/// Panics if `k > MAX_RICE_K` or the quotient exceeds the safety cap
/// (which cannot happen for 16-bit deltas with any sane `k`).
pub fn rice_encode_value(value: u32, k: u8, w: &mut BitWriter) {
    assert!(k <= MAX_RICE_K, "rice_encode_value: k too large");
    let q = value >> k;
    assert!(q < MAX_QUOTIENT, "rice_encode_value: quotient overflow");
    for _ in 0..q {
        w.write_bits(1, 1);
    }
    w.write_bits(0, 1);
    if k > 0 {
        w.write_bits(value & ((1 << k) - 1), k);
    }
}

/// Decodes one value encoded by [`rice_encode_value`].
///
/// # Errors
///
/// * [`CodecError::UnexpectedEndOfStream`] on truncation.
/// * [`CodecError::InvalidCodeword`] if the unary prefix exceeds the
///   safety cap (corrupt stream).
pub fn rice_decode_value(k: u8, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
    assert!(k <= MAX_RICE_K, "rice_decode_value: k too large");
    let mut q = 0u32;
    while r.read_bit()? == 1 {
        q += 1;
        if q >= MAX_QUOTIENT {
            return Err(CodecError::InvalidCodeword);
        }
    }
    let low = if k > 0 { r.read_bits(k)? } else { 0 };
    Ok((q << k) | low)
}

/// The Rice parameter minimizing the coded size of `values` (exhaustive
/// over `0..=MAX_RICE_K` using the exact cost formula).
///
/// Returns 0 for an empty slice.
pub fn optimal_rice_k(values: &[u32]) -> u8 {
    let mut best_k = 0u8;
    let mut best_bits = u64::MAX;
    for k in 0..=MAX_RICE_K {
        let bits: u64 = values
            .iter()
            .map(|&v| ((v >> k) as u64) + 1 + k as u64)
            .sum();
        if bits < best_bits {
            best_bits = bits;
            best_k = k;
        }
    }
    best_k
}

/// Encodes a block of signed values adaptively: a 5-bit header carries
/// the per-block optimal `k`, then each value is zigzagged and Rice-coded.
///
/// # Examples
///
/// ```
/// use cs_codec::{rice_decode_block, rice_encode_block, BitReader, BitWriter};
///
/// let deltas = [0_i32, -1, 3, -7, 2, 0, 1];
/// let mut w = BitWriter::new();
/// rice_encode_block(&deltas, &mut w);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(rice_decode_block(deltas.len(), &mut r)?, deltas);
/// # Ok::<(), cs_codec::CodecError>(())
/// ```
pub fn rice_encode_block(values: &[i32], w: &mut BitWriter) {
    let zig: Vec<u32> = values.iter().map(|&v| zigzag_encode(v)).collect();
    let k = optimal_rice_k(&zig);
    w.write_bits(k as u32, 5);
    for &v in &zig {
        rice_encode_value(v, k, w);
    }
}

/// Decodes a block of `count` signed values written by
/// [`rice_encode_block`].
///
/// # Errors
///
/// Propagates bitstream errors; see [`rice_decode_value`].
pub fn rice_decode_block(count: usize, r: &mut BitReader<'_>) -> Result<Vec<i32>, CodecError> {
    let k = r.read_bits(5)? as u8;
    if k > MAX_RICE_K {
        return Err(CodecError::InvalidCodeword);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(zigzag_decode(rice_decode_value(k, r)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zigzag_bijection_small_values() {
        for v in -1000..=1000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_decode(zigzag_encode(i32::MIN / 2)), i32::MIN / 2);
    }

    #[test]
    fn single_value_round_trips_across_k() {
        for k in [0u8, 1, 3, 7, 12] {
            for v in [0u32, 1, 5, 127, 128, 4095] {
                let mut w = BitWriter::new();
                rice_encode_value(v, k, &mut w);
                let bytes = w.finish();
                let mut r = BitReader::new(&bytes);
                assert_eq!(rice_decode_value(k, &mut r).unwrap(), v, "v={v} k={k}");
            }
        }
    }

    #[test]
    fn optimal_k_tracks_magnitude() {
        // Small values want small k; large values want large k.
        let small: Vec<u32> = (0..100).map(|i| i % 3).collect();
        let large: Vec<u32> = (0..100).map(|i| 1000 + i).collect();
        assert!(optimal_rice_k(&small) <= 1);
        assert!(optimal_rice_k(&large) >= 8);
        assert_eq!(optimal_rice_k(&[]), 0);
    }

    #[test]
    fn block_header_carries_k() {
        let values = vec![4000_i32; 16];
        let mut w = BitWriter::new();
        rice_encode_block(&values, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let decoded = rice_decode_block(16, &mut r).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn corrupt_unary_detected() {
        // All-ones stream: unary run never terminates within the cap.
        let bytes = vec![0xFF; 16 * 1024];
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            rice_decode_value(0, &mut r),
            Err(CodecError::InvalidCodeword | CodecError::UnexpectedEndOfStream { .. })
        ));
    }

    #[test]
    fn geometric_data_codes_near_entropy() {
        // Geometric with mean ~8: entropy ≈ log2(8) + ~1.44/…; Rice should
        // land within ~10 % of the ideal for its family.
        let mut state = 99_u64;
        let values: Vec<u32> = (0..4000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // crude geometric via trailing zeros
                ((state % 65536) as f64).log2().max(0.0) as u32
            })
            .collect();
        let zig = values.clone();
        let k = optimal_rice_k(&zig);
        let bits: u64 = zig.iter().map(|&v| ((v >> k) as u64) + 1 + k as u64).sum();
        let mean_bits = bits as f64 / values.len() as f64;
        assert!(mean_bits < 6.0, "mean {mean_bits} bits for small geometric data");
    }

    proptest! {
        #[test]
        fn prop_block_round_trip(values in proptest::collection::vec(-30000_i32..30000, 1..300)) {
            let mut w = BitWriter::new();
            rice_encode_block(&values, &mut w);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(rice_decode_block(values.len(), &mut r).unwrap(), values);
        }

        #[test]
        fn prop_zigzag_round_trip(v in any::<i32>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }
}
