//! MSB-first bit-level I/O.
//!
//! The Huffman coder emits variable-length codes (up to 16 bits in this
//! system); [`BitWriter`] packs them into bytes for the radio and
//! [`BitReader`] unpacks them on the coordinator.

use crate::error::CodecError;

/// Accumulates bits MSB-first into a byte vector.
///
/// # Examples
///
/// ```
/// use cs_codec::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xABCD, 16);
/// let bytes = w.finish();
///
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(16)?, 0xABCD);
/// # Ok::<(), cs_codec::CodecError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final partial byte (0..8).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or greater than 32.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!((1..=32).contains(&count), "write_bits: count must be 1..=32");
        debug_assert!(
            count == 32 || value < (1u32 << count),
            "write_bits: value {value} wider than {count} bits"
        );
        for shift in (0..count).rev() {
            let bit = (value >> shift) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Pads the final byte with zero bits and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, cursor: 0 }
    }

    /// Remaining unread bits.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.cursor
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEndOfStream`] past the end.
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        let byte = self.cursor / 8;
        if byte >= self.bytes.len() {
            return Err(CodecError::UnexpectedEndOfStream { bit: self.cursor });
        }
        let shift = 7 - (self.cursor % 8);
        self.cursor += 1;
        Ok(((self.bytes[byte] >> shift) & 1) as u32)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEndOfStream`] if fewer than `count`
    /// bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or greater than 32.
    pub fn read_bits(&mut self, count: u8) -> Result<u32, CodecError> {
        assert!((1..=32).contains(&count), "read_bits: count must be 1..=32");
        if self.remaining_bits() < count as usize {
            return Err(CodecError::UnexpectedEndOfStream { bit: self.cursor });
        }
        let mut acc = 0u32;
        for _ in 0..count {
            acc = (acc << 1) | self.read_bit()?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn cross_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0110_1001_0110, 12);
        assert_eq!(w.bit_len(), 13);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(12).unwrap(), 0b0110_1001_0110);
        // Padding bits read as zero.
        assert_eq!(r.remaining_bits(), 3);
    }

    #[test]
    fn end_of_stream_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(matches!(
            r.read_bit(),
            Err(CodecError::UnexpectedEndOfStream { bit: 8 })
        ));
        let mut r2 = BitReader::new(&[0xFF]);
        assert!(r2.read_bits(9).is_err());
    }

    #[test]
    fn full_width_values() {
        let mut w = BitWriter::new();
        w.write_bits(u32::MAX, 32);
        w.write_bits(0, 32);
        let b = w.finish();
        let mut r = BitReader::new(&b);
        assert_eq!(r.read_bits(32).unwrap(), u32::MAX);
        assert_eq!(r.read_bits(32).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "count must be")]
    fn zero_count_write_panics() {
        BitWriter::new().write_bits(0, 0);
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec((0u32..=u32::MAX, 1u8..=32), 1..64)) {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for &(v, c) in &values {
                let masked = if c == 32 { v } else { v & ((1u32 << c) - 1) };
                w.write_bits(masked, c);
                expected.push((masked, c));
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (v, c) in expected {
                prop_assert_eq!(r.read_bits(c).unwrap(), v);
            }
        }
    }
}
