//! Length-limited canonical Huffman coding.
//!
//! The paper's entropy stage uses "a complete Huffman codebook of size 512
//! … with a maximum codeword length of 16 bits", trained offline and stored
//! on the mote in 1.5 kB (§IV-A2). This module reproduces that design:
//!
//! * code lengths come from the **package–merge** algorithm, which produces
//!   the optimal prefix code subject to the 16-bit length cap (a plain
//!   Huffman tree over 512 skewed symbols can exceed 16 bits);
//! * codewords are assigned **canonically**, so the codebook serializes as
//!   just the 512 length bytes and both sides rebuild identical tables;
//! * the decoder walks the canonical first-code table bit by bit, exactly
//!   like the table-driven decoder on the iPhone.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::CodecError;

/// Maximum codeword length used throughout the system (paper §IV-A2).
pub const MAX_CODE_LEN: u8 = 16;

/// A trained, canonical, length-limited Huffman codebook over a contiguous
/// alphabet `0..alphabet_size`.
///
/// # Examples
///
/// ```
/// use cs_codec::{BitReader, BitWriter, Codebook};
///
/// // Skewed counts: symbol 0 dominates.
/// let counts = vec![1000_u64, 50, 20, 10, 5, 1, 1, 1];
/// let cb = Codebook::from_counts(&counts, 8)?;
/// let symbols = [0_u16, 0, 1, 2, 0, 7];
/// let mut w = BitWriter::new();
/// cb.encode(&symbols, &mut w)?;
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(cb.decode(&mut r, symbols.len())?, symbols);
/// # Ok::<(), cs_codec::CodecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Codebook {
    /// Code length per symbol (1..=MAX_CODE_LEN).
    lengths: Vec<u8>,
    /// Canonical codeword per symbol (right-aligned).
    codes: Vec<u16>,
    /// Decoder tables: for each length ℓ (1-indexed), the first canonical
    /// code of that length and the index into `sorted_symbols` where codes
    /// of that length start.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    first_index: [u32; MAX_CODE_LEN as usize + 1],
    count_at_len: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by (length, symbol).
    sorted_symbols: Vec<u16>,
}

impl Codebook {
    /// Trains a codebook from symbol counts with a hard length cap of
    /// [`MAX_CODE_LEN`] bits.
    ///
    /// Counts of zero are smoothed to one so *every* symbol receives a
    /// codeword — the system cannot afford escape codes on the mote, and
    /// the paper's codebook is likewise "complete".
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidCodebook`] if the alphabet has fewer
    /// than two symbols, exceeds `u16` range, or cannot satisfy the length
    /// cap (`alphabet_size > 2^MAX_CODE_LEN`).
    pub fn from_counts(counts: &[u64], alphabet_size: usize) -> Result<Self, CodecError> {
        if alphabet_size < 2 {
            return Err(CodecError::InvalidCodebook(
                "alphabet must have at least two symbols".into(),
            ));
        }
        if alphabet_size > (1 << MAX_CODE_LEN) || alphabet_size > u16::MAX as usize + 1 {
            return Err(CodecError::InvalidCodebook(format!(
                "alphabet of {alphabet_size} cannot satisfy the {MAX_CODE_LEN}-bit cap"
            )));
        }
        if counts.len() != alphabet_size {
            return Err(CodecError::InvalidCodebook(format!(
                "got {} counts for an alphabet of {alphabet_size}",
                counts.len()
            )));
        }
        let weights: Vec<u64> = counts.iter().map(|&c| c.max(1)).collect();
        let lengths = package_merge(&weights, MAX_CODE_LEN);
        Self::from_lengths(&lengths)
    }

    /// Rebuilds the canonical codebook from its serialized form — the
    /// per-symbol length bytes (what the mote actually stores and what both
    /// sides must agree on).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidCodebook`] if any length is zero or
    /// exceeds [`MAX_CODE_LEN`], or the lengths violate Kraft equality
    /// (`Σ 2^{-ℓᵢ} ≠ 1`, which a complete prefix code requires).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        if lengths.len() < 2 {
            return Err(CodecError::InvalidCodebook(
                "need at least two symbols".into(),
            ));
        }
        let mut kraft = 0u64; // in units of 2^-MAX_CODE_LEN
        for (i, &l) in lengths.iter().enumerate() {
            if l == 0 || l > MAX_CODE_LEN {
                return Err(CodecError::InvalidCodebook(format!(
                    "symbol {i} has invalid length {l}"
                )));
            }
            kraft += 1u64 << (MAX_CODE_LEN - l);
        }
        if kraft != 1u64 << MAX_CODE_LEN {
            return Err(CodecError::InvalidCodebook(format!(
                "Kraft sum is {kraft}/{} (must be exactly 1)",
                1u64 << MAX_CODE_LEN
            )));
        }

        // Canonical assignment: sort by (length, symbol).
        let mut order: Vec<u16> = (0..lengths.len() as u16).collect();
        order.sort_by_key(|&s| (lengths[s as usize], s));

        let mut codes = vec![0u16; lengths.len()];
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 1];
        let mut count_at_len = [0u32; MAX_CODE_LEN as usize + 1];
        for &s in &order {
            count_at_len[lengths[s as usize] as usize] += 1;
        }
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_code[len] = code;
            first_index[len] = index;
            code += count_at_len[len];
            index += count_at_len[len];
            code <<= 1;
        }
        // Per-symbol codes.
        let mut next_code = first_code;
        for &s in &order {
            let len = lengths[s as usize] as usize;
            codes[s as usize] = next_code[len] as u16;
            next_code[len] += 1;
        }

        Ok(Codebook {
            lengths: lengths.to_vec(),
            codes,
            first_code,
            first_index,
            count_at_len,
            sorted_symbols: order,
        })
    }

    /// Alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }

    /// Per-symbol code lengths — the codebook's serialized form.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// The canonical codeword of `symbol` as `(code, length)`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn codeword(&self, symbol: u16) -> (u16, u8) {
        (
            self.codes[symbol as usize],
            self.lengths[symbol as usize],
        )
    }

    /// Longest codeword length actually used.
    pub fn max_length(&self) -> u8 {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Bytes a mote needs to hold this codebook the way the paper stores it:
    /// a 16-bit code per symbol (1 kB for 512 symbols) plus one length byte
    /// per symbol (512 B) — 1.5 kB total at the paper's alphabet.
    pub fn mote_storage_bytes(&self) -> usize {
        self.alphabet_size() * 2 + self.alphabet_size()
    }

    /// Encodes `symbols` into the writer.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::SymbolOutOfRange`] on the first symbol outside
    /// the alphabet.
    pub fn encode(&self, symbols: &[u16], w: &mut BitWriter) -> Result<(), CodecError> {
        for &s in symbols {
            if s as usize >= self.lengths.len() {
                return Err(CodecError::SymbolOutOfRange {
                    symbol: s as i32,
                    alphabet: self.lengths.len(),
                });
            }
            let (code, len) = self.codeword(s);
            w.write_bits(code as u32, len);
        }
        Ok(())
    }

    /// Expected code length in bits under the given counts — the quantity
    /// the compression-ratio model uses.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the alphabet size.
    pub fn expected_length_bits(&self, counts: &[u64]) -> f64 {
        assert_eq!(counts.len(), self.lengths.len(), "expected_length_bits: size mismatch");
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        counts
            .iter()
            .zip(&self.lengths)
            .map(|(&c, &l)| c as f64 * l as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Decodes exactly `count` symbols from the reader.
    ///
    /// # Errors
    ///
    /// * [`CodecError::UnexpectedEndOfStream`] if the stream is exhausted.
    /// * [`CodecError::InvalidCodeword`] if the accumulated bits exceed the
    ///   longest codeword without matching (corrupt stream).
    pub fn decode(&self, r: &mut BitReader<'_>, count: usize) -> Result<Vec<u16>, CodecError> {
        let mut out = Vec::with_capacity(count);
        self.decode_into(r, count, &mut out)?;
        Ok(out)
    }

    /// Decodes exactly `count` symbols into `out` (cleared first). The
    /// buffer's capacity is reused, so a caller that decodes packets in a
    /// loop allocates at most once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codebook::decode`]; on error `out` holds the
    /// symbols decoded so far.
    pub fn decode_into(
        &self,
        r: &mut BitReader<'_>,
        count: usize,
        out: &mut Vec<u16>,
    ) -> Result<(), CodecError> {
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            out.push(self.decode_symbol(r)?);
        }
        Ok(())
    }

    /// Decodes a single symbol.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codebook::decode`].
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.read_bit()?;
            let n = self.count_at_len[len];
            if n > 0 {
                let offset = code.wrapping_sub(self.first_code[len]);
                if code >= self.first_code[len] && offset < n {
                    return Ok(self.sorted_symbols[(self.first_index[len] + offset) as usize]);
                }
            }
        }
        Err(CodecError::InvalidCodeword)
    }
}

/// Package–merge: optimal code lengths for `weights` under a `max_len` cap.
///
/// Returns one length per weight. Standard formulation: build `max_len`
/// levels of "packages"; every time an original item appears in one of the
/// `2·(n−1)` cheapest level-1 packages, its length increases by one.
fn package_merge(weights: &[u64], max_len: u8) -> Vec<u8> {
    let n = weights.len();
    debug_assert!(n >= 2);
    debug_assert!((1usize << max_len) >= n, "cap infeasible");

    // Items sorted by weight; each package carries the multiset of original
    // item indices it contains.
    let mut base: Vec<(u64, Vec<u16>)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, vec![i as u16]))
        .collect();
    base.sort_by_key(|(w, items)| (*w, items[0]));

    // prev = list at level d+1 (starts empty at the deepest level).
    let mut prev: Vec<(u64, Vec<u16>)> = Vec::new();
    for _level in 0..max_len {
        // Package pairs of prev.
        let mut packaged: Vec<(u64, Vec<u16>)> = Vec::with_capacity(prev.len() / 2);
        let mut it = prev.chunks_exact(2);
        for pair in &mut it {
            let mut items = pair[0].1.clone();
            items.extend_from_slice(&pair[1].1);
            packaged.push((pair[0].0 + pair[1].0, items));
        }
        // Merge with the base items (both sorted by weight).
        let mut merged = Vec::with_capacity(base.len() + packaged.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < packaged.len() {
            let take_base = j >= packaged.len()
                || (i < base.len() && base[i].0 <= packaged[j].0);
            if take_base {
                merged.push(base[i].clone());
                i += 1;
            } else {
                merged.push(std::mem::take(&mut packaged[j]));
                j += 1;
            }
        }
        prev = merged;
    }

    // The 2(n−1) cheapest level-1 entries define the lengths.
    let mut lengths = vec![0u8; n];
    for (_, items) in prev.iter().take(2 * (n - 1)) {
        for &idx in items {
            lengths[idx as usize] += 1;
        }
    }
    lengths
}

/// Maps a clamped difference value in `[-(A/2), A/2 - 1]` to a symbol in
/// `0..A` (two's-complement style offset binary). `A` is the alphabet size,
/// 512 in the paper's system.
///
/// # Errors
///
/// Returns [`CodecError::ValueOutOfRange`] if the value is outside the
/// representable range — wire bytes are attacker-controlled, so the
/// mapping must reject rather than panic.
///
/// # Examples
///
/// ```
/// use cs_codec::{symbol_to_value, value_to_symbol};
/// assert_eq!(value_to_symbol(-256, 512)?, 0);
/// assert_eq!(value_to_symbol(0, 512)?, 256);
/// assert_eq!(value_to_symbol(255, 512)?, 511);
/// assert_eq!(symbol_to_value(value_to_symbol(-100, 512)?, 512)?, -100);
/// assert!(value_to_symbol(256, 512).is_err());
/// # Ok::<(), cs_codec::CodecError>(())
/// ```
pub fn value_to_symbol(value: i32, alphabet: usize) -> Result<u16, CodecError> {
    let half = (alphabet / 2) as i32;
    if value < -half || value >= half {
        return Err(CodecError::ValueOutOfRange { value, alphabet });
    }
    Ok((value + half) as u16)
}

/// Inverse of [`value_to_symbol`].
///
/// # Errors
///
/// Returns [`CodecError::SymbolOutOfRange`] if the symbol is outside the
/// alphabet.
pub fn symbol_to_value(symbol: u16, alphabet: usize) -> Result<i32, CodecError> {
    if symbol as usize >= alphabet {
        return Err(CodecError::SymbolOutOfRange {
            symbol: symbol as i32,
            alphabet,
        });
    }
    Ok(symbol as i32 - (alphabet / 2) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kraft_is_exact(lengths: &[u8]) -> bool {
        let sum: u64 = lengths
            .iter()
            .map(|&l| 1u64 << (MAX_CODE_LEN - l))
            .sum();
        sum == 1u64 << MAX_CODE_LEN
    }

    #[test]
    fn two_symbols_get_one_bit() {
        let cb = Codebook::from_counts(&[10, 1], 2).unwrap();
        assert_eq!(cb.lengths(), &[1, 1]);
    }

    #[test]
    fn skewed_distribution_respects_cap() {
        // Exponentially skewed counts over 512 symbols would drive plain
        // Huffman beyond 16 bits; package-merge must cap it.
        let counts: Vec<u64> = (0..512)
            .map(|i| 1u64 << (30 - (i as u32 / 18).min(30)))
            .collect();
        let cb = Codebook::from_counts(&counts, 512).unwrap();
        assert!(cb.max_length() <= MAX_CODE_LEN);
        assert!(kraft_is_exact(cb.lengths()));
    }

    #[test]
    fn average_length_near_entropy() {
        // Geometric-ish distribution; optimal cap-16 code must be within
        // one bit of entropy (Huffman bound).
        let counts: Vec<u64> = (0..64).map(|i| 4096 >> (i / 8).min(11)).collect();
        let total: u64 = counts.iter().sum();
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let cb = Codebook::from_counts(&counts, 64).unwrap();
        let avg = cb.expected_length_bits(&counts);
        assert!(avg >= entropy - 1e-9, "avg {avg} below entropy {entropy}");
        assert!(avg <= entropy + 1.0, "avg {avg} vs entropy {entropy}");
    }

    #[test]
    fn paper_codebook_storage_is_1_5_kb() {
        let counts = vec![1u64; 512];
        let cb = Codebook::from_counts(&counts, 512).unwrap();
        assert_eq!(cb.mote_storage_bytes(), 1536);
        // Uniform 512 symbols ⇒ exactly 9 bits each.
        assert!(cb.lengths().iter().all(|&l| l == 9));
    }

    #[test]
    fn round_trip_through_lengths() {
        let counts: Vec<u64> = (1..=100).map(|i| i * i).collect();
        let cb = Codebook::from_counts(&counts, 100).unwrap();
        let rebuilt = Codebook::from_lengths(cb.lengths()).unwrap();
        assert_eq!(cb, rebuilt);
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let cb = Codebook::from_counts(&[100, 1, 1, 1], 4).unwrap();
        let mut w = BitWriter::new();
        cb.encode(&[1, 2, 3, 1, 2], &mut w).unwrap();
        let mut bytes = w.finish();
        bytes.truncate(1);
        let mut r = BitReader::new(&bytes);
        assert!(cb.decode(&mut r, 5).is_err());
    }

    #[test]
    fn invalid_codebooks_rejected() {
        assert!(Codebook::from_counts(&[1], 1).is_err());
        assert!(Codebook::from_lengths(&[0, 1]).is_err());
        assert!(Codebook::from_lengths(&[17, 1]).is_err());
        // Kraft violation: three 1-bit codes.
        assert!(Codebook::from_lengths(&[1, 1, 1]).is_err());
        // Incomplete code (Kraft < 1).
        assert!(Codebook::from_lengths(&[2, 2, 2]).is_err());
    }

    #[test]
    fn symbol_value_mapping() {
        for v in -256..256 {
            assert_eq!(
                symbol_to_value(value_to_symbol(v, 512).unwrap(), 512).unwrap(),
                v
            );
        }
    }

    #[test]
    fn out_of_range_mappings_error_cleanly() {
        assert!(matches!(
            value_to_symbol(256, 512),
            Err(CodecError::ValueOutOfRange { value: 256, alphabet: 512 })
        ));
        assert!(matches!(
            value_to_symbol(-257, 512),
            Err(CodecError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            symbol_to_value(512, 512),
            Err(CodecError::SymbolOutOfRange { symbol: 512, alphabet: 512 })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_round_trip_random_counts(
            counts in proptest::collection::vec(0u64..10_000, 8..128),
            seed in any::<u64>(),
        ) {
            let n = counts.len();
            let cb = Codebook::from_counts(&counts, n).unwrap();
            prop_assert!(kraft_is_exact(cb.lengths()));
            prop_assert!(cb.max_length() <= MAX_CODE_LEN);

            // Encode a pseudo-random symbol sequence and decode it back.
            let mut state = seed | 1;
            let symbols: Vec<u16> = (0..200)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % n as u64) as u16
                })
                .collect();
            let mut w = BitWriter::new();
            cb.encode(&symbols, &mut w).unwrap();
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let decoded = cb.decode(&mut r, symbols.len()).unwrap();
            prop_assert_eq!(decoded, symbols);
        }

        #[test]
        fn prop_heavier_symbols_get_shorter_codes(scale in 1u64..1000) {
            let counts: Vec<u64> = (0..32).map(|i| scale * (32 - i as u64).pow(3)).collect();
            let cb = Codebook::from_counts(&counts, 32).unwrap();
            // Monotone: counts decrease with index, lengths must not.
            for w in cb.lengths().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
