//! Inter-packet redundancy removal (adaptive-gain closed-loop DPCM).
//!
//! With a *fixed* sensing matrix and a quasi-periodic ECG, consecutive
//! measurement vectors `y` are very similar, so the paper transmits only
//! their difference, coded over a 512-symbol alphabet — i.e. differences
//! in `[−256, 255]` (§II, §IV-A2). Three engineering details matter and
//! are implemented here:
//!
//! * **Closed loop.** The encoder differences against the decoder's
//!   reconstruction rather than the true previous vector (DPCM), so
//!   coding error never accumulates.
//! * **Adaptive gain.** When a beat lands differently in the 2-second
//!   window the raw difference can exceed the alphabet. Rather than hard
//!   clamping (which destroys the packet), each delta packet carries a
//!   4-bit binary gain `g`: differences are transmitted as
//!   `round(diff / 2^g)` with `g` chosen per packet as the smallest shift
//!   that fits the alphabet. The reconstruction error is bounded by
//!   `2^{g−1}` per measurement — a graceful, quantifiable degradation
//!   that preserves the paper's 512-symbol codebook.
//! * **Resynchronization.** Every `reference_interval`-th packet is a raw
//!   reference so a lost packet cannot poison the stream forever.

use crate::error::CodecError;

/// Largest supported binary gain (4 bits on the wire).
pub const MAX_DELTA_SHIFT: u8 = 15;

/// Configuration of the differencing stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiffConfig {
    /// Measurement-vector length M.
    pub vector_len: usize,
    /// A raw reference packet is emitted every this many packets (1 ⇒
    /// every packet is a reference, i.e. differencing disabled).
    pub reference_interval: usize,
    /// Difference alphabet size (512 in the paper ⇒ symbols cover
    /// [−256, 255]).
    pub alphabet: usize,
}

impl DiffConfig {
    /// The paper's configuration for a given measurement count.
    pub fn paper_default(vector_len: usize) -> Self {
        DiffConfig {
            vector_len,
            reference_interval: 16,
            alphabet: 512,
        }
    }

    fn half(&self) -> i32 {
        (self.alphabet / 2) as i32
    }

    fn validate(&self) {
        assert!(self.vector_len > 0, "DiffConfig: zero vector length");
        assert!(
            self.reference_interval > 0,
            "DiffConfig: zero reference interval"
        );
        assert!(
            self.alphabet >= 2 && self.alphabet.is_multiple_of(2),
            "DiffConfig: alphabet must be even and at least 2"
        );
    }
}

/// Scaled differences plus their binary gain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBlock {
    /// Binary gain `g`: transmitted values are `round(diff / 2^g)`.
    pub shift: u8,
    /// Scaled differences, each within the alphabet range.
    pub values: Vec<i16>,
}

/// One packet leaving the differencing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffPacket {
    /// A raw measurement vector (resynchronization point).
    Reference(Vec<i32>),
    /// Gain-scaled differences against the decoder-side reconstruction.
    Delta(DeltaBlock),
}

impl DiffPacket {
    /// Whether this packet is a reference.
    pub fn is_reference(&self) -> bool {
        matches!(self, DiffPacket::Reference(_))
    }

    /// Vector length of the payload.
    pub fn len(&self) -> usize {
        match self {
            DiffPacket::Reference(v) => v.len(),
            DiffPacket::Delta(b) => b.values.len(),
        }
    }

    /// Whether the payload is empty (never true for packets produced by
    /// [`DiffEncoder`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encoder side of the differencing stage.
///
/// # Examples
///
/// ```
/// use cs_codec::{DiffConfig, DiffDecoder, DiffEncoder, DiffPacket};
///
/// let cfg = DiffConfig { vector_len: 4, reference_interval: 4, alphabet: 512 };
/// let mut enc = DiffEncoder::new(cfg);
/// let mut dec = DiffDecoder::new(cfg);
///
/// let y1 = vec![100, -50, 7, 0];
/// let y2 = vec![103, -48, 7, -2];
/// let p1 = enc.encode(&y1)?;
/// assert!(p1.is_reference());
/// let p2 = enc.encode(&y2)?;
/// assert!(!p2.is_reference());
/// assert_eq!(dec.decode(&p1)?, y1);
/// assert_eq!(dec.decode(&p2)?, y2); // small diffs are exact (gain 0)
/// # Ok::<(), cs_codec::CodecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiffEncoder {
    config: DiffConfig,
    /// Decoder-side reconstruction the encoder tracks (closed loop).
    state: Vec<i32>,
    packets_sent: usize,
}

impl DiffEncoder {
    /// Creates an encoder; the first packet is always a reference.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid.
    pub fn new(config: DiffConfig) -> Self {
        config.validate();
        DiffEncoder {
            config,
            state: vec![0; config.vector_len],
            packets_sent: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DiffConfig {
        &self.config
    }

    /// Encodes the next measurement vector.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::LengthMismatch`] if `y` has the wrong length.
    pub fn encode(&mut self, y: &[i32]) -> Result<DiffPacket, CodecError> {
        if y.len() != self.config.vector_len {
            return Err(CodecError::LengthMismatch {
                expected: self.config.vector_len,
                actual: y.len(),
            });
        }
        let is_reference = self.packets_sent.is_multiple_of(self.config.reference_interval);
        self.packets_sent += 1;
        if is_reference {
            self.state.copy_from_slice(y);
            return Ok(DiffPacket::Reference(y.to_vec()));
        }

        // Smallest binary gain that brings every difference in range.
        let half = self.config.half();
        let max_abs = self
            .state
            .iter()
            .zip(y)
            .map(|(&s, &yi)| (yi - s).unsigned_abs())
            .max()
            .unwrap_or(0);
        let mut shift = 0u8;
        while shift < MAX_DELTA_SHIFT && scaled(max_abs as i32, shift) >= half {
            shift += 1;
        }

        let mut values = Vec::with_capacity(y.len());
        for (s, &yi) in self.state.iter_mut().zip(y) {
            let d = quantize_diff(yi - *s, shift, half);
            *s += (d as i32) << shift; // track the decoder exactly
            values.push(d);
        }
        Ok(DiffPacket::Delta(DeltaBlock { shift, values }))
    }

    /// Resets the stream (next packet becomes a reference).
    pub fn reset(&mut self) {
        self.packets_sent = 0;
        self.state.iter_mut().for_each(|v| *v = 0);
    }
}

/// Magnitude after round-to-nearest scaling by `2^shift`.
fn scaled(v: i32, shift: u8) -> i32 {
    if shift == 0 {
        v.abs()
    } else {
        (v.abs() + (1 << (shift - 1))) >> shift
    }
}

/// Rounds `diff / 2^shift` to nearest and clamps into the alphabet.
fn quantize_diff(diff: i32, shift: u8, half: i32) -> i16 {
    let q = if shift == 0 {
        diff
    } else {
        // Round-to-nearest for signed values.
        let bias = 1 << (shift - 1);
        if diff >= 0 {
            (diff + bias) >> shift
        } else {
            -((-diff + bias) >> shift)
        }
    };
    q.clamp(-half, half - 1) as i16
}

/// Decoder side of the differencing stage.
#[derive(Debug, Clone)]
pub struct DiffDecoder {
    config: DiffConfig,
    state: Vec<i32>,
    synchronized: bool,
}

impl DiffDecoder {
    /// Creates a decoder. It refuses delta packets until it has seen a
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid.
    pub fn new(config: DiffConfig) -> Self {
        config.validate();
        DiffDecoder {
            config,
            state: vec![0; config.vector_len],
            synchronized: false,
        }
    }

    /// Reconstructs the measurement vector for a packet.
    ///
    /// # Errors
    ///
    /// * [`CodecError::LengthMismatch`] for a wrong-size payload.
    /// * [`CodecError::MissingReference`] for a delta packet before any
    ///   reference has been received.
    pub fn decode(&mut self, packet: &DiffPacket) -> Result<Vec<i32>, CodecError> {
        match packet {
            DiffPacket::Reference(y) => self.decode_reference(y).map(<[i32]>::to_vec),
            DiffPacket::Delta(block) => {
                self.decode_delta(block.shift, &block.values).map(<[i32]>::to_vec)
            }
        }
    }

    /// Accepts a reference payload and returns a borrow of the updated
    /// state — the non-allocating form of [`DiffDecoder::decode`] for
    /// callers that copy (or transform) the vector themselves.
    ///
    /// # Errors
    ///
    /// [`CodecError::LengthMismatch`] for a wrong-size payload.
    pub fn decode_reference<'s>(&'s mut self, y: &[i32]) -> Result<&'s [i32], CodecError> {
        if y.len() != self.config.vector_len {
            return Err(CodecError::LengthMismatch {
                expected: self.config.vector_len,
                actual: y.len(),
            });
        }
        self.state.copy_from_slice(y);
        self.synchronized = true;
        Ok(&self.state)
    }

    /// Accumulates a delta payload and returns a borrow of the updated
    /// state — the non-allocating form of [`DiffDecoder::decode`].
    ///
    /// # Errors
    ///
    /// * [`CodecError::LengthMismatch`] for a wrong-size payload.
    /// * [`CodecError::MissingReference`] before any reference.
    pub fn decode_delta<'s>(
        &'s mut self,
        shift: u8,
        values: &[i16],
    ) -> Result<&'s [i32], CodecError> {
        if values.len() != self.config.vector_len {
            return Err(CodecError::LengthMismatch {
                expected: self.config.vector_len,
                actual: values.len(),
            });
        }
        if !self.synchronized {
            return Err(CodecError::MissingReference);
        }
        // Saturating accumulation: the payload is attacker-controlled wire
        // data, and a crafted run of maximal deltas would otherwise
        // overflow the i32 state (a debug-build panic). Honest encoders
        // track bounded ADC counts and never come near saturation, so the
        // closed loop is unaffected.
        for (s, &di) in self.state.iter_mut().zip(values) {
            *s = s.saturating_add((di as i32) << shift);
        }
        Ok(&self.state)
    }

    /// Drops synchronization (e.g. after detected packet loss); the next
    /// accepted packet must be a reference.
    pub fn desynchronize(&mut self) {
        self.synchronized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(len: usize, interval: usize) -> DiffConfig {
        DiffConfig {
            vector_len: len,
            reference_interval: interval,
            alphabet: 512,
        }
    }

    #[test]
    fn reference_cadence() {
        let mut enc = DiffEncoder::new(cfg(2, 3));
        let refs: Vec<bool> = (0..7)
            .map(|i| enc.encode(&[i, i]).unwrap().is_reference())
            .collect();
        assert_eq!(refs, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn small_changes_round_trip_exactly() {
        let c = cfg(8, 100);
        let mut enc = DiffEncoder::new(c);
        let mut dec = DiffDecoder::new(c);
        let mut y: Vec<i32> = (0..8).map(|i| i * 100).collect();
        for step in 0..50 {
            let p = enc.encode(&y).unwrap();
            if let DiffPacket::Delta(b) = &p {
                assert_eq!(b.shift, 0, "small diffs need no gain");
            }
            assert_eq!(dec.decode(&p).unwrap(), y, "step {step}");
            for v in &mut y {
                *v += (step % 7) - 3; // stays within the alphabet at gain 0
            }
        }
    }

    #[test]
    fn large_jump_uses_gain_and_stays_close() {
        let c = cfg(1, 1000);
        let mut enc = DiffEncoder::new(c);
        let mut dec = DiffDecoder::new(c);
        assert_eq!(dec.decode(&enc.encode(&[0]).unwrap()).unwrap(), vec![0]);
        // A +10 000 jump exceeds ±256 at gain 0: the encoder raises the
        // gain instead of saturating, and the reconstruction lands within
        // half a quantization step.
        let p = enc.encode(&[10_000]).unwrap();
        let DiffPacket::Delta(block) = &p else {
            panic!("expected delta")
        };
        assert!(block.shift >= 5 && block.shift <= 7, "shift {}", block.shift);
        let r = dec.decode(&p).unwrap();
        let err = (r[0] - 10_000).abs();
        assert!(err <= 1 << (block.shift - 1), "error {err} at shift {}", block.shift);
        // Next packet at the same value is exact (gain drops back to 0).
        let p2 = enc.encode(&[10_000]).unwrap();
        assert_eq!(dec.decode(&p2).unwrap(), vec![10_000]);
    }

    #[test]
    fn delta_before_reference_rejected() {
        let c = cfg(2, 4);
        let mut dec = DiffDecoder::new(c);
        let delta = DiffPacket::Delta(DeltaBlock {
            shift: 0,
            values: vec![1, 2],
        });
        assert!(matches!(
            dec.decode(&delta),
            Err(CodecError::MissingReference)
        ));
    }

    #[test]
    fn desynchronize_forces_reference() {
        let c = cfg(1, 100);
        let mut enc = DiffEncoder::new(c);
        let mut dec = DiffDecoder::new(c);
        dec.decode(&enc.encode(&[5]).unwrap()).unwrap();
        dec.desynchronize();
        let p = enc.encode(&[6]).unwrap(); // a delta
        assert!(dec.decode(&p).is_err());
    }

    #[test]
    fn length_mismatch_detected() {
        let mut enc = DiffEncoder::new(cfg(4, 2));
        assert!(matches!(
            enc.encode(&[1, 2, 3]),
            Err(CodecError::LengthMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn reset_restarts_with_reference() {
        let mut enc = DiffEncoder::new(cfg(1, 10));
        let _ = enc.encode(&[1]).unwrap();
        assert!(!enc.encode(&[2]).unwrap().is_reference());
        enc.reset();
        assert!(enc.encode(&[3]).unwrap().is_reference());
    }

    proptest! {
        #[test]
        fn prop_encoder_decoder_stay_in_lockstep(
            seed in any::<u64>(),
            interval in 1_usize..20,
        ) {
            let c = cfg(16, interval);
            let mut enc = DiffEncoder::new(c);
            let mut dec = DiffDecoder::new(c);
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 30000) as i32 - 15000
            };
            let mut y: Vec<i32> = (0..16).map(|_| next()).collect();
            let mut last_recon = Vec::new();
            for _ in 0..40 {
                let p = enc.encode(&y).unwrap();
                last_recon = dec.decode(&p).unwrap();
                for v in &mut y {
                    *v += next() / 4; // arbitrary, often large, jumps
                }
            }
            // Whatever happened, encoder's internal state equals decoder's.
            prop_assert_eq!(&enc.state, &dec.state);
            prop_assert_eq!(last_recon, dec.state.clone());
        }

        #[test]
        fn prop_reconstruction_error_bounded_by_gain(seed in any::<u64>()) {
            let c = cfg(8, 1000);
            let mut enc = DiffEncoder::new(c);
            let mut dec = DiffDecoder::new(c);
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state % 60000) as i32 - 30000
            };
            let first: Vec<i32> = (0..8).map(|_| next()).collect();
            dec.decode(&enc.encode(&first).unwrap()).unwrap();
            for _ in 0..20 {
                let y: Vec<i32> = (0..8).map(|_| next()).collect();
                let p = enc.encode(&y).unwrap();
                let DiffPacket::Delta(block) = &p else { unreachable!() };
                prop_assert!(block.values.iter().all(|&v| (-256..=255).contains(&v)));
                let r = dec.decode(&p).unwrap();
                // One step of adaptive-gain DPCM lands within half a
                // quantization step of the target (unless clamped at the
                // extreme alphabet edge, which the shift choice prevents).
                let bound = if block.shift == 0 { 0 } else { 1_i32 << (block.shift - 1) };
                for (a, b) in r.iter().zip(&y) {
                    prop_assert!((a - b).abs() <= bound, "err {} bound {bound}", a - b);
                }
            }
        }
    }
}
