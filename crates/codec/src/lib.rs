//! # cs-codec — entropy-coding substrate of the CS-ECG encoder
//!
//! After the linear CS stage, the paper's mote-side pipeline removes
//! inter-packet redundancy and entropy-codes the result (Fig. 1):
//!
//! * [`DiffEncoder`] / [`DiffDecoder`] — closed-loop differencing of
//!   consecutive measurement vectors, clamped to the paper's `[−256, 255]`
//!   range, with periodic raw reference packets for resynchronization;
//! * [`Codebook`] — a 512-symbol, canonical, **length-limited** Huffman
//!   code (max 16 bits, built with package–merge), trained offline and
//!   stored on the mote in 1.5 kB exactly as the paper describes;
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit packing for the radio.
//!
//! ## Example: difference + entropy-code one packet
//!
//! ```
//! use cs_codec::{
//!     value_to_symbol, BitReader, BitWriter, Codebook, DiffConfig, DiffEncoder, DiffPacket,
//! };
//!
//! let cfg = DiffConfig { vector_len: 4, reference_interval: 8, alphabet: 512 };
//! let mut enc = DiffEncoder::new(cfg);
//! let _reference = enc.encode(&[10, 20, 30, 40])?;
//! let delta = enc.encode(&[12, 19, 30, 41])?;
//!
//! // Train a toy codebook and push the deltas through it.
//! let counts = vec![1_u64; 512];
//! let codebook = Codebook::from_counts(&counts, 512)?;
//! if let DiffPacket::Delta(block) = &delta {
//!     let symbols: Vec<u16> = block
//!         .values
//!         .iter()
//!         .map(|&v| value_to_symbol(v as i32, 512))
//!         .collect::<Result<_, _>>()?;
//!     let mut w = BitWriter::new();
//!     codebook.encode(&symbols, &mut w)?;
//!     let bytes = w.finish();
//!     let mut r = BitReader::new(&bytes);
//!     assert_eq!(codebook.decode(&mut r, symbols.len())?, symbols);
//! }
//! # Ok::<(), cs_codec::CodecError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitstream;
mod diff;
mod error;
mod huffman;
mod rice;

pub use bitstream::{BitReader, BitWriter};
pub use diff::{DeltaBlock, DiffConfig, DiffDecoder, DiffEncoder, DiffPacket, MAX_DELTA_SHIFT};
pub use error::CodecError;
pub use huffman::{symbol_to_value, value_to_symbol, Codebook, MAX_CODE_LEN};
pub use rice::{
    optimal_rice_k, rice_decode_block, rice_decode_value, rice_encode_block, rice_encode_value,
    zigzag_decode, zigzag_encode, MAX_RICE_K,
};
