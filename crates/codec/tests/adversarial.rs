//! Adversarial decode properties: every codec decode path must terminate
//! with `Ok` or a structured [`CodecError`] on *arbitrary* input bytes —
//! no panics, no unbounded loops. These are the paths a hostile or
//! garbled wire can reach once framing lets a payload through.

use cs_codec::{
    rice_decode_block, symbol_to_value, BitReader, Codebook, MAX_CODE_LEN,
};
use proptest::prelude::*;

/// A representative trained-shape codebook: skewed counts over the
/// paper's 512-symbol alphabet, like real DPCM residuals.
fn skewed_codebook() -> Codebook {
    let counts: Vec<u64> = (0..512)
        .map(|s| {
            let d = (s as i64 - 256).unsigned_abs();
            1 + 100_000 / (1 + d * d)
        })
        .collect();
    Codebook::from_counts(&counts, 512).expect("valid counts")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Huffman decode of arbitrary bytes terminates without panicking,
    /// and every symbol it does produce maps back into the alphabet.
    #[test]
    fn huffman_decode_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        count in 0_usize..2048,
    ) {
        let cb = skewed_codebook();
        let mut r = BitReader::new(&bytes);
        if let Ok(symbols) = cb.decode(&mut r, count) {
            prop_assert_eq!(symbols.len(), count);
            for s in symbols {
                prop_assert!(symbol_to_value(s, cb.alphabet_size()).is_ok());
            }
        }
    }

    /// Rice block decode of arbitrary bytes terminates without panicking.
    /// All-ones input is the worst case (one long unary run); the reader
    /// must bound it at end-of-stream instead of spinning.
    #[test]
    fn rice_decode_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        count in 0_usize..2048,
    ) {
        let mut r = BitReader::new(&bytes);
        let _ = rice_decode_block(count, &mut r);
    }

    /// Building a codebook from arbitrary length tables either succeeds
    /// (lengths satisfy Kraft and the cap) or errors — never panics.
    #[test]
    fn from_lengths_arbitrary_tables_never_panic(
        lengths in proptest::collection::vec(0_u8..=MAX_CODE_LEN + 2, 0..600),
    ) {
        if let Ok(cb) = Codebook::from_lengths(&lengths) {
            prop_assert_eq!(cb.alphabet_size(), lengths.len());
        }
    }

    /// Symbol/value mapping is total over the u16 range: in-alphabet
    /// symbols round-trip, out-of-alphabet symbols error.
    #[test]
    fn symbol_mapping_is_total(symbol in any::<u16>()) {
        match symbol_to_value(symbol, 512) {
            Ok(v) => prop_assert_eq!(cs_codec::value_to_symbol(v, 512).unwrap(), symbol),
            Err(_) => prop_assert!(symbol >= 512),
        }
    }
}
