//! A socket-level chaos proxy — the TCP analogue of [`crate::LossyLink`].
//!
//! [`crate::LossyLink`] damages *frames* before they reach the ingest
//! path in-process; [`TcpChaosProxy`] damages the *byte stream between
//! two real sockets*, which is a different fault surface entirely: reads
//! split at arbitrary boundaries, single-byte trickles, mid-stream
//! stalls, truncated closes, abortive disconnects, and bit flips that
//! land anywhere in the TCP payload (framing bytes included, not just
//! frame bodies). An ingest server sitting behind the proxy therefore
//! has to prove its incremental deframer, its deadlines, and its
//! per-connection eviction policies against the damage a real flaky
//! radio + kernel socket stack produces.
//!
//! Faults are seeded ([`cs_sensing::MotePrng`], one stream per
//! connection derived from the spec seed and the connection index), so a
//! soak that fails replays byte-for-byte identically.
//!
//! Only the client→upstream direction is damaged: the return path
//! carries the server's control records, and damaging both directions
//! would make client-side accounting (what *should* have arrived)
//! ambiguous. Client-visible damage on the return path is exercised
//! separately by the handshake tests.

use cs_sensing::MotePrng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-chunk fault probabilities for one proxied connection. Each chunk
/// the proxy reads off the client socket rolls every fault class
/// independently; terminal faults (abort, truncated close) end the
/// connection, the rest damage or delay the chunk and keep going.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpChaosSpec {
    /// Probability a chunk is preceded by a forwarding stall.
    pub stall_probability: f64,
    /// Length of one forwarding stall.
    pub stall: Duration,
    /// Probability a chunk is dribbled one byte per write (split-read
    /// torture for the receiver's incremental deframer).
    pub single_byte_probability: f64,
    /// Probability one random bit in the chunk is flipped.
    pub bit_flip_probability: f64,
    /// Probability the connection forwards a random prefix of the chunk
    /// and then closes the write side cleanly (truncated close).
    pub truncate_probability: f64,
    /// Probability the connection is torn down abortively mid-chunk —
    /// both sockets dropped with data in flight, the closest portable
    /// analogue of an injected RST.
    pub abort_probability: f64,
    /// Base seed; connection `k` derives its own deterministic fault
    /// stream from it.
    pub seed: u64,
}

impl TcpChaosSpec {
    /// A clean proxy: forwards everything unmodified (useful as a
    /// baseline and for saturating load tests).
    pub fn clean(seed: u64) -> Self {
        TcpChaosSpec {
            stall_probability: 0.0,
            stall: Duration::from_millis(0),
            single_byte_probability: 0.0,
            bit_flip_probability: 0.0,
            truncate_probability: 0.0,
            abort_probability: 0.0,
            seed,
        }
    }

    /// The soak profile: every fault class active at rates that damage a
    /// meaningful fraction of connections without extinguishing all
    /// goodput.
    pub fn hostile(seed: u64) -> Self {
        TcpChaosSpec {
            stall_probability: 0.02,
            stall: Duration::from_millis(30),
            single_byte_probability: 0.05,
            bit_flip_probability: 0.03,
            truncate_probability: 0.005,
            abort_probability: 0.005,
            seed,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    chunks: AtomicU64,
    bytes_in: AtomicU64,
    bytes_forwarded: AtomicU64,
    stalls: AtomicU64,
    single_byte_chunks: AtomicU64,
    bit_flips: AtomicU64,
    truncated_closes: AtomicU64,
    aborts: AtomicU64,
}

/// Point-in-time fault accounting for a [`TcpChaosProxy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpChaosStats {
    /// Connections accepted and proxied.
    pub connections: u64,
    /// Chunks read off client sockets.
    pub chunks: u64,
    /// Bytes read off client sockets.
    pub bytes_in: u64,
    /// Bytes actually forwarded upstream (≤ `bytes_in`: aborts and
    /// truncated closes drop the difference).
    pub bytes_forwarded: u64,
    /// Chunks delayed by an injected stall.
    pub stalls: u64,
    /// Chunks dribbled one byte per write.
    pub single_byte_chunks: u64,
    /// Chunks with one bit flipped.
    pub bit_flips: u64,
    /// Connections ended by a truncated close.
    pub truncated_closes: u64,
    /// Connections torn down abortively.
    pub aborts: u64,
}

/// A running chaos proxy; stops accepting (and joins its accept thread)
/// on drop. Live per-connection forward threads run to their natural
/// end — a connection's lifetime belongs to its endpoints, not the
/// proxy handle.
#[derive(Debug)]
pub struct TcpChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TcpChaosProxy {
    /// Binds `listen` (e.g. `"127.0.0.1:0"`) and proxies every accepted
    /// connection to `upstream`, applying `spec`'s faults on the
    /// client→upstream byte stream.
    pub fn bind<A: ToSocketAddrs>(
        listen: A,
        upstream: SocketAddr,
        spec: TcpChaosSpec,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("cs-chaos-proxy".into())
            .spawn(move || accept_loop(listener, upstream, spec, thread_stats, thread_stop))?;
        Ok(TcpChaosProxy { addr, stop, stats, handle: Some(handle) })
    }

    /// The proxy's listening address (clients connect here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current fault accounting.
    pub fn stats(&self) -> TcpChaosStats {
        let s = &self.stats;
        TcpChaosStats {
            connections: s.connections.load(Ordering::Relaxed),
            chunks: s.chunks.load(Ordering::Relaxed),
            bytes_in: s.bytes_in.load(Ordering::Relaxed),
            bytes_forwarded: s.bytes_forwarded.load(Ordering::Relaxed),
            stalls: s.stalls.load(Ordering::Relaxed),
            single_byte_chunks: s.single_byte_chunks.load(Ordering::Relaxed),
            bit_flips: s.bit_flips.load(Ordering::Relaxed),
            truncated_closes: s.truncated_closes.load(Ordering::Relaxed),
            aborts: s.aborts.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting new connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TcpChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    spec: TcpChaosSpec,
    stats: Arc<StatsInner>,
    stop: Arc<AtomicBool>,
) {
    let mut conn_index: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = stream else { continue };
        let Ok(server) = TcpStream::connect(upstream) else { continue };
        stats.connections.fetch_add(1, Ordering::Relaxed);
        // Each connection gets its own deterministic fault stream so a
        // failing soak replays identically regardless of accept order
        // races between connections.
        let rng = MotePrng::new(spec.seed.wrapping_add(conn_index.wrapping_mul(0x9E3779B97F4A7C15)));
        conn_index += 1;
        let stats = Arc::clone(&stats);
        let _ = std::thread::Builder::new()
            .name("cs-chaos-conn".into())
            .spawn(move || proxy_connection(client, server, spec, rng, stats));
    }
}

/// Runs one proxied connection: clean copy upstream→client on a helper
/// thread, chaos-injected copy client→upstream on this one.
fn proxy_connection(
    client: TcpStream,
    server: TcpStream,
    spec: TcpChaosSpec,
    mut rng: MotePrng,
    stats: Arc<StatsInner>,
) {
    let mut client_read = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut server_read = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut client_write = client;
    let mut server_write = server;

    // Return path: the server's control records pass through unharmed.
    let return_path = std::thread::Builder::new().name("cs-chaos-return".into()).spawn(move || {
        let mut buf = [0u8; 2048];
        loop {
            match server_read.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if client_write.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = client_write.shutdown(Shutdown::Write);
    });

    let mut buf = [0u8; 2048];
    loop {
        let n = match client_read.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        stats.chunks.fetch_add(1, Ordering::Relaxed);
        stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        let chunk = &mut buf[..n];

        if rng.next_f64() < spec.abort_probability {
            // Abortive teardown: both directions die with bytes in
            // flight. Dropping the sockets mid-transfer is the portable
            // RST analogue (`set_linger(0)` is not on stable std).
            stats.aborts.fetch_add(1, Ordering::Relaxed);
            return; // drops server_write and client_read; return path dies with them
        }
        if rng.next_f64() < spec.bit_flip_probability {
            let bit = rng.next_below((n * 8) as u32) as usize;
            chunk[bit / 8] ^= 1 << (bit % 8);
            stats.bit_flips.fetch_add(1, Ordering::Relaxed);
        }
        if rng.next_f64() < spec.truncate_probability {
            let keep = rng.next_below(n as u32) as usize;
            if server_write.write_all(&chunk[..keep]).is_ok() {
                stats.bytes_forwarded.fetch_add(keep as u64, Ordering::Relaxed);
            }
            stats.truncated_closes.fetch_add(1, Ordering::Relaxed);
            let _ = server_write.shutdown(Shutdown::Write);
            break; // keep draining the return path until the server closes
        }
        if rng.next_f64() < spec.stall_probability {
            stats.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(spec.stall);
        }
        if rng.next_f64() < spec.single_byte_probability {
            stats.single_byte_chunks.fetch_add(1, Ordering::Relaxed);
            for i in 0..n {
                if server_write.write_all(&chunk[i..=i]).is_err() {
                    return;
                }
                if server_write.flush().is_err() {
                    return;
                }
                stats.bytes_forwarded.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            if server_write.write_all(chunk).is_err() {
                return;
            }
            stats.bytes_forwarded.fetch_add(n as u64, Ordering::Relaxed);
        }
    }
    let _ = server_write.shutdown(Shutdown::Write);
    let _ = return_path.map(|h| h.join());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An echo server good enough to prove the proxy forwards both ways.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for stream in listener.incoming().take(4) {
                let Ok(mut stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if stream.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_spec_forwards_bytes_unchanged() {
        let (upstream, _server) = echo_server();
        let proxy = TcpChaosProxy::bind("127.0.0.1:0", upstream, TcpChaosSpec::clean(1)).unwrap();
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.write_all(b"hello chaos").unwrap();
        conn.shutdown(Shutdown::Write).unwrap();
        let mut back = Vec::new();
        conn.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"hello chaos");
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.bytes_forwarded, 11);
        assert_eq!(stats.bit_flips + stats.aborts + stats.truncated_closes, 0);
    }

    #[test]
    fn hostile_spec_is_deterministic_per_seed() {
        // Same seed, same single connection → identical fault decisions,
        // observable as identical damage on a fixed byte stream.
        let run = |seed| {
            let (upstream, _server) = echo_server();
            let spec = TcpChaosSpec { bit_flip_probability: 0.8, ..TcpChaosSpec::clean(seed) };
            let proxy = TcpChaosProxy::bind("127.0.0.1:0", upstream, spec).unwrap();
            let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
            let payload = [0u8; 32];
            conn.write_all(&payload).unwrap();
            conn.shutdown(Shutdown::Write).unwrap();
            let mut back = Vec::new();
            conn.read_to_end(&mut back).unwrap();
            back
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay identical damage");
        assert!(a != c || a == [0u8; 32], "different seeds should usually differ");
    }

    #[test]
    fn shutdown_frees_the_listen_port() {
        let (upstream, _server) = echo_server();
        let proxy = TcpChaosProxy::bind("127.0.0.1:0", upstream, TcpChaosSpec::clean(1)).unwrap();
        let addr = proxy.local_addr();
        drop(proxy);
        assert!(TcpListener::bind(addr).is_ok());
    }
}
