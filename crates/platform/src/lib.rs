//! # cs-platform — embedded-platform models for the CS-ECG monitor
//!
//! The paper's evaluation is tied to two pieces of hardware this
//! repository cannot ship: the ShimmerTM mote (TI MSP430F1611) and an
//! iPhone 3GS. Per the reproduction ground rules, their *timing, memory
//! and energy envelopes* are modeled here so every platform-dependent
//! number the paper reports has a measured-or-modeled counterpart:
//!
//! * [`MoteSpec`] / [`encode_cost`] / [`encoder_footprint`] — MSP430-class
//!   cycle and memory model, calibrated once against the paper's "82 ms
//!   per 2-second CS sampling" and then used predictively everywhere else;
//! * [`CoordinatorSpec`] / [`analyze_solves`] — the iPhone's real-time
//!   budget (1 s of solve per 2 s packet), deriving iteration caps and CPU
//!   percentages from measured solver behaviour;
//! * [`RadioSpec`] / [`EnergyModel`] / [`compare_lifetime`] — Bluetooth
//!   airtime and node-lifetime comparison (the 12.9 % extension claim).
//!
//! ## Example: price one packet on the mote
//!
//! ```
//! use cs_core::{uniform_codebook, Encoder, SystemConfig};
//! use cs_platform::{encode_cost, MoteSpec};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let config = SystemConfig::paper_default();
//! let codebook = Arc::new(uniform_codebook(512)?);
//! let mut encoder = Encoder::new(&config, codebook)?;
//! let packet = encoder.encode_packet(&vec![0; 512])?;
//!
//! let spec = MoteSpec::msp430f1611();
//! let cost = encode_cost(&spec, &config, &packet);
//! let util = cost.cpu_utilization(&spec, Duration::from_secs(2));
//! assert!(util < 0.05); // the paper's "<5 % CPU on the node"
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod archive;
mod chaos_tcp;
mod coordinator;
mod energy;
mod link;
mod mote;

pub use archive::{ArchiveCapacityModel, SyncCadence};
pub use chaos_tcp::{TcpChaosProxy, TcpChaosSpec, TcpChaosStats};
pub use coordinator::{
    analyze_fleet, analyze_solves, iteration_budget_ratio, CoordinatorSpec, FleetCapacityReport,
    RealTimeReport, SolveSample,
};
pub use energy::{compare_lifetime, EnergyModel, LifetimeComparison, RadioSpec};
pub use link::{
    ChannelModel, Delivery, FaultSpec, GilbertElliott, GilbertElliottParams, LinkStats,
    LossReport, LossyLink,
};
pub use mote::{dwt_baseline_cost, encode_cost, encoder_footprint, EncodeCost, FootprintReport, MoteSpec};
