//! Coordinator (smartphone) real-time model.
//!
//! The iPhone decoder is real-time iff each 2-second packet reconstructs
//! within its real-time budget — the paper allots "1 sec of total time
//! spent in ECG reconstruction every 2 sec" (§V) and derives the maximum
//! admissible FISTA iteration count from the measured per-iteration time:
//! 800 iterations unoptimized, 2000 optimized. This module performs that
//! derivation from *our* measured solve times, and converts decode times
//! into the CPU-usage percentages Fig. 8 reports.

use std::time::Duration;

/// Static description of the coordinator's scheduling constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoordinatorSpec {
    /// Packet period (2 s of ECG per packet in the paper).
    pub packet_period: Duration,
    /// Fraction of the period the decoder may occupy (0.5 in the paper:
    /// 1 s of solve per 2 s packet).
    pub decode_budget_fraction: f64,
    /// CPU fraction consumed by everything that is not the solver —
    /// Bluetooth reception, Huffman decoding and the 15 ms-cadence display
    /// thread (§IV-B1).
    pub display_overhead_fraction: f64,
}

impl CoordinatorSpec {
    /// The iPhone 3GS configuration from the paper.
    pub fn iphone_3gs() -> Self {
        CoordinatorSpec {
            packet_period: Duration::from_secs(2),
            decode_budget_fraction: 0.5,
            display_overhead_fraction: 0.04,
        }
    }

    /// The absolute solver budget per packet.
    pub fn decode_budget(&self) -> Duration {
        self.packet_period.mul_f64(self.decode_budget_fraction)
    }
}

/// One packet's observed solver behaviour (what the decoder reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveSample {
    /// FISTA iterations executed.
    pub iterations: usize,
    /// Wall-clock solver time.
    pub solve_time: Duration,
}

/// The derived real-time characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealTimeReport {
    /// Mean measured time per FISTA iteration.
    pub per_iteration: Duration,
    /// Largest iteration count that still fits the decode budget — the
    /// analogue of the paper's 800/2000 numbers.
    pub max_iterations_in_budget: usize,
    /// Mean decoder CPU usage over the packet period, display overhead
    /// included, as a percentage (Fig. 8's 17.7 % at CR 50).
    pub cpu_usage_percent: f64,
    /// Worst single packet against the budget.
    pub worst_case_fraction_of_budget: f64,
    /// Whether every observed packet met the budget.
    pub real_time: bool,
}

/// Derives the real-time report from observed solves.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a zero iteration count.
pub fn analyze_solves(spec: &CoordinatorSpec, samples: &[SolveSample]) -> RealTimeReport {
    assert!(!samples.is_empty(), "analyze_solves: no samples");
    let mut total_time = 0.0_f64;
    let mut total_iters = 0_u64;
    let mut worst = 0.0_f64;
    let budget = spec.decode_budget().as_secs_f64();
    for s in samples {
        assert!(s.iterations > 0, "analyze_solves: zero-iteration sample");
        let t = s.solve_time.as_secs_f64();
        total_time += t;
        total_iters += s.iterations as u64;
        worst = worst.max(t / budget);
    }
    let per_iteration = total_time / total_iters as f64;
    let max_iterations_in_budget = if per_iteration > 0.0 {
        // Epsilon guards against 1749.999… when the ratio is exact.
        (budget / per_iteration + 1e-9).floor() as usize
    } else {
        usize::MAX
    };
    let mean_time = total_time / samples.len() as f64;
    let cpu = mean_time / spec.packet_period.as_secs_f64() + spec.display_overhead_fraction;
    RealTimeReport {
        per_iteration: Duration::from_secs_f64(per_iteration),
        max_iterations_in_budget,
        cpu_usage_percent: cpu * 100.0,
        worst_case_fraction_of_budget: worst,
        real_time: worst <= 1.0,
    }
}

/// The iteration-budget ratio between two kernel implementations: how many
/// more iterations the optimized decoder affords in the same real-time
/// budget (the paper: 2000/800 = 2.5×, from a 2.43× kernel speedup).
pub fn iteration_budget_ratio(optimized: &RealTimeReport, baseline: &RealTimeReport) -> f64 {
    optimized.max_iterations_in_budget as f64 / baseline.max_iterations_in_budget as f64
}

/// Real-time capacity of a decode worker pool serving many streams.
///
/// The single-coordinator analysis asks "does one packet fit one budget";
/// a fleet asks "how many patients fit this pool". Each worker has one
/// decode budget per packet period, so its capacity is
/// `budget / mean-per-packet-solve` streams, and the pool scales that by
/// the worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetCapacityReport {
    /// Streams actually served.
    pub streams: usize,
    /// Workers in the pool.
    pub workers: usize,
    /// Mean solve time per packet across the fleet.
    pub mean_solve: Duration,
    /// Streams one worker can sustain within its budget.
    pub streams_per_worker: usize,
    /// Streams the whole pool can sustain (`workers × streams_per_worker`).
    pub max_streams: usize,
    /// Mean per-worker CPU usage over the packet period, display overhead
    /// included, as a percentage.
    pub cpu_usage_percent: f64,
    /// Whether the served load fits the pool's aggregate budget.
    pub real_time: bool,
}

/// Derives pool capacity from per-stream observed solves.
///
/// `streams` holds one sample set per served stream (every packet of that
/// stream, all leads).
///
/// # Panics
///
/// Panics if there are no workers, no streams, or any stream has no
/// samples (same contract as [`analyze_solves`]).
pub fn analyze_fleet(
    spec: &CoordinatorSpec,
    workers: usize,
    streams: &[Vec<SolveSample>],
) -> FleetCapacityReport {
    assert!(workers > 0, "analyze_fleet: zero workers");
    assert!(!streams.is_empty(), "analyze_fleet: no streams");
    let mut total_time = 0.0_f64;
    let mut packets = 0_u64;
    for samples in streams {
        assert!(!samples.is_empty(), "analyze_fleet: stream with no samples");
        for s in samples {
            total_time += s.solve_time.as_secs_f64();
            packets += 1;
        }
    }
    let mean_solve = total_time / packets as f64;
    let budget = spec.decode_budget().as_secs_f64();
    let streams_per_worker = if mean_solve > 0.0 {
        (budget / mean_solve + 1e-9).floor() as usize
    } else {
        usize::MAX
    };
    let max_streams = streams_per_worker.saturating_mul(workers);
    // Per frame, each worker decodes streams/workers packets on average.
    let frames = streams
        .iter()
        .map(Vec::len)
        .max()
        .expect("non-empty streams") as f64;
    let per_worker_time = total_time / workers as f64 / frames;
    let cpu = per_worker_time / spec.packet_period.as_secs_f64() + spec.display_overhead_fraction;
    FleetCapacityReport {
        streams: streams.len(),
        workers,
        mean_solve: Duration::from_secs_f64(mean_solve),
        streams_per_worker,
        max_streams,
        cpu_usage_percent: cpu * 100.0,
        real_time: streams.len() <= max_streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iters: usize, ms: u64) -> SolveSample {
        SolveSample {
            iterations: iters,
            solve_time: Duration::from_millis(ms),
        }
    }

    #[test]
    fn paper_like_numbers() {
        // 700 iterations in 0.40 s → 0.571 ms/iter → 1750 fit in 1 s.
        let spec = CoordinatorSpec::iphone_3gs();
        let report = analyze_solves(&spec, &[sample(700, 400)]);
        assert!((report.per_iteration.as_secs_f64() - 0.4 / 700.0).abs() < 1e-9);
        assert_eq!(report.max_iterations_in_budget, 1750);
        // CPU: 0.4/2.0 + 0.04 = 24 %.
        assert!((report.cpu_usage_percent - 24.0).abs() < 1e-9);
        assert!(report.real_time);
    }

    #[test]
    fn budget_violation_detected() {
        let spec = CoordinatorSpec::iphone_3gs();
        let report = analyze_solves(&spec, &[sample(2000, 1200)]);
        assert!(!report.real_time);
        assert!(report.worst_case_fraction_of_budget > 1.0);
    }

    #[test]
    fn aggregates_over_many_packets() {
        let spec = CoordinatorSpec::iphone_3gs();
        let samples: Vec<SolveSample> =
            (0..10).map(|i| sample(600 + i * 10, 300 + i as u64 * 5)).collect();
        let report = analyze_solves(&spec, &samples);
        assert!(report.per_iteration > Duration::ZERO);
        assert!(report.cpu_usage_percent > 0.0 && report.cpu_usage_percent < 100.0);
    }

    #[test]
    fn budget_ratio_mirrors_speedup() {
        let spec = CoordinatorSpec::iphone_3gs();
        let slow = analyze_solves(&spec, &[sample(100, 250)]); // 2.5 ms/iter
        let fast = analyze_solves(&spec, &[sample(243, 250)]); // 2.43× faster
        let ratio = iteration_budget_ratio(&fast, &slow);
        assert!((ratio - 2.43).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_panic() {
        let _ = analyze_solves(&CoordinatorSpec::iphone_3gs(), &[]);
    }

    #[test]
    fn fleet_capacity_scales_with_workers() {
        let spec = CoordinatorSpec::iphone_3gs();
        // 100 ms mean solve against a 1 s budget → 10 streams per worker.
        let streams: Vec<Vec<SolveSample>> =
            (0..4).map(|_| vec![sample(500, 100); 3]).collect();
        let one = analyze_fleet(&spec, 1, &streams);
        assert_eq!(one.streams_per_worker, 10);
        assert_eq!(one.max_streams, 10);
        assert!(one.real_time);
        let four = analyze_fleet(&spec, 4, &streams);
        assert_eq!(four.max_streams, 40);
        assert!(four.cpu_usage_percent < one.cpu_usage_percent);
    }

    #[test]
    fn fleet_overload_detected() {
        let spec = CoordinatorSpec::iphone_3gs();
        // 600 ms mean solve → 1 stream per worker; 3 streams on 2 workers
        // exceed the pool.
        let streams: Vec<Vec<SolveSample>> =
            (0..3).map(|_| vec![sample(800, 600); 2]).collect();
        let report = analyze_fleet(&spec, 2, &streams);
        assert_eq!(report.streams_per_worker, 1);
        assert!(!report.real_time);
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn fleet_zero_workers_panics() {
        let _ = analyze_fleet(&CoordinatorSpec::iphone_3gs(), 0, &[vec![sample(1, 1)]]);
    }
}
