//! Capacity planning for the durable packet archive.
//!
//! `cs-archive` stores encoded wire frames; this module answers the
//! provisioning questions that come *before* any byte is written: how
//! many bytes a patient-day costs at a given compression ratio, how many
//! segments that rotates through, how long a disk lasts, and how many
//! `fdatasync` calls a fsync cadence implies. Pure arithmetic over the
//! paper's timing model (one packet per `packet_len / sample_rate`
//! seconds per lead) and the archive's framing constants — kept here so
//! `cs-platform` stays independent of the storage crate.

/// How often the archive writer forces data to disk, mirrored from
/// `cs_archive::FsyncPolicy` as plain numbers so this crate needs no
/// dependency on the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncCadence {
    /// One `fdatasync` per appended record.
    PerRecord,
    /// One `fdatasync` per `n` records.
    EveryN(u64),
    /// Only the per-segment seal syncs.
    Never,
}

/// Inputs for archive capacity math. Construct with
/// [`ArchiveCapacityModel::paper_default`] and override fields as needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveCapacityModel {
    /// ECG sampling rate (Hz). Paper: 256.
    pub sample_rate_hz: f64,
    /// Samples per packet window N. Paper: 512 (a 2-second window).
    pub packet_len: usize,
    /// Leads archived per patient.
    pub leads: usize,
    /// Bits per raw sample before compression. Paper ADC: 12.
    pub bits_per_sample: f64,
    /// Compression ratio in percent (Eq. 7): payload is
    /// `(100 − CR) %` of the raw window.
    pub compression_ratio_percent: f64,
    /// Wire-frame overhead per packet: header + CRC
    /// (`cs_core`: 11 + 2 bytes).
    pub frame_overhead_bytes: usize,
    /// Archive record framing per frame
    /// (`cs_archive`: tag + len + seq + CRC = 15 bytes).
    pub record_overhead_bytes: usize,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Per-segment fixed cost: header + footer + seal marker (the footer
    /// also grows with the sparse index; this is the fixed part, the
    /// index adds ~16 bytes per K records and is counted separately).
    pub segment_overhead_bytes: u64,
    /// Sparse-index cadence: one 16-byte entry every this many records.
    pub index_every: u64,
}

impl ArchiveCapacityModel {
    /// The paper's configuration: 256 Hz, N = 512, 12-bit samples, CR 50
    /// %, single lead, `cs-archive` framing defaults (4 MiB segments,
    /// index every 32 records).
    pub fn paper_default() -> Self {
        ArchiveCapacityModel {
            sample_rate_hz: 256.0,
            packet_len: 512,
            leads: 1,
            bits_per_sample: 12.0,
            compression_ratio_percent: 50.0,
            frame_overhead_bytes: 13,
            record_overhead_bytes: 15,
            segment_bytes: 4 << 20,
            // header (32) + fixed footer record (7 + 28) + seal marker (8)
            segment_overhead_bytes: 32 + 35 + 8,
            index_every: 32,
        }
    }

    /// Seconds of signal per packet window.
    pub fn packet_period_s(&self) -> f64 {
        self.packet_len as f64 / self.sample_rate_hz
    }

    /// Frames archived per patient per day (all leads).
    pub fn frames_per_day(&self) -> f64 {
        86_400.0 / self.packet_period_s() * self.leads as f64
    }

    /// Stored bytes per frame: compressed payload + wire framing +
    /// archive record framing.
    pub fn frame_bytes(&self) -> f64 {
        let raw_bits = self.packet_len as f64 * self.bits_per_sample;
        let payload_bits = raw_bits * (100.0 - self.compression_ratio_percent) / 100.0;
        (payload_bits / 8.0).ceil()
            + self.frame_overhead_bytes as f64
            + self.record_overhead_bytes as f64
    }

    /// Archive growth per patient-day in bytes, segment overhead and
    /// sparse index included.
    pub fn bytes_per_day(&self) -> f64 {
        let record_bytes = self.frames_per_day() * self.frame_bytes();
        let index_bytes = self.frames_per_day() / self.index_every.max(1) as f64 * 16.0;
        let segments = (record_bytes / self.segment_bytes as f64).ceil();
        record_bytes + index_bytes + segments * self.segment_overhead_bytes as f64
    }

    /// Segments rotated through per patient-day.
    pub fn segments_per_day(&self) -> f64 {
        self.bytes_per_day() / self.segment_bytes as f64
    }

    /// Patient-days of retention per GiB of disk.
    pub fn days_per_gib(&self) -> f64 {
        (1u64 << 30) as f64 / self.bytes_per_day()
    }

    /// `fdatasync` calls per patient-day under `cadence` (seal syncs
    /// included).
    pub fn fsyncs_per_day(&self, cadence: SyncCadence) -> f64 {
        let seals = self.segments_per_day();
        match cadence {
            SyncCadence::PerRecord => self.frames_per_day() + seals,
            SyncCadence::EveryN(n) => self.frames_per_day() / n.max(1) as f64 + seals,
            SyncCadence::Never => seals,
        }
    }

    /// Raw (uncompressed, unframed) bytes per patient-day — the baseline
    /// the archive's compressed storage is saving against.
    pub fn raw_bytes_per_day(&self) -> f64 {
        self.sample_rate_hz * 86_400.0 * self.leads as f64 * self.bits_per_sample / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_magnitudes() {
        let m = ArchiveCapacityModel::paper_default();
        // One 2-second window every 2 s: 43 200 frames/day.
        assert_eq!(m.frames_per_day(), 43_200.0);
        // CR 50 % of 512×12 bits = 384 payload bytes + 13 + 15 framing.
        assert_eq!(m.frame_bytes(), 384.0 + 13.0 + 15.0);
        // ~17.8 MB/day: a 4 MiB segment every ~5.7 hours.
        let mb = m.bytes_per_day() / 1e6;
        assert!((17.0..19.0).contains(&mb), "{mb} MB/day");
        assert!(m.segments_per_day() > 4.0 && m.segments_per_day() < 5.0);
        // A GiB holds roughly two patient-months.
        assert!((55.0..65.0).contains(&m.days_per_gib()), "{}", m.days_per_gib());
    }

    #[test]
    fn fsync_cadences_are_ordered() {
        let m = ArchiveCapacityModel::paper_default();
        let always = m.fsyncs_per_day(SyncCadence::PerRecord);
        let every64 = m.fsyncs_per_day(SyncCadence::EveryN(64));
        let never = m.fsyncs_per_day(SyncCadence::Never);
        assert!(always > every64 && every64 > never);
        assert_eq!(always, 43_200.0 + m.segments_per_day());
        assert!(never < 10.0, "seal-only syncs stay rare");
    }

    #[test]
    fn compression_halves_storage_versus_raw() {
        let m = ArchiveCapacityModel::paper_default();
        let ratio = m.bytes_per_day() / m.raw_bytes_per_day();
        // CR 50 % plus framing overhead: comfortably under 60 % of raw.
        assert!(ratio < 0.6, "{ratio}");
        assert!(ratio > 0.5, "framing cannot be free: {ratio}");
    }

    #[test]
    fn multi_lead_scales_linearly() {
        let one = ArchiveCapacityModel::paper_default();
        let three = ArchiveCapacityModel { leads: 3, ..one };
        let scale = three.bytes_per_day() / one.bytes_per_day();
        assert!((scale - 3.0).abs() < 0.01, "{scale}");
    }
}
