//! MSP430-class mote model: cycle costs and memory footprint.
//!
//! The paper runs its encoder on the ShimmerTM mote's MSP430F1611 —
//! 16-bit, 8 MHz, 10 kB RAM, 48 kB flash, hardware multiplier, no FPU
//! (§IV-A1). We cannot ship that hardware, so this module prices the
//! *actual integer operation counts* of our encoder with a per-operation
//! cycle model. The single free parameter (cycles per gather-add) is
//! calibrated so the paper's headline measurement — "a 2-second vector is
//! CS-sampled in 82 ms" at N = 512, d = 12 — is reproduced, and every
//! other number (other d, other CR, Huffman share, CPU utilization) then
//! *follows from the model* rather than being asserted.

use cs_codec::Codebook;
use cs_core::{EncodedPacket, PacketKind, SystemConfig};
use std::time::Duration;

/// Static description of an MSP430-class microcontroller.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MoteSpec {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// On-chip RAM in bytes.
    pub ram_bytes: usize,
    /// On-chip flash in bytes.
    pub flash_bytes: usize,
    /// Cycles for one sparse-sensing gather-add (index fetch, sample load,
    /// 16→32-bit add, bookkeeping). Calibrated to the paper's 82 ms.
    pub cycles_per_gather_add: f64,
    /// Cycles per differencing element (load, subtract, clamp, store).
    pub cycles_per_diff: f64,
    /// Cycles per Huffman symbol (table lookup + length fetch).
    pub cycles_per_huffman_symbol: f64,
    /// Cycles per emitted payload bit (shift/mask/store amortized).
    pub cycles_per_output_bit: f64,
    /// Average core power when active, in milliwatts.
    pub active_power_mw: f64,
    /// Sleep/idle power in milliwatts (core only).
    pub sleep_power_mw: f64,
}

impl MoteSpec {
    /// The ShimmerTM mainboard's MSP430F1611 at 8 MHz.
    ///
    /// `cycles_per_gather_add` = 107 reproduces the paper's 82 ms for the
    /// N = 512, d = 12 CS stage: `512·12·107 / 8 MHz = 82.2 ms`.
    pub fn msp430f1611() -> Self {
        MoteSpec {
            clock_hz: 8.0e6,
            ram_bytes: 10 * 1024,
            flash_bytes: 48 * 1024,
            cycles_per_gather_add: 107.0,
            cycles_per_diff: 14.0,
            cycles_per_huffman_symbol: 42.0,
            cycles_per_output_bit: 9.0,
            active_power_mw: 7.2,
            sleep_power_mw: 0.02,
        }
    }
}

/// Cycle/time breakdown for encoding one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EncodeCost {
    /// Cycles in the linear CS (sparse sensing) stage.
    pub cs_cycles: f64,
    /// Cycles in the differencing stage.
    pub diff_cycles: f64,
    /// Cycles in the Huffman stage (symbols + bit output).
    pub entropy_cycles: f64,
}

impl EncodeCost {
    /// Total cycles.
    pub fn total_cycles(&self) -> f64 {
        self.cs_cycles + self.diff_cycles + self.entropy_cycles
    }

    /// Wall-clock time on a given mote.
    pub fn time_on(&self, spec: &MoteSpec) -> Duration {
        Duration::from_secs_f64(self.total_cycles() / spec.clock_hz)
    }

    /// CPU utilization against a packet period (2 s in the paper).
    pub fn cpu_utilization(&self, spec: &MoteSpec, packet_period: Duration) -> f64 {
        self.time_on(spec).as_secs_f64() / packet_period.as_secs_f64()
    }
}

/// Prices one encoded packet on the mote model.
///
/// The CS stage costs `N·d` gather-adds regardless of packet kind; the
/// entropy stage is charged per symbol and per actually-emitted bit, so
/// well-compressed packets genuinely cost less.
pub fn encode_cost(spec: &MoteSpec, config: &SystemConfig, packet: &EncodedPacket) -> EncodeCost {
    let n = config.packet_len() as f64;
    let d = config.sparse_ones_per_column() as f64;
    let m = config.measurements() as f64;
    let cs_cycles = n * d * spec.cycles_per_gather_add;
    let diff_cycles = m * spec.cycles_per_diff;
    let entropy_cycles = match packet.kind {
        // Reference packets bypass the codebook: raw 16-bit stores.
        PacketKind::Reference => packet.payload_bits as f64 * spec.cycles_per_output_bit,
        PacketKind::Delta => {
            m * spec.cycles_per_huffman_symbol
                + packet.payload_bits as f64 * spec.cycles_per_output_bit
        }
    };
    EncodeCost {
        cs_cycles,
        diff_cycles,
        entropy_cycles,
    }
}

/// Prices the classical DWT + top-K transform-coding encoder on the same
/// mote model, for the CS-vs-transform-coding trade-off ablation
/// (`baseline_dwt`). Unlike the CS gather-add, this encoder needs real
/// fixed-point multiply-accumulates (HW multiplier), a top-K selection
/// pass, and per-coefficient coding.
///
/// Cost components:
/// * the periodized DWT: `Σ_level n_level · L · 2` MACs,
/// * top-K selection via a K-heap over N coefficients: `N·log₂K`
///   compare/swap steps,
/// * coding: one output word per kept coefficient.
pub fn dwt_baseline_cost(
    _spec: &MoteSpec,
    packet_len: usize,
    filter_len: usize,
    levels: usize,
    kept: usize,
) -> EncodeCost {
    // Fixed-point MAC with the MSP430 hardware multiplier: operand loads,
    // 16×16 multiply, 32-bit accumulate, pointer bookkeeping.
    let cycles_per_mac = 18.0;
    let cycles_per_heap_step = 16.0;
    let mut macs = 0.0;
    let mut n_level = packet_len as f64;
    for _ in 0..levels {
        macs += n_level * filter_len as f64 * 2.0;
        n_level /= 2.0;
    }
    let heap_steps = packet_len as f64 * (kept.max(2) as f64).log2();
    EncodeCost {
        cs_cycles: macs * cycles_per_mac,
        diff_cycles: heap_steps * cycles_per_heap_step,
        entropy_cycles: kept as f64 * 24.0,
    }
}

/// RAM/flash budget of the encoder, byte-accurate for *our* encoder's
/// actual buffers (the analogue of the paper's "6.5 kB of RAM and 7.5 kB
/// of Flash, 1.5 kB of which are for Huffman codebook storage").
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FootprintReport {
    /// Named RAM consumers and their sizes in bytes.
    pub ram_items: Vec<(String, usize)>,
    /// Named flash consumers and their sizes in bytes.
    pub flash_items: Vec<(String, usize)>,
}

impl FootprintReport {
    /// Total RAM bytes.
    pub fn ram_total(&self) -> usize {
        self.ram_items.iter().map(|(_, b)| b).sum()
    }

    /// Total flash bytes.
    pub fn flash_total(&self) -> usize {
        self.flash_items.iter().map(|(_, b)| b).sum()
    }

    /// Whether the budget fits a given mote.
    pub fn fits(&self, spec: &MoteSpec) -> bool {
        self.ram_total() <= spec.ram_bytes && self.flash_total() <= spec.flash_bytes
    }

    /// Renders the breakdown as aligned text rows.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("RAM:\n");
        for (name, bytes) in &self.ram_items {
            out.push_str(&format!("  {name:<28} {bytes:>6} B\n"));
        }
        out.push_str(&format!("  {:<28} {:>6} B\n", "TOTAL", self.ram_total()));
        out.push_str("Flash:\n");
        for (name, bytes) in &self.flash_items {
            out.push_str(&format!("  {name:<28} {bytes:>6} B\n"));
        }
        out.push_str(&format!("  {:<28} {:>6} B\n", "TOTAL", self.flash_total()));
        out
    }
}

/// Computes the encoder's memory footprint for a configuration/codebook
/// pair.
///
/// RAM covers the double-buffered sample window, the measurement and
/// differencing state, the outgoing bitstream and a stack allowance; flash
/// covers the code itself (estimated from the paper's 6 kB binary), the
/// stored codebook, and the 8-byte sensing seed (the matrix is *expanded*,
/// never stored — the design decision that makes sparse sensing fit).
pub fn encoder_footprint(config: &SystemConfig, codebook: &Codebook) -> FootprintReport {
    let n = config.packet_len();
    let m = config.measurements();
    let ram_items = vec![
        ("sample buffer (2 × N × i16)".to_owned(), 2 * n * 2),
        ("measurement vector (M × i32)".to_owned(), m * 4),
        ("differencing state (M × i32)".to_owned(), m * 4),
        ("delta scratch (M × i16)".to_owned(), m * 2),
        ("bitstream buffer (M × 2 B)".to_owned(), m * 2),
        ("stack + misc allowance".to_owned(), 512),
    ];
    let flash_items = vec![
        ("encoder code (measured binary)".to_owned(), 6 * 1024),
        (
            "Huffman codebook (codes + lengths)".to_owned(),
            codebook.mote_storage_bytes(),
        ),
        ("sensing seed".to_owned(), 8),
    ];
    FootprintReport {
        ram_items,
        flash_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_core::{uniform_codebook, Encoder};
    use std::sync::Arc;

    fn one_packet(config: &SystemConfig) -> EncodedPacket {
        let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
        let mut enc = Encoder::new(config, cb).unwrap();
        enc.encode_packet(&vec![0; config.packet_len()]).unwrap()
    }

    #[test]
    fn cs_stage_reproduces_82_ms() {
        let spec = MoteSpec::msp430f1611();
        let config = SystemConfig::paper_default();
        let p = one_packet(&config);
        let cost = encode_cost(&spec, &config, &p);
        let cs_ms = cost.cs_cycles / spec.clock_hz * 1e3;
        assert!(
            (cs_ms - 82.0).abs() < 2.0,
            "CS stage modeled at {cs_ms} ms, paper says 82 ms"
        );
    }

    #[test]
    fn node_cpu_utilization_under_five_percent() {
        // The paper: "average CPU usage of less than 5 %" on the node.
        let spec = MoteSpec::msp430f1611();
        let config = SystemConfig::paper_default();
        let p = one_packet(&config);
        let cost = encode_cost(&spec, &config, &p);
        let util = cost.cpu_utilization(&spec, Duration::from_secs(2));
        assert!(util < 0.05, "modeled utilization {util}");
        assert!(util > 0.02, "model suspiciously cheap: {util}");
    }

    #[test]
    fn cost_scales_linearly_with_d() {
        let spec = MoteSpec::msp430f1611();
        let c12 = SystemConfig::paper_default();
        let c24 = SystemConfig::builder().sparse_ones_per_column(24).build().unwrap();
        let p12 = one_packet(&c12);
        let p24 = one_packet(&c24);
        let a = encode_cost(&spec, &c12, &p12).cs_cycles;
        let b = encode_cost(&spec, &c24, &p24).cs_cycles;
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_fits_the_msp430() {
        let config = SystemConfig::paper_default();
        let cb = uniform_codebook(512).unwrap();
        let report = encoder_footprint(&config, &cb);
        let spec = MoteSpec::msp430f1611();
        assert!(report.fits(&spec), "{}", report.to_table());
        // Same order as the paper's 6.5 kB / 7.5 kB figures.
        assert!(report.ram_total() > 3 * 1024 && report.ram_total() < 8 * 1024);
        assert!(report.flash_total() > 6 * 1024 && report.flash_total() < 9 * 1024);
        // Codebook share matches the paper's 1.5 kB.
        let cb_bytes = report
            .flash_items
            .iter()
            .find(|(n, _)| n.contains("codebook"))
            .unwrap()
            .1;
        assert_eq!(cb_bytes, 1536);
    }

    #[test]
    fn table_contains_totals() {
        let config = SystemConfig::paper_default();
        let cb = uniform_codebook(512).unwrap();
        let t = encoder_footprint(&config, &cb).to_table();
        assert!(t.contains("TOTAL"));
        assert!(t.contains("RAM"));
    }
}
