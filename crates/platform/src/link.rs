//! Lossy-channel models for the Bluetooth link.
//!
//! The paper's demo ran over a clean desk-range Bluetooth link, but an
//! ambulatory WBSN sees fading and interference. The differencing stage's
//! reference-packet cadence exists precisely to bound the damage of a
//! lost packet (a delta without its predecessor is useless). Two models
//! live here:
//!
//! * [`ChannelModel`] — i.i.d. bit errors with CRC-style whole-packet
//!   discard, the classical analytic model (goodput has a closed form).
//! * [`LossyLink`] — the full hostile wire: a [`GilbertElliott`]
//!   two-state burst-error process plus seeded drop / duplicate /
//!   reorder / truncate injection, producing the actual damaged bytes so
//!   ingest-side CRC checking and concealment can be exercised for real.
//!
//! On a body-area link errors cluster (fading, interference bursts): the
//! Gilbert–Elliott chain spends most of its time in a near-clean *good*
//! state and short episodes in a *bad* state with a high bit-error rate.
//! The i.i.d. model at the same mean BER would damage almost every
//! ~1 kB frame (`(1 − 10⁻³)^8000 ≈ e⁻⁸`); bursts concentrate the same
//! errors into few frames, which is both physically right and what makes
//! frame-level CRC + concealment a sensible design.

use cs_sensing::MotePrng;

/// An i.i.d.-bit-error channel with whole-packet discard.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    bit_error_rate: f64,
    rng: MotePrng,
}

impl ChannelModel {
    /// Creates a channel with the given bit error rate (0 = lossless).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ber < 1`.
    pub fn new(bit_error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&bit_error_rate),
            "ChannelModel: BER must be in [0, 1)"
        );
        ChannelModel {
            bit_error_rate,
            rng: MotePrng::new(seed),
        }
    }

    /// The configured bit error rate.
    pub fn bit_error_rate(&self) -> f64 {
        self.bit_error_rate
    }

    /// Probability a packet of `bytes` arrives intact: `(1 − BER)^{8·bytes}`.
    pub fn delivery_probability(&self, bytes: usize) -> f64 {
        (1.0 - self.bit_error_rate).powi((bytes * 8) as i32)
    }

    /// Simulates one transmission; `true` means the packet arrived intact
    /// (any corrupted packet is assumed CRC-discarded at the receiver).
    pub fn transmit(&mut self, bytes: usize) -> bool {
        let p = self.delivery_probability(bytes);
        self.rng.next_f64() < p
    }
}

/// Outcome statistics of a lossy streaming run (filled by callers that
/// drive a decoder through a [`ChannelModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossReport {
    /// Packets offered to the channel.
    pub sent: usize,
    /// Packets dropped by the channel.
    pub dropped: usize,
    /// Delivered packets the decoder rejected while desynchronized.
    pub rejected: usize,
    /// Packets fully decoded.
    pub decoded: usize,
}

impl LossReport {
    /// Fraction of offered packets that produced output.
    pub fn goodput(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.decoded as f64 / self.sent as f64
        }
    }
}

/// Parameters of a two-state Gilbert–Elliott burst-error channel.
///
/// The chain transitions per transmitted bit: in the *good* state bits
/// flip with probability `ber_good` and the chain enters the bad state
/// with probability `p_bad`; in the *bad* state bits flip with
/// probability `ber_bad` and the chain recovers with probability
/// `p_good`. Mean burst length is `1 / p_good` bits and the stationary
/// bad-state fraction is `p_bad / (p_bad + p_good)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottParams {
    /// Per-bit probability of entering the bad state from the good state.
    pub p_bad: f64,
    /// Per-bit probability of recovering from the bad state.
    pub p_good: f64,
    /// Bit error rate while in the good state.
    pub ber_good: f64,
    /// Bit error rate while in the bad state.
    pub ber_bad: f64,
}

impl GilbertElliottParams {
    /// Burst-error parameters hitting a target mean BER with the channel's
    /// default burst shape: clean good state, `ber_bad` = 0.125, mean
    /// burst length 512 bits (a deep fade that shreds whatever frame it
    /// lands on, but lands on few frames — at mean BER 10⁻³ roughly one
    /// ~1 kB frame in eight is hit).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ mean_ber < 0.125`.
    pub fn for_mean_ber(mean_ber: f64) -> Self {
        const BER_BAD: f64 = 0.125;
        const MEAN_BURST_BITS: f64 = 512.0;
        assert!(
            (0.0..BER_BAD).contains(&mean_ber),
            "GilbertElliott: mean BER must be in [0, {BER_BAD})"
        );
        // stationary_bad · ber_bad = mean_ber  ⇒  solve for p_bad.
        let p_good = 1.0 / MEAN_BURST_BITS;
        let stationary_bad = mean_ber / BER_BAD;
        let p_bad = if stationary_bad == 0.0 {
            0.0
        } else {
            p_good * stationary_bad / (1.0 - stationary_bad)
        };
        GilbertElliottParams {
            p_bad,
            p_good,
            ber_good: 0.0,
            ber_bad: BER_BAD,
        }
    }

    /// Long-run fraction of bits spent in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_bad == 0.0 {
            0.0
        } else {
            self.p_bad / (self.p_bad + self.p_good)
        }
    }

    /// Long-run mean bit error rate.
    pub fn mean_ber(&self) -> f64 {
        let bad = self.stationary_bad();
        (1.0 - bad) * self.ber_good + bad * self.ber_bad
    }
}

/// A seeded Gilbert–Elliott burst-error process over frame bytes.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    params: GilbertElliottParams,
    bad: bool,
    rng: MotePrng,
}

impl GilbertElliott {
    /// Creates the process in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(params: GilbertElliottParams, seed: u64) -> Self {
        for (name, p) in [
            ("p_bad", params.p_bad),
            ("p_good", params.p_good),
            ("ber_good", params.ber_good),
            ("ber_bad", params.ber_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "GilbertElliott: {name} must be in [0, 1]");
        }
        GilbertElliott {
            params,
            bad: false,
            rng: MotePrng::new(seed),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &GilbertElliottParams {
        &self.params
    }

    /// Walks the chain across every bit of `frame`, flipping errored
    /// bits in place. Returns the number of bits flipped.
    pub fn corrupt(&mut self, frame: &mut [u8]) -> u32 {
        let mut flipped = 0;
        for byte in frame.iter_mut() {
            for bit in 0..8 {
                let (transition, ber) = if self.bad {
                    (self.params.p_good, self.params.ber_bad)
                } else {
                    (self.params.p_bad, self.params.ber_good)
                };
                if self.rng.next_f64() < transition {
                    self.bad = !self.bad;
                }
                if self.rng.next_f64() < ber {
                    *byte ^= 1 << bit;
                    flipped += 1;
                }
            }
        }
        flipped
    }
}

/// Fault-injection rates for a [`LossyLink`] (all per-frame
/// probabilities; [`GilbertElliott`] corruption is per-bit).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a delivered frame is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered frame is held back and released after the
    /// next frame (pairwise reordering).
    pub reorder: f64,
    /// Probability a delivered frame loses its tail (a random cut point).
    pub truncate: f64,
    /// Burst corruption applied to delivered frames, if any.
    pub gilbert_elliott: Option<GilbertElliottParams>,
}

/// One frame as it leaves the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Index of the frame in offer order (for ground-truth accounting in
    /// tests; a real receiver has no such oracle).
    pub origin: usize,
    /// The delivered bytes, damage included.
    pub bytes: Vec<u8>,
    /// Whether the bytes are byte-identical to what was offered.
    pub intact: bool,
}

/// Link-side ground truth counters (what the wire actually did, as
/// opposed to what the receiver could observe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames offered to the link.
    pub sent: usize,
    /// Frames silently dropped.
    pub dropped: usize,
    /// Deliveries out of the link (duplicates count twice).
    pub delivered: usize,
    /// Deliveries with at least one flipped bit.
    pub corrupted: usize,
    /// Deliveries shortened by truncation.
    pub truncated: usize,
    /// Extra deliveries from duplication.
    pub duplicated: usize,
    /// Frames that were held and released out of order.
    pub reordered: usize,
}

impl LinkStats {
    /// Fraction of offered frames the link dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }
}

/// A seeded, deterministic lossy link: drop → truncate → burst-corrupt →
/// duplicate → (pairwise) reorder, in that order.
///
/// # Examples
///
/// ```
/// use cs_platform::{Delivery, FaultSpec, LossyLink};
///
/// let mut link = LossyLink::new(FaultSpec { drop: 0.5, ..FaultSpec::default() }, 7);
/// let mut out: Vec<Delivery> = Vec::new();
/// for i in 0..100_u8 {
///     link.offer(&[i; 16], &mut out);
/// }
/// link.flush(&mut out);
/// let stats = link.stats();
/// assert_eq!(stats.sent, 100);
/// assert_eq!(out.len(), 100 - stats.dropped);
/// assert!(stats.dropped > 20 && stats.dropped < 80);
/// ```
#[derive(Debug, Clone)]
pub struct LossyLink {
    spec: FaultSpec,
    rng: MotePrng,
    ge: Option<GilbertElliott>,
    /// Frame held back for pairwise reordering.
    held: Option<Delivery>,
    stats: LinkStats,
    offered: usize,
}

impl LossyLink {
    /// Creates a link; all randomness derives from `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        let ge = spec
            .gilbert_elliott
            .map(|params| GilbertElliott::new(params, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)));
        LossyLink {
            spec,
            rng: MotePrng::new(seed),
            ge,
            held: None,
            stats: LinkStats::default(),
            offered: 0,
        }
    }

    /// Ground-truth counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Offers one frame to the link; deliveries (0, 1 or more frames,
    /// depending on drops/duplicates/held reorders) are appended to `out`.
    pub fn offer(&mut self, bytes: &[u8], out: &mut Vec<Delivery>) {
        let origin = self.offered;
        self.offered += 1;
        self.stats.sent += 1;

        if self.rng.next_f64() < self.spec.drop {
            self.stats.dropped += 1;
            // A drop still releases a held frame: the reorder hold is
            // "this frame overtakes the next transmission", and the next
            // transmission just happened (even if the wire ate it).
            if let Some(held) = self.held.take() {
                self.deliver(held, out);
            }
            return;
        }

        let mut frame = bytes.to_vec();
        let mut intact = true;

        if self.rng.next_f64() < self.spec.truncate && frame.len() > 1 {
            let keep = 1 + self.rng.next_below((frame.len() - 1) as u32) as usize;
            frame.truncate(keep);
            self.stats.truncated += 1;
            intact = false;
        }
        if let Some(ge) = &mut self.ge {
            if ge.corrupt(&mut frame) > 0 {
                self.stats.corrupted += 1;
                intact = false;
            }
        }

        let delivery = Delivery { origin, bytes: frame, intact };

        let duplicate = self.rng.next_f64() < self.spec.duplicate;
        let hold = self.rng.next_f64() < self.spec.reorder;

        if duplicate {
            self.stats.duplicated += 1;
            self.deliver(delivery.clone(), out);
        }
        if hold && self.held.is_none() {
            self.stats.reordered += 1;
            self.held = Some(delivery);
        } else {
            self.deliver(delivery, out);
            if let Some(held) = self.held.take() {
                self.deliver(held, out);
            }
        }
    }

    /// Releases any held frame. Call at end of stream.
    pub fn flush(&mut self, out: &mut Vec<Delivery>) {
        if let Some(held) = self.held.take() {
            self.deliver(held, out);
        }
    }

    fn deliver(&mut self, delivery: Delivery, out: &mut Vec<Delivery>) {
        self.stats.delivered += 1;
        out.push(delivery);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_delivers_everything() {
        let mut ch = ChannelModel::new(0.0, 1);
        assert_eq!(ch.delivery_probability(1000), 1.0);
        for _ in 0..100 {
            assert!(ch.transmit(500));
        }
    }

    #[test]
    fn delivery_probability_decays_with_size() {
        let ch = ChannelModel::new(1e-4, 2);
        let small = ch.delivery_probability(10);
        let large = ch.delivery_probability(1000);
        assert!(small > large);
        // (1 − 1e−4)^80 ≈ 0.992
        assert!((small - 0.992).abs() < 1e-3);
    }

    #[test]
    fn empirical_loss_rate_matches_model() {
        let mut ch = ChannelModel::new(5e-4, 3);
        let bytes = 300;
        let p = ch.delivery_probability(bytes);
        let trials = 20_000;
        let delivered = (0..trials).filter(|_| ch.transmit(bytes)).count();
        let empirical = delivered as f64 / trials as f64;
        assert!(
            (empirical - p).abs() < 0.01,
            "model {p}, empirical {empirical}"
        );
    }

    #[test]
    fn report_goodput() {
        let r = LossReport {
            sent: 10,
            dropped: 2,
            rejected: 1,
            decoded: 7,
        };
        assert!((r.goodput() - 0.7).abs() < 1e-12);
        assert_eq!(LossReport::default().goodput(), 0.0);
    }

    #[test]
    #[should_panic(expected = "BER must be")]
    fn invalid_ber_rejected() {
        let _ = ChannelModel::new(1.0, 1);
    }

    #[test]
    fn gilbert_elliott_preset_hits_target_mean_ber() {
        let params = GilbertElliottParams::for_mean_ber(1e-3);
        assert!((params.mean_ber() - 1e-3).abs() < 1e-9);
        assert!((GilbertElliottParams::for_mean_ber(0.0).mean_ber()).abs() < 1e-15);

        // Empirically: walk ~8M bits and compare the flip rate.
        let mut ge = GilbertElliott::new(params, 42);
        let mut frame = vec![0u8; 1_000_000];
        let flipped = ge.corrupt(&mut frame);
        let empirical = flipped as f64 / (frame.len() * 8) as f64;
        assert!(
            (empirical - 1e-3).abs() < 3e-4,
            "target 1e-3, empirical {empirical}"
        );
        // The flips must actually be in the bytes.
        let ones: u32 = frame.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, flipped);
    }

    #[test]
    fn gilbert_elliott_errors_cluster_in_bursts() {
        // At mean BER 1e-3 with 64-bit bursts, most 1 kB frames are
        // untouched while an i.i.d. channel would damage nearly all
        // ((1-1e-3)^8000 ≈ 3e-4 intact).
        let mut ge = GilbertElliott::new(GilbertElliottParams::for_mean_ber(1e-3), 7);
        let frames = 500;
        let intact = (0..frames)
            .filter(|_| {
                let mut frame = vec![0u8; 1024];
                ge.corrupt(&mut frame) == 0
            })
            .count();
        assert!(
            intact > frames / 2,
            "bursty channel should leave most frames intact, got {intact}/{frames}"
        );
    }

    #[test]
    fn gilbert_elliott_is_deterministic_per_seed() {
        let params = GilbertElliottParams::for_mean_ber(5e-3);
        let run = |seed| {
            let mut ge = GilbertElliott::new(params, seed);
            let mut frame = vec![0u8; 4096];
            ge.corrupt(&mut frame);
            frame
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn lossy_link_accounting_is_exact() {
        let spec = FaultSpec {
            drop: 0.05,
            duplicate: 0.01,
            reorder: 0.02,
            truncate: 0.01,
            gilbert_elliott: Some(GilbertElliottParams::for_mean_ber(1e-3)),
        };
        let mut link = LossyLink::new(spec, 1234);
        let mut out = Vec::new();
        let frames = 2000;
        for i in 0..frames {
            let frame = vec![(i % 251) as u8; 200];
            link.offer(&frame, &mut out);
        }
        link.flush(&mut out);
        let stats = link.stats();
        assert_eq!(stats.sent, frames);
        assert_eq!(stats.delivered, out.len());
        assert_eq!(stats.delivered, frames - stats.dropped + stats.duplicated);
        assert!(stats.dropped > 0 && stats.corrupted > 0 && stats.reordered > 0);
        // intact flag is truthful.
        for d in &out {
            let original = vec![(d.origin % 251) as u8; 200];
            assert_eq!(d.intact, d.bytes == original, "origin {}", d.origin);
        }
    }

    #[test]
    fn lossy_link_is_deterministic_per_seed() {
        let spec = FaultSpec {
            drop: 0.1,
            reorder: 0.1,
            ..FaultSpec::default()
        };
        let run = |seed| {
            let mut link = LossyLink::new(spec, seed);
            let mut out = Vec::new();
            for i in 0..100_u8 {
                link.offer(&[i; 32], &mut out);
            }
            link.flush(&mut out);
            out
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn clean_spec_is_a_passthrough() {
        let mut link = LossyLink::new(FaultSpec::default(), 0);
        let mut out = Vec::new();
        for i in 0..50_u8 {
            link.offer(&[i, i, i], &mut out);
        }
        link.flush(&mut out);
        assert_eq!(out.len(), 50);
        for (i, d) in out.iter().enumerate() {
            assert_eq!(d.origin, i);
            assert!(d.intact);
            assert_eq!(d.bytes, vec![i as u8; 3]);
        }
        assert_eq!(link.stats().drop_rate(), 0.0);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        // With reorder = 1.0 the link holds frame 0, delivers frame 1,
        // releases frame 0, holds frame 2, ... — a perfect pairwise swap.
        let spec = FaultSpec { reorder: 1.0, ..FaultSpec::default() };
        let mut link = LossyLink::new(spec, 3);
        let mut out = Vec::new();
        for i in 0..4_u8 {
            link.offer(&[i], &mut out);
        }
        link.flush(&mut out);
        let origins: Vec<usize> = out.iter().map(|d| d.origin).collect();
        assert_eq!(origins, vec![1, 0, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "mean BER must be")]
    fn preset_rejects_unreachable_mean_ber() {
        let _ = GilbertElliottParams::for_mean_ber(0.2);
    }
}
