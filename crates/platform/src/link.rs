//! Lossy-channel model for the Bluetooth link.
//!
//! The paper's demo ran over a clean desk-range Bluetooth link, but an
//! ambulatory WBSN sees fading and interference. The differencing stage's
//! reference-packet cadence exists precisely to bound the damage of a
//! lost packet (a delta without its predecessor is useless). This module
//! models the channel as i.i.d. bit errors with CRC-style whole-packet
//! discard, so the `packet_loss` example and the failure-injection tests
//! can drive the real decoder through realistic loss patterns.

use cs_sensing::MotePrng;

/// An i.i.d.-bit-error channel with whole-packet discard.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    bit_error_rate: f64,
    rng: MotePrng,
}

impl ChannelModel {
    /// Creates a channel with the given bit error rate (0 = lossless).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ber < 1`.
    pub fn new(bit_error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&bit_error_rate),
            "ChannelModel: BER must be in [0, 1)"
        );
        ChannelModel {
            bit_error_rate,
            rng: MotePrng::new(seed),
        }
    }

    /// The configured bit error rate.
    pub fn bit_error_rate(&self) -> f64 {
        self.bit_error_rate
    }

    /// Probability a packet of `bytes` arrives intact: `(1 − BER)^{8·bytes}`.
    pub fn delivery_probability(&self, bytes: usize) -> f64 {
        (1.0 - self.bit_error_rate).powi((bytes * 8) as i32)
    }

    /// Simulates one transmission; `true` means the packet arrived intact
    /// (any corrupted packet is assumed CRC-discarded at the receiver).
    pub fn transmit(&mut self, bytes: usize) -> bool {
        let p = self.delivery_probability(bytes);
        self.rng.next_f64() < p
    }
}

/// Outcome statistics of a lossy streaming run (filled by callers that
/// drive a decoder through a [`ChannelModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossReport {
    /// Packets offered to the channel.
    pub sent: usize,
    /// Packets dropped by the channel.
    pub dropped: usize,
    /// Delivered packets the decoder rejected while desynchronized.
    pub rejected: usize,
    /// Packets fully decoded.
    pub decoded: usize,
}

impl LossReport {
    /// Fraction of offered packets that produced output.
    pub fn goodput(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.decoded as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_delivers_everything() {
        let mut ch = ChannelModel::new(0.0, 1);
        assert_eq!(ch.delivery_probability(1000), 1.0);
        for _ in 0..100 {
            assert!(ch.transmit(500));
        }
    }

    #[test]
    fn delivery_probability_decays_with_size() {
        let ch = ChannelModel::new(1e-4, 2);
        let small = ch.delivery_probability(10);
        let large = ch.delivery_probability(1000);
        assert!(small > large);
        // (1 − 1e−4)^80 ≈ 0.992
        assert!((small - 0.992).abs() < 1e-3);
    }

    #[test]
    fn empirical_loss_rate_matches_model() {
        let mut ch = ChannelModel::new(5e-4, 3);
        let bytes = 300;
        let p = ch.delivery_probability(bytes);
        let trials = 20_000;
        let delivered = (0..trials).filter(|_| ch.transmit(bytes)).count();
        let empirical = delivered as f64 / trials as f64;
        assert!(
            (empirical - p).abs() < 0.01,
            "model {p}, empirical {empirical}"
        );
    }

    #[test]
    fn report_goodput() {
        let r = LossReport {
            sent: 10,
            dropped: 2,
            rejected: 1,
            decoded: 7,
        };
        assert!((r.goodput() - 0.7).abs() < 1e-12);
        assert_eq!(LossReport::default().goodput(), 0.0);
    }

    #[test]
    #[should_panic(expected = "BER must be")]
    fn invalid_ber_rejected() {
        let _ = ChannelModel::new(1.0, 1);
    }
}
