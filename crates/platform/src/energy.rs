//! Radio link and node-energy model.
//!
//! The paper's bottom-line claim is energetic: compressing on the mote
//! extends node lifetime by 12.9 % at CR 50 relative to streaming
//! uncompressed samples, because Bluetooth airtime dominates the budget
//! and CS + Huffman trades cheap 16-bit integer cycles for expensive
//! radio bits (§V). This module reproduces that trade with an explicit
//! power model:
//!
//! ```text
//!   P_node = P_base + u_cpu · P_cpu_active + r_bits · E_radio_bit
//! ```
//!
//! The defaults are calibrated to the ShimmerTM (Bluetooth class 2 module,
//! Li-poly 450 mAh pack) so the uncompressed baseline and the CR 50
//! compressed stream bracket the paper's published extension.

use crate::mote::MoteSpec;
use std::time::Duration;

/// Bluetooth-class radio link model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RadioSpec {
    /// Effective application-layer throughput in bits/s.
    pub bitrate_bps: f64,
    /// Energy per transmitted bit in joules (amortizing radio-on overhead).
    pub energy_per_bit_j: f64,
}

impl RadioSpec {
    /// The ShimmerTM's class-2 Bluetooth module (RN-42-class numbers).
    /// The per-bit energy amortizes link maintenance over the ECG stream
    /// and is calibrated so the CR 50 operating point reproduces the
    /// paper's 12.9 % lifetime extension (see `table_lifetime`).
    pub fn shimmer_bluetooth() -> Self {
        RadioSpec {
            bitrate_bps: 230_000.0,
            energy_per_bit_j: 0.4e-6,
        }
    }

    /// Airtime to transmit `bytes`.
    pub fn airtime(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bitrate_bps)
    }

    /// Transmit energy for `bytes`, in joules.
    pub fn tx_energy_j(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 * self.energy_per_bit_j
    }
}

/// Node-level energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyModel {
    /// The microcontroller model (for CPU power).
    pub mote: MoteSpec,
    /// The radio model.
    pub radio: RadioSpec,
    /// Always-on floor: analog front end, sampling, Bluetooth link
    /// maintenance — everything compression cannot touch. Milliwatts.
    pub base_power_mw: f64,
    /// Battery capacity in milliwatt-hours (ShimmerTM: 450 mAh × 3.7 V).
    pub battery_mwh: f64,
}

impl EnergyModel {
    /// ShimmerTM defaults.
    pub fn shimmer() -> Self {
        EnergyModel {
            mote: MoteSpec::msp430f1611(),
            radio: RadioSpec::shimmer_bluetooth(),
            base_power_mw: 6.0,
            battery_mwh: 450.0 * 3.7,
        }
    }

    /// Average node power for a workload described by its CPU utilization
    /// and payload bit rate. Milliwatts.
    pub fn average_power_mw(&self, cpu_utilization: f64, bits_per_second: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&cpu_utilization),
            "average_power_mw: utilization outside [0, 1]"
        );
        self.base_power_mw
            + cpu_utilization * self.mote.active_power_mw
            + bits_per_second * self.radio.energy_per_bit_j * 1000.0
    }

    /// Node lifetime at a constant average power, in hours.
    pub fn lifetime_hours(&self, average_power_mw: f64) -> f64 {
        assert!(average_power_mw > 0.0, "lifetime_hours: nonpositive power");
        self.battery_mwh / average_power_mw
    }
}

/// Comparison of the compressed and uncompressed operating points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LifetimeComparison {
    /// Lifetime streaming raw samples, in hours.
    pub uncompressed_hours: f64,
    /// Lifetime with the CS encoder active, in hours.
    pub compressed_hours: f64,
    /// Relative extension in percent (the paper's 12.9 % at CR 50).
    pub extension_percent: f64,
    /// Average power in each mode, milliwatts.
    pub uncompressed_power_mw: f64,
    /// Average compressed-mode power, milliwatts.
    pub compressed_power_mw: f64,
}

/// Evaluates the lifetime trade for one operating point.
///
/// * `raw_bits_per_packet` — what streaming uncompressed costs on air
///   (512 samples × 16-bit transport words in the paper's setup);
/// * `compressed_bits_per_packet` — measured mean framed packet size;
/// * `encoder_utilization` — measured/modeled encoder CPU share;
/// * `packet_period` — 2 s.
///
/// # Panics
///
/// Panics if the packet period is zero.
pub fn compare_lifetime(
    model: &EnergyModel,
    raw_bits_per_packet: f64,
    compressed_bits_per_packet: f64,
    encoder_utilization: f64,
    packet_period: Duration,
) -> LifetimeComparison {
    let period = packet_period.as_secs_f64();
    assert!(period > 0.0, "compare_lifetime: zero packet period");
    // Uncompressed node still spends a little CPU marshalling samples.
    let p_raw = model.average_power_mw(0.005, raw_bits_per_packet / period);
    let p_cs = model.average_power_mw(encoder_utilization, compressed_bits_per_packet / period);
    let raw_h = model.lifetime_hours(p_raw);
    let cs_h = model.lifetime_hours(p_cs);
    LifetimeComparison {
        uncompressed_hours: raw_h,
        compressed_hours: cs_h,
        extension_percent: (cs_h / raw_h - 1.0) * 100.0,
        uncompressed_power_mw: p_raw,
        compressed_power_mw: p_cs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_airtime_and_energy() {
        let r = RadioSpec::shimmer_bluetooth();
        let t = r.airtime(230_000 / 8);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((r.tx_energy_j(1000) - 8000.0 * 0.4e-6).abs() < 1e-12);
    }

    #[test]
    fn paper_operating_point_extension_near_12_9_percent() {
        // CR 50 linear + entropy ≈ 55 % end-to-end on ECG; encoder ≈ 4 %
        // CPU. Raw streaming: 512 samples × 16-bit transport words / 2 s.
        let model = EnergyModel::shimmer();
        let raw_bits = 512.0 * 16.0;
        let comp_bits = raw_bits * (1.0 - 0.55);
        let cmp = compare_lifetime(&model, raw_bits, comp_bits, 0.04, Duration::from_secs(2));
        assert!(
            cmp.extension_percent > 8.0 && cmp.extension_percent < 18.0,
            "extension {}% out of the paper's band",
            cmp.extension_percent
        );
        assert!(cmp.compressed_hours > cmp.uncompressed_hours);
    }

    #[test]
    fn compression_with_free_cpu_always_helps() {
        let model = EnergyModel::shimmer();
        let cmp = compare_lifetime(&model, 8192.0, 4096.0, 0.005, Duration::from_secs(2));
        assert!(cmp.extension_percent > 0.0);
    }

    #[test]
    fn expensive_cpu_can_cancel_radio_savings() {
        // Pathological point: tiny radio savings, huge CPU cost.
        let model = EnergyModel::shimmer();
        let cmp = compare_lifetime(&model, 8192.0, 8000.0, 0.9, Duration::from_secs(2));
        assert!(cmp.extension_percent < 0.0, "should lose: {cmp:?}");
    }

    #[test]
    fn lifetime_scales_with_battery() {
        let mut model = EnergyModel::shimmer();
        let p = model.average_power_mw(0.01, 1000.0);
        let h1 = model.lifetime_hours(p);
        model.battery_mwh *= 2.0;
        assert!((model.lifetime_hours(p) - 2.0 * h1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "utilization outside")]
    fn bad_utilization_panics() {
        let _ = EnergyModel::shimmer().average_power_mw(1.5, 0.0);
    }
}
