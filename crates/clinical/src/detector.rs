//! Incremental QRS detection.
//!
//! A stateful, window-boundary-safe port of
//! [`cs_ecg_data::detect_r_peaks`]'s Pan–Tompkins pipeline. The offline
//! detector re-filters the whole record on every call; a monitor that
//! receives one 512-sample window every two seconds cannot afford that —
//! nor can it afford missing a beat that straddles a window boundary.
//! This detector carries every piece of pipeline state across pushes:
//!
//! * the 31-tap band-pass FIR delay line (the two windowed-sinc
//!   low-passes collapse into one difference kernel, convolution being
//!   linear),
//! * the 5-point derivative/squaring lookahead,
//! * the moving-integration accumulator,
//! * and the Pan–Tompkins SPKI/NPKI threshold pair with its refractory
//!   bookkeeping.
//!
//! The port is *exact*: for any input and any split of it into pushes,
//! `push_window` + [`StreamingQrsDetector::flush`] emit precisely the
//! indices the offline detector returns on the concatenated record
//! (pinned by the `streaming_parity` integration test). That includes the
//! offline warm-up semantics — thresholds seed from the first two
//! seconds' integrated-energy peak, and the buffered warm-up region is
//! scanned retroactively once they do, so early beats are not lost.
//!
//! Detection lags the newest sample by the FIR group delay plus half the
//! integration window (≈ 115 ms at 256 Hz) — the price of exactness, and
//! far inside any alarm deadline.
//!
//! After construction the detector performs **zero heap allocations**:
//! every ring is sized for the configured sample rate up front (pinned by
//! the crate's counting-allocator test).

use cs_dsp::fir::lowpass_sinc;
use cs_dsp::window::hamming;
use cs_ecg_data::QrsDetectorConfig;

/// Band-pass FIR length used by the offline detector (odd ⇒ integer
/// group delay of `(LEN − 1) / 2` samples).
const FIR_LEN: usize = 31;
/// Samples the band-pass output lags the input.
const FIR_DELAY: usize = (FIR_LEN - 1) / 2;

/// One detected R peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QrsDetection {
    /// Absolute sample index of the refined peak (band-pass extremum).
    pub sample: usize,
    /// Integrated-energy value at the crest that triggered the
    /// detection — the morphology feature the beat classifier consumes
    /// (wide ectopic complexes integrate hotter than narrow ones).
    pub crest: f64,
}

/// A power-of-two ring indexed by *absolute* stream position. Old entries
/// are silently overwritten; capacity is chosen so every lookback the
/// pipeline performs is still resident.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<f64>,
    mask: usize,
}

impl Ring {
    fn new(min_capacity: usize) -> Self {
        let cap = min_capacity.next_power_of_two();
        Ring { buf: vec![0.0; cap], mask: cap - 1 }
    }

    #[inline]
    fn set(&mut self, index: usize, value: f64) {
        self.buf[index & self.mask] = value;
    }

    #[inline]
    fn get(&self, index: usize) -> f64 {
        self.buf[index & self.mask]
    }
}

/// The incremental Pan–Tompkins detector. See the module docs for the
/// parity contract with [`cs_ecg_data::detect_r_peaks`].
///
/// # Examples
///
/// ```
/// use cs_clinical::StreamingQrsDetector;
/// use cs_ecg_data::{EcgModel, EcgModelConfig, QrsDetectorConfig};
///
/// let (signal, beats) = EcgModel::new(EcgModelConfig::default(), 5).synthesize(20.0);
/// let mut det = StreamingQrsDetector::new(QrsDetectorConfig::at_360_hz());
/// let mut out = Vec::new();
/// for window in signal.chunks(512) {
///     det.push_window(window, &mut out); // windows of any size, any split
/// }
/// det.flush(&mut out);
/// assert!(out.len() >= beats.len().saturating_sub(2));
/// ```
#[derive(Debug, Clone)]
pub struct StreamingQrsDetector {
    config: QrsDetectorConfig,
    /// The collapsed band-pass kernel `lp(20 Hz) − lp(5 Hz)`.
    kernel: [f64; FIR_LEN],
    /// Input delay line, indexed by absolute input position.
    delay: [f64; FIR_LEN + 1],
    /// Inputs fed through the FIR, *including* flush padding.
    fed: usize,
    /// True input samples seen (the record length so far).
    seen: usize,
    band: Ring,
    /// Band values produced (== next band index).
    band_len: usize,
    energy: Ring,
    integrated: Ring,
    /// Integrated values produced (== energy values produced).
    integrated_len: usize,
    /// Moving-integration running sum.
    acc: f64,
    /// Integration window length in samples.
    w: usize,
    refractory: usize,
    warmup: usize,
    /// Signal-peak and noise-peak running estimates; meaningless until
    /// `primed`.
    spki: f64,
    npki: f64,
    /// Thresholds seeded (the warm-up region has been scanned).
    primed: bool,
    /// The warm-up peak was non-positive (offline: empty result) or the
    /// record was shorter than half a second — emit nothing, ever.
    dead: bool,
    /// Next integrated index the threshold scan will evaluate.
    cursor: usize,
    last_detection: Option<usize>,
    /// Running RR average between accepted beats (searchback timing).
    rr_avg: Option<f64>,
    /// Best sub-threshold crest since the last accepted beat, already
    /// refined to its band-pass extremum: `(refined index, crest)`. The
    /// searchback accepts it when the expected beat fails to show.
    candidate: Option<(usize, f64)>,
    finished: bool,
}

impl StreamingQrsDetector {
    /// Builds a detector; all rings are allocated here, sized from the
    /// sample rate.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive sample rate or a threshold fraction
    /// outside `(0, 1)` — the same contract as the offline detector.
    pub fn new(config: QrsDetectorConfig) -> Self {
        assert!(config.sample_rate_hz > 0.0, "StreamingQrsDetector: bad sample rate");
        assert!(
            config.threshold_fraction > 0.0 && config.threshold_fraction < 1.0,
            "StreamingQrsDetector: threshold fraction outside (0, 1)"
        );
        let fs = config.sample_rate_hz;
        let lp_hi = lowpass_sinc::<f64>((20.0 / fs).min(0.45), &hamming(FIR_LEN));
        let lp_lo = lowpass_sinc::<f64>((5.0 / fs).min(0.4), &hamming(FIR_LEN));
        let mut kernel = [0.0; FIR_LEN];
        for (k, (hi, lo)) in kernel.iter_mut().zip(lp_hi.iter().zip(&lp_lo)) {
            *k = hi - lo;
        }
        let w = ((config.integration_window_s * fs) as usize).max(1);
        let warmup = (2.0 * fs) as usize;
        // The deepest lookbacks: the retroactive warm-up scan reads
        // band/integrated history back to index 0 while the pipeline has
        // advanced a couple of samples past `warmup`.
        let history = warmup + w + 64;
        StreamingQrsDetector {
            refractory: (config.refractory_s * fs) as usize,
            config,
            kernel,
            delay: [0.0; FIR_LEN + 1],
            fed: 0,
            seen: 0,
            band: Ring::new(history),
            band_len: 0,
            energy: Ring::new(w + 2),
            integrated: Ring::new(history),
            integrated_len: 0,
            acc: 0.0,
            w,
            warmup,
            spki: 0.0,
            npki: 0.0,
            primed: false,
            dead: false,
            cursor: 1,
            last_detection: None,
            rr_avg: None,
            candidate: None,
            finished: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &QrsDetectorConfig {
        &self.config
    }

    /// True input samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.seen
    }

    /// Absolute sample index of the most recent detection, if any.
    pub fn last_detection(&self) -> Option<usize> {
        self.last_detection
    }

    /// Feeds one sample; any newly confirmed detections are appended to
    /// `out` (callers reuse the buffer — with reserved capacity the call
    /// is allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if called after [`StreamingQrsDetector::flush`].
    pub fn push(&mut self, x: f64, out: &mut Vec<QrsDetection>) {
        assert!(!self.finished, "StreamingQrsDetector: push after flush");
        self.seen += 1;
        self.ingest(x);
        self.scan(out, None);
    }

    /// Feeds a window of samples (any length — windows need not align
    /// with the encoder's packets).
    ///
    /// # Panics
    ///
    /// Panics if called after [`StreamingQrsDetector::flush`].
    pub fn push_window(&mut self, window: &[f64], out: &mut Vec<QrsDetection>) {
        assert!(!self.finished, "StreamingQrsDetector: push after flush");
        for &x in window {
            self.seen += 1;
            self.ingest(x);
            // Scan as we go: the rings only hold `history` samples, so a
            // window larger than that would overwrite values the
            // threshold scan has not consumed yet.
            self.scan(out, None);
        }
    }

    /// Ends the record: drains the FIR/derivative lookahead (with the
    /// same zero padding and edge clamping the offline detector applies)
    /// and emits any detections hiding in the tail. The detector is
    /// finished afterwards; further pushes panic.
    pub fn flush(&mut self, out: &mut Vec<QrsDetection>) {
        if self.finished {
            return;
        }
        self.finished = true;
        let n = self.seen;
        // Offline guard: records under half a second yield nothing.
        if n < (0.5 * self.config.sample_rate_hz) as usize {
            self.dead = true;
            return;
        }
        // Zero-pad the FIR so band values exist through index n − 1.
        while self.band_len < n {
            self.ingest(0.0);
        }
        // The offline energy loop leaves the last two entries zero.
        for e in [n.saturating_sub(2), n - 1] {
            if e >= self.integrated_len {
                self.advance_integration(e, 0.0);
            }
        }
        self.scan(out, Some(n));
    }

    /// Pushes one value through the FIR; emits band/energy/integration
    /// values as their dependencies complete.
    fn ingest(&mut self, x: f64) {
        let t = self.fed;
        self.delay[t % (FIR_LEN + 1)] = x;
        self.fed = t + 1;
        if t < FIR_DELAY {
            return;
        }
        // band[j] = Σ_d x[j + d] · kernel[FIR_DELAY − d], d ∈ [−15, 15];
        // x before index 0 reads as zero from the never-written slots.
        let j = t - FIR_DELAY;
        let mut v = 0.0;
        for (k, &coeff) in self.kernel.iter().enumerate() {
            // kernel[k] pairs with x[j + FIR_DELAY − k] = x[t − k].
            if k > t {
                break;
            }
            v += coeff * self.delay[(t - k) % (FIR_LEN + 1)];
        }
        self.band.set(j, v);
        self.band_len = j + 1;

        // energy[e] needs band[e ± 2]; the first two entries stay zero.
        if j >= 2 {
            let e = j - 2;
            let val = if e < 2 {
                0.0
            } else {
                let d = (2.0 * self.band.get(e + 2) + self.band.get(e + 1)
                    - self.band.get(e - 1)
                    - 2.0 * self.band.get(e - 2))
                    / 8.0;
                d * d
            };
            self.advance_integration(e, val);
        }
    }

    /// Extends the moving-window integration by one energy sample.
    fn advance_integration(&mut self, e: usize, energy: f64) {
        debug_assert_eq!(e, self.integrated_len, "integration must advance in order");
        self.energy.set(e, energy);
        self.acc += energy;
        if e >= self.w {
            self.acc -= self.energy.get(e - self.w);
        }
        self.integrated.set(e, self.acc / self.w as f64);
        self.integrated_len = e + 1;
    }

    /// Runs the threshold scan as far as causality allows. With
    /// `end = Some(n)` (flush) the refinement window clamps at `n − 1`
    /// exactly as the offline loop does at the record edge.
    fn scan(&mut self, out: &mut Vec<QrsDetection>, end: Option<usize>) {
        if self.dead {
            return;
        }
        if !self.primed {
            let have = self.integrated_len;
            let complete = end.is_some();
            if have < self.warmup && !complete {
                return;
            }
            let lim = self.warmup.min(have);
            let mut init_peak = 0.0_f64;
            for i in 0..lim {
                init_peak = init_peak.max(self.integrated.get(i));
            }
            if init_peak <= 0.0 {
                // Offline contract: a flat warm-up kills the whole
                // record. The asystole alarm owns the flat-line case.
                self.dead = true;
                return;
            }
            self.spki = 0.5 * init_peak;
            self.npki = 0.05 * init_peak;
            self.primed = true;
        }
        let frac = self.config.threshold_fraction;
        loop {
            let i = self.cursor;
            // The offline loop visits i ∈ [1, len − 2] and refines over
            // band[i − w ..= min(i + w/2, len − 1)]; mid-stream both
            // neighbours and the full refinement window must exist.
            let ready = match end {
                Some(n) => i + 1 < n,
                None => i + 1 < self.integrated_len && i + self.w / 2 < self.band_len,
            };
            if !ready {
                return;
            }
            self.cursor = i + 1;
            // Searchback, exactly as the offline loop performs it: once
            // the gap since the last beat exceeds 1.66× the RR average,
            // the strongest half-threshold crest in the gap is the missed
            // beat.
            if let (Some(last), Some(rr), Some((cand, cv))) =
                (self.last_detection, self.rr_avg, self.candidate)
            {
                if i.saturating_sub(last) as f64 > cs_ecg_data::SEARCHBACK_RR_FACTOR * rr
                    && cand.saturating_sub(last) > self.refractory
                {
                    out.push(QrsDetection { sample: cand, crest: cv });
                    self.last_detection = Some(cand);
                    self.spki = 0.25 * cv.min(2.0 * self.spki) + 0.75 * self.spki;
                    self.rr_avg = Some(rr + 0.125 * ((cand - last) as f64 - rr));
                    self.candidate = None;
                }
            }
            let v = self.integrated.get(i);
            if !(v >= self.integrated.get(i - 1) && v >= self.integrated.get(i + 1) && v > 0.0) {
                continue;
            }
            let threshold = self.npki + frac * (self.spki - self.npki);
            let in_refractory = self
                .last_detection
                .is_some_and(|last| i.saturating_sub(last) <= self.refractory);
            if v > threshold && !in_refractory {
                let refined = self.refine(i, end);
                if self
                    .last_detection
                    .is_none_or(|last| refined.saturating_sub(last) > self.refractory)
                {
                    if let Some(last) = self.last_detection {
                        let rr = (refined - last) as f64;
                        self.rr_avg = Some(match self.rr_avg {
                            Some(avg) => avg + 0.125 * (rr - avg),
                            None => rr,
                        });
                    }
                    out.push(QrsDetection { sample: refined, crest: v });
                    self.last_detection = Some(refined);
                    self.candidate = None;
                    self.spki = 0.125 * v.min(2.0 * self.spki) + 0.875 * self.spki;
                    continue;
                }
            }
            if !in_refractory {
                if v > 0.5 * threshold {
                    let refined = self.refine(i, end);
                    if self.candidate.is_none_or(|(_, cv)| v > cv) {
                        self.candidate = Some((refined, v));
                    }
                }
                self.npki = 0.125 * v.min(self.spki) + 0.875 * self.npki;
                self.npki = self.npki.min(0.8 * self.spki);
            }
        }
    }

    /// Refines an integrated-energy crest at `i` to the band-pass
    /// extremum over `[i − w, i + w/2]`, clamped to the record edge when
    /// flushing. Last maximum wins on ties, matching `Iterator::max_by`.
    fn refine(&self, i: usize, end: Option<usize>) -> usize {
        let start = i.saturating_sub(self.w);
        let stop = match end {
            Some(n) => (i + self.w / 2).min(n - 1),
            None => i + self.w / 2,
        };
        let mut refined = start;
        let mut best = f64::NEG_INFINITY;
        for idx in start..=stop {
            let mag = self.band.get(idx).abs();
            if mag >= best {
                best = mag;
                refined = idx;
            }
        }
        refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_ecg_data::{detect_r_peaks, EcgModel, EcgModelConfig};

    fn streamed(signal: &[f64], config: QrsDetectorConfig, chunk: usize) -> Vec<usize> {
        let mut det = StreamingQrsDetector::new(config);
        let mut out = Vec::new();
        for window in signal.chunks(chunk) {
            det.push_window(window, &mut out);
        }
        det.flush(&mut out);
        out.iter().map(|d| d.sample).collect()
    }

    #[test]
    fn matches_offline_exactly_across_window_splits() {
        let (signal, _) = EcgModel::new(EcgModelConfig::default(), 11).synthesize(25.0);
        let config = QrsDetectorConfig::at_360_hz();
        let offline = detect_r_peaks(&signal, &config);
        assert!(offline.len() > 20, "degenerate record");
        for chunk in [1, 97, 512, 513, signal.len()] {
            assert_eq!(streamed(&signal, config, chunk), offline, "chunk {chunk}");
        }
    }

    #[test]
    fn flat_line_emits_nothing() {
        let config = QrsDetectorConfig::at_256_hz();
        assert!(streamed(&vec![0.0; 2000], config, 512).is_empty());
        assert!(streamed(&vec![0.0; 10], config, 512).is_empty());
    }

    #[test]
    fn short_records_match_offline() {
        let (signal, _) = EcgModel::new(EcgModelConfig::default(), 12).synthesize(1.5);
        let config = QrsDetectorConfig::at_360_hz();
        assert_eq!(streamed(&signal, config, 100), detect_r_peaks(&signal, &config));
    }

    #[test]
    fn crest_values_are_positive() {
        let (signal, _) = EcgModel::new(EcgModelConfig::default(), 13).synthesize(15.0);
        let mut det = StreamingQrsDetector::new(QrsDetectorConfig::at_360_hz());
        let mut out = Vec::new();
        det.push_window(&signal, &mut out);
        det.flush(&mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|d| d.crest > 0.0));
    }

    #[test]
    #[should_panic(expected = "push after flush")]
    fn push_after_flush_panics() {
        let mut det = StreamingQrsDetector::new(QrsDetectorConfig::at_256_hz());
        let mut out = Vec::new();
        det.flush(&mut out);
        det.push(0.0, &mut out);
    }

    #[test]
    fn flush_is_idempotent() {
        let (signal, _) = EcgModel::new(EcgModelConfig::default(), 14).synthesize(10.0);
        let mut det = StreamingQrsDetector::new(QrsDetectorConfig::at_360_hz());
        let mut out = Vec::new();
        det.push_window(&signal, &mut out);
        det.flush(&mut out);
        let len = out.len();
        det.flush(&mut out);
        assert_eq!(out.len(), len);
    }
}
