//! Per-patient alarm state machine with hysteresis, escalation and
//! latching.
//!
//! Each [`AlarmKind`] carries its own severity state. Raising an alarm
//! from `Normal` requires `onset_beats` *consecutive* abnormal
//! evaluations (hysteresis against single mis-classified beats);
//! escalation from `Warning` to `Critical` is immediate once the alarm
//! is active. `Warning` clears after `clear_beats` consecutive normal
//! evaluations; `Critical` alarms **latch** — they additionally require
//! `latch_holdoff_s` of wall-signal quiet since the last abnormal
//! evaluation before they release, and they release straight to
//! `Normal` (a latched critical never "de-escalates" to a lingering
//! warning a tired operator might dismiss).
//!
//! Asystole is the exception to onset hysteresis: silence longer than
//! `asystole_timeout_s` raises `Critical` immediately. The timeout
//! itself *is* the hysteresis, and a >4 s pause is never benign.

use cs_telemetry::{AlarmKind, AlarmSeverity, BeatClass};

use crate::classifier::ClassifiedBeat;

/// Thresholds and hysteresis parameters of the alarm engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmConfig {
    /// Sample rate of the analyzed lead, for rate/time conversions.
    pub sample_rate_hz: f64,
    /// Heart rate above which tachycardia reaches `Warning`.
    pub tachy_warning_bpm: f64,
    /// Heart rate above which tachycardia reaches `Critical`.
    pub tachy_critical_bpm: f64,
    /// Heart rate below which bradycardia reaches `Warning`.
    pub brady_warning_bpm: f64,
    /// Heart rate below which bradycardia reaches `Critical`.
    pub brady_critical_bpm: f64,
    /// PVC count within the trailing window that reaches `Warning`.
    pub pvc_run_warning: usize,
    /// PVC count within the trailing window that reaches `Critical`.
    pub pvc_run_critical: usize,
    /// Length of the trailing beat window used for PVC-run counting.
    pub pvc_window_beats: usize,
    /// Detection silence that raises an asystole `Critical`.
    pub asystole_timeout_s: f64,
    /// Consecutive abnormal evaluations required to raise from normal.
    pub onset_beats: usize,
    /// Consecutive normal evaluations required to clear a warning.
    pub clear_beats: usize,
    /// Additional quiet time a latched critical needs before release.
    pub latch_holdoff_s: f64,
    /// EWMA weight of a new RR interval in the heart-rate estimate.
    pub hr_alpha: f64,
}

impl AlarmConfig {
    /// Defaults for a lead resampled to the paper's 256 Hz wire rate.
    pub fn at_256_hz() -> Self {
        AlarmConfig::at_sample_rate(256.0)
    }

    /// Defaults at an arbitrary sample rate.
    pub fn at_sample_rate(sample_rate_hz: f64) -> Self {
        assert!(
            sample_rate_hz.is_finite() && sample_rate_hz > 0.0,
            "sample rate must be positive"
        );
        AlarmConfig {
            sample_rate_hz,
            tachy_warning_bpm: 110.0,
            tachy_critical_bpm: 140.0,
            brady_warning_bpm: 50.0,
            brady_critical_bpm: 40.0,
            pvc_run_warning: 3,
            pvc_run_critical: 5,
            pvc_window_beats: 10,
            asystole_timeout_s: 4.0,
            onset_beats: 3,
            clear_beats: 8,
            latch_holdoff_s: 6.0,
            // Fast enough that bradycardia — the slowest rhythm to
            // observe, at under one beat per 1.5 s — still crosses its
            // threshold and clears onset hysteresis inside a 10 s alarm
            // deadline; single aberrant intervals still cannot alarm.
            hr_alpha: 0.35,
        }
    }
}

/// A severity change on one alarm kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmTransition {
    /// Which alarm moved.
    pub kind: AlarmKind,
    /// Severity before the evaluation.
    pub from: AlarmSeverity,
    /// Severity after the evaluation.
    pub to: AlarmSeverity,
    /// Absolute sample index at which the transition was decided.
    pub sample: usize,
}

#[derive(Debug, Clone, Copy)]
struct KindState {
    severity: AlarmSeverity,
    onset_count: usize,
    clear_count: usize,
    last_abnormal_sample: usize,
}

impl Default for KindState {
    fn default() -> Self {
        KindState {
            severity: AlarmSeverity::Normal,
            onset_count: 0,
            clear_count: 0,
            last_abnormal_sample: 0,
        }
    }
}

/// The per-patient alarm engine. Feed it classified beats via
/// [`AlarmEngine::on_beat`] and wall-clock progress via
/// [`AlarmEngine::on_silence`]; every call appends any severity
/// transitions to the caller's buffer (no internal allocation).
#[derive(Debug, Clone)]
pub struct AlarmEngine {
    config: AlarmConfig,
    states: [KindState; AlarmKind::COUNT],
    /// EWMA heart rate in bpm, seeded by the first RR interval.
    hr_bpm: Option<f64>,
    /// Ring of the last `pvc_window_beats` beat classes.
    recent: [BeatClass; AlarmEngine::MAX_PVC_WINDOW],
    recent_len: usize,
    recent_head: usize,
    last_beat_sample: Option<usize>,
}

impl AlarmEngine {
    const MAX_PVC_WINDOW: usize = 32;

    /// Builds an engine with the given thresholds.
    pub fn new(config: AlarmConfig) -> Self {
        assert!(
            config.pvc_window_beats <= Self::MAX_PVC_WINDOW,
            "pvc window is capped at {} beats",
            Self::MAX_PVC_WINDOW
        );
        assert!(config.onset_beats >= 1, "onset hysteresis needs >= 1 beat");
        AlarmEngine {
            config,
            states: [KindState::default(); AlarmKind::COUNT],
            hr_bpm: None,
            recent: [BeatClass::Normal; Self::MAX_PVC_WINDOW],
            recent_len: 0,
            recent_head: 0,
            last_beat_sample: None,
        }
    }

    /// The current severity of one alarm kind.
    pub fn severity(&self, kind: AlarmKind) -> AlarmSeverity {
        self.states[kind.index()].severity
    }

    /// True while any alarm kind is above `Normal`.
    pub fn any_active(&self) -> bool {
        self.states.iter().any(|s| s.severity > AlarmSeverity::Normal)
    }

    /// The smoothed heart-rate estimate in bpm, once seeded.
    pub fn heart_rate_bpm(&self) -> Option<f64> {
        self.hr_bpm
    }

    /// Evaluates one classified beat.
    pub fn on_beat(&mut self, beat: &ClassifiedBeat, out: &mut Vec<AlarmTransition>) {
        let cfg = self.config;
        self.last_beat_sample = Some(beat.sample);

        // Heart-rate EWMA over *all* beats: ectopy genuinely moves rate.
        if beat.rr_samples > 0.0 {
            let bpm = 60.0 * cfg.sample_rate_hz / beat.rr_samples;
            let hr = self.hr_bpm.get_or_insert(bpm);
            *hr += cfg.hr_alpha * (bpm - *hr);
        }
        let hr = match self.hr_bpm {
            Some(hr) => hr,
            None => return,
        };

        // Trailing beat-class window for PVC-run counting.
        self.recent[self.recent_head] = beat.class;
        self.recent_head = (self.recent_head + 1) % cfg.pvc_window_beats.max(1);
        self.recent_len = (self.recent_len + 1).min(cfg.pvc_window_beats);
        let pvc_count = self.recent[..self.recent_len]
            .iter()
            .filter(|&&c| c == BeatClass::Pvc)
            .count();

        let tachy = Self::grade_high(hr, cfg.tachy_warning_bpm, cfg.tachy_critical_bpm);
        let brady = Self::grade_low(hr, cfg.brady_warning_bpm, cfg.brady_critical_bpm);
        let pvc = Self::grade_count(pvc_count, cfg.pvc_run_warning, cfg.pvc_run_critical);

        self.step(AlarmKind::Tachycardia, tachy, beat.sample, out);
        self.step(AlarmKind::Bradycardia, brady, beat.sample, out);
        self.step(AlarmKind::PvcRun, pvc, beat.sample, out);
        // A beat is proof of electrical activity: clear asystole via the
        // normal latch path.
        self.step(AlarmKind::Asystole, AlarmSeverity::Normal, beat.sample, out);
    }

    /// Evaluates detection silence up to `now_sample`. Call this as the
    /// signal clock advances even when no beat fires; `silence_floor` is
    /// the most recent sample known to carry a beat or to be untrusted
    /// (e.g. the end of a concealed window).
    pub fn on_silence(
        &mut self,
        now_sample: usize,
        silence_floor: usize,
        out: &mut Vec<AlarmTransition>,
    ) {
        let cfg = self.config;
        let anchor = self.last_beat_sample.unwrap_or(0).max(silence_floor);
        let silence_s = now_sample.saturating_sub(anchor) as f64 / cfg.sample_rate_hz;
        if silence_s > cfg.asystole_timeout_s {
            // The timeout is the hysteresis: raise critical immediately.
            let state = &mut self.states[AlarmKind::Asystole.index()];
            state.last_abnormal_sample = now_sample;
            state.clear_count = 0;
            if state.severity < AlarmSeverity::Critical {
                out.push(AlarmTransition {
                    kind: AlarmKind::Asystole,
                    from: state.severity,
                    to: AlarmSeverity::Critical,
                    sample: now_sample,
                });
                state.severity = AlarmSeverity::Critical;
            }
        }
    }

    fn grade_high(value: f64, warning: f64, critical: f64) -> AlarmSeverity {
        if value > critical {
            AlarmSeverity::Critical
        } else if value > warning {
            AlarmSeverity::Warning
        } else {
            AlarmSeverity::Normal
        }
    }

    fn grade_low(value: f64, warning: f64, critical: f64) -> AlarmSeverity {
        if value < critical {
            AlarmSeverity::Critical
        } else if value < warning {
            AlarmSeverity::Warning
        } else {
            AlarmSeverity::Normal
        }
    }

    fn grade_count(count: usize, warning: usize, critical: usize) -> AlarmSeverity {
        if count >= critical {
            AlarmSeverity::Critical
        } else if count >= warning {
            AlarmSeverity::Warning
        } else {
            AlarmSeverity::Normal
        }
    }

    /// One hysteresis step for one alarm kind given this evaluation's
    /// instantaneous severity.
    fn step(
        &mut self,
        kind: AlarmKind,
        observed: AlarmSeverity,
        sample: usize,
        out: &mut Vec<AlarmTransition>,
    ) {
        let cfg = self.config;
        let state = &mut self.states[kind.index()];
        let from = state.severity;
        if observed > AlarmSeverity::Normal {
            state.last_abnormal_sample = sample;
            state.clear_count = 0;
            if from == AlarmSeverity::Normal {
                state.onset_count += 1;
                if state.onset_count < cfg.onset_beats {
                    return;
                }
            }
            // Active alarms escalate immediately but never de-escalate
            // here; de-escalation goes through the clear path.
            let to = from.max(observed);
            if to != from {
                out.push(AlarmTransition { kind, from, to, sample });
                state.severity = to;
            }
        } else {
            state.onset_count = 0;
            if from == AlarmSeverity::Normal {
                return;
            }
            state.clear_count += 1;
            if state.clear_count < cfg.clear_beats {
                return;
            }
            if from == AlarmSeverity::Critical {
                let quiet_s = sample.saturating_sub(state.last_abnormal_sample) as f64
                    / cfg.sample_rate_hz;
                if quiet_s < cfg.latch_holdoff_s {
                    return;
                }
            }
            out.push(AlarmTransition { kind, from, to: AlarmSeverity::Normal, sample });
            state.severity = AlarmSeverity::Normal;
            state.clear_count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `n` beats of a fixed RR (in samples) starting at `start`.
    fn feed_rr(
        engine: &mut AlarmEngine,
        start: usize,
        rr: usize,
        n: usize,
        class: BeatClass,
        out: &mut Vec<AlarmTransition>,
    ) -> usize {
        let mut at = start;
        for _ in 0..n {
            at += rr;
            engine.on_beat(
                &ClassifiedBeat { sample: at, class, rr_samples: rr as f64 },
                out,
            );
        }
        at
    }

    #[test]
    fn tachycardia_raises_after_onset_hysteresis() {
        let mut e = AlarmEngine::new(AlarmConfig::at_256_hz());
        let mut out = Vec::new();
        // 60 bpm baseline, then 160 bpm (rr = 96 samples @ 256 Hz).
        let at = feed_rr(&mut e, 0, 256, 6, BeatClass::Normal, &mut out);
        assert!(out.is_empty());
        feed_rr(&mut e, at, 96, 12, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Tachycardia), AlarmSeverity::Critical);
        // First transition must be >= onset_beats beats after the rate
        // first crossed the threshold, and escalation follows.
        assert!(out.iter().any(|t| t.kind == AlarmKind::Tachycardia
            && t.to == AlarmSeverity::Critical));
    }

    #[test]
    fn single_fast_beat_does_not_alarm() {
        let mut e = AlarmEngine::new(AlarmConfig::at_256_hz());
        let mut out = Vec::new();
        let at = feed_rr(&mut e, 0, 256, 8, BeatClass::Normal, &mut out);
        // One premature beat, then back to sinus.
        feed_rr(&mut e, at, 120, 1, BeatClass::Normal, &mut out);
        feed_rr(&mut e, at + 120, 256, 8, BeatClass::Normal, &mut out);
        assert!(out.is_empty(), "unexpected transitions: {out:?}");
    }

    #[test]
    fn warning_clears_after_quiet_beats() {
        let mut cfg = AlarmConfig::at_256_hz();
        cfg.clear_beats = 4;
        let mut e = AlarmEngine::new(cfg);
        let mut out = Vec::new();
        // ~120 bpm -> warning only.
        let at = feed_rr(&mut e, 0, 128, 10, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Tachycardia), AlarmSeverity::Warning);
        out.clear();
        // Back to 60 bpm; EWMA needs a few beats to fall below 110, then
        // clear_beats more to release.
        feed_rr(&mut e, at, 256, 20, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Tachycardia), AlarmSeverity::Normal);
        assert!(out
            .iter()
            .any(|t| t.kind == AlarmKind::Tachycardia && t.to == AlarmSeverity::Normal));
    }

    #[test]
    fn critical_latches_until_holdoff() {
        let mut cfg = AlarmConfig::at_256_hz();
        cfg.clear_beats = 2;
        cfg.latch_holdoff_s = 6.0;
        let mut e = AlarmEngine::new(cfg);
        let mut out = Vec::new();
        let at = feed_rr(&mut e, 0, 96, 12, BeatClass::Normal, &mut out); // 160 bpm
        assert_eq!(e.severity(AlarmKind::Tachycardia), AlarmSeverity::Critical);
        out.clear();
        // Two quiet beats satisfy clear_beats but not the 6 s holdoff
        // (2 beats at 60 bpm = 2 s of quiet).
        let at = feed_rr(&mut e, at, 256, 2, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Tachycardia), AlarmSeverity::Critical);
        // Six more seconds of sinus releases the latch straight to Normal.
        feed_rr(&mut e, at, 256, 8, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Tachycardia), AlarmSeverity::Normal);
        let release = out
            .iter()
            .find(|t| t.kind == AlarmKind::Tachycardia)
            .expect("release transition");
        assert_eq!(release.from, AlarmSeverity::Critical);
        assert_eq!(release.to, AlarmSeverity::Normal);
    }

    #[test]
    fn pvc_run_grades_by_window_count() {
        let mut e = AlarmEngine::new(AlarmConfig::at_256_hz());
        let mut out = Vec::new();
        let at = feed_rr(&mut e, 0, 256, 6, BeatClass::Normal, &mut out);
        // Five PVCs in a row: crosses warning at 3, critical at 5 (after
        // onset hysteresis).
        feed_rr(&mut e, at, 200, 5, BeatClass::Pvc, &mut out);
        assert_eq!(e.severity(AlarmKind::PvcRun), AlarmSeverity::Critical);
    }

    #[test]
    fn asystole_fires_on_silence_and_clears_on_beats() {
        let mut cfg = AlarmConfig::at_256_hz();
        cfg.clear_beats = 3;
        cfg.latch_holdoff_s = 2.0;
        let mut e = AlarmEngine::new(cfg);
        let mut out = Vec::new();
        let at = feed_rr(&mut e, 0, 256, 4, BeatClass::Normal, &mut out);
        // 5 s of silence at 256 Hz.
        e.on_silence(at + 5 * 256, 0, &mut out);
        assert_eq!(e.severity(AlarmKind::Asystole), AlarmSeverity::Critical);
        assert!(out
            .iter()
            .any(|t| t.kind == AlarmKind::Asystole && t.to == AlarmSeverity::Critical));
        out.clear();
        // Rhythm returns; after clear_beats + holdoff the latch releases.
        feed_rr(&mut e, at + 5 * 256, 256, 6, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Asystole), AlarmSeverity::Normal);
    }

    #[test]
    fn concealed_floor_suppresses_asystole() {
        let mut e = AlarmEngine::new(AlarmConfig::at_256_hz());
        let mut out = Vec::new();
        let at = feed_rr(&mut e, 0, 256, 4, BeatClass::Normal, &mut out);
        // 6 s elapse but the last 5.5 s were concealed: the floor moves
        // with the concealment and asystole must not fire.
        let now = at + 6 * 256;
        e.on_silence(now, now - 128, &mut out);
        assert_eq!(e.severity(AlarmKind::Asystole), AlarmSeverity::Normal);
        assert!(out.is_empty());
    }

    #[test]
    fn bradycardia_grades_low_rates() {
        let mut e = AlarmEngine::new(AlarmConfig::at_256_hz());
        let mut out = Vec::new();
        // 35 bpm: rr = 256 * 60/35 ≈ 439 samples.
        feed_rr(&mut e, 0, 439, 10, BeatClass::Normal, &mut out);
        assert_eq!(e.severity(AlarmKind::Bradycardia), AlarmSeverity::Critical);
    }
}
