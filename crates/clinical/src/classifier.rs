//! Beat classification from RR intervals and crest morphology.
//!
//! The synthesizer's ectopic beats (and their MIT-BIH archetypes) are
//! separable on two axes the streaming detector already produces:
//!
//! * **Prematurity** — a PVC arrives at ~0.65× the running RR, an APC at
//!   ~0.8×; sinus variability stays within a few percent.
//! * **Morphology** — a PVC's wide, deep QRS integrates far more energy
//!   under the Pan–Tompkins moving window than a narrow complex, so the
//!   detection crest (already computed for thresholding) doubles as a
//!   width/amplitude feature at zero extra cost.
//!
//! Both running references (RR and crest EWMAs) update **only on beats
//! classified normal**, so a run of ectopy cannot drag the baseline
//! toward itself and mask the run.

use cs_telemetry::BeatClass;

/// Thresholds of the RR/morphology classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeatClassifierConfig {
    /// RR ratio below which a beat counts as premature at all.
    pub premature_rr_ratio: f64,
    /// Crest-energy ratio (vs the sinus EWMA) above which a premature
    /// beat is classified ventricular. Morphology confirmation is
    /// **mandatory** for the PVC call: prematurity alone also describes
    /// every beat of a sudden sustained supraventricular tachycardia,
    /// and labelling an SVT run "PVC run" would fire the wrong alarm.
    /// The synthesizer's wide, tall ventricular complexes integrate
    /// over an order of magnitude hotter than narrow beats, so this
    /// threshold has enormous margin on both sides.
    pub pvc_crest_ratio: f64,
    /// RR ratio above which an interval is a pause (a missed or
    /// concealed beat, a compensatory gap) rather than sinus timing.
    /// Pause intervals never update the references: one dropout must
    /// not poison the baseline every later beat is judged against.
    pub pause_rr_ratio: f64,
    /// EWMA weight of a new normal beat in the RR / crest references.
    pub alpha: f64,
    /// Consecutive *regular* off-baseline intervals after which the
    /// references re-seed at the new rate. Freezing the baseline against
    /// ectopy deadlocks on a sustained rate change (after a bradycardic
    /// spell every sinus beat reads premature forever); a metronomic
    /// streak this long is a new baseline, not ectopy — rate alarms own
    /// sustained rate shifts. Irregular rhythms (bigeminy, mixed PVC
    /// runs) break the streak and never resync.
    pub resync_beats: usize,
    /// Relative RR deviation tolerated within a resync streak.
    pub resync_tolerance: f64,
}

impl Default for BeatClassifierConfig {
    fn default() -> Self {
        BeatClassifierConfig {
            premature_rr_ratio: 0.875,
            pvc_crest_ratio: 2.0,
            pause_rr_ratio: 1.75,
            alpha: 0.125,
            resync_beats: 8,
            resync_tolerance: 0.125,
        }
    }
}

/// A classified beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifiedBeat {
    /// Absolute sample index of the R peak.
    pub sample: usize,
    /// Assigned class.
    pub class: BeatClass,
    /// The RR interval that led to the classification, in samples.
    pub rr_samples: f64,
}

/// The streaming beat classifier. Feed it detections in order; the
/// first detection of a record establishes timing and emits no beat
/// (there is no RR interval yet).
#[derive(Debug, Clone)]
pub struct BeatClassifier {
    config: BeatClassifierConfig,
    last_sample: Option<usize>,
    /// Sinus RR reference in samples.
    rr_ewma: Option<f64>,
    /// Sinus crest-energy reference.
    crest_ewma: Option<f64>,
    /// Length of the current regular off-baseline streak.
    streak: usize,
    /// Running mean RR / crest of that streak.
    streak_rr: f64,
    streak_crest: f64,
}

impl BeatClassifier {
    /// Builds a classifier with the given thresholds.
    pub fn new(config: BeatClassifierConfig) -> Self {
        BeatClassifier {
            config,
            last_sample: None,
            rr_ewma: None,
            crest_ewma: None,
            streak: 0,
            streak_rr: 0.0,
            streak_crest: 0.0,
        }
    }

    /// The sinus RR reference in samples, once established.
    pub fn sinus_rr_samples(&self) -> Option<f64> {
        self.rr_ewma
    }

    /// Classifies the next detection. Returns `None` for the very first
    /// detection (no interval exists yet).
    pub fn classify(&mut self, sample: usize, crest: f64) -> Option<ClassifiedBeat> {
        let Some(last) = self.last_sample.replace(sample) else {
            self.crest_ewma = Some(crest);
            return None;
        };
        let rr = sample.saturating_sub(last) as f64;
        let cfg = self.config;
        let Some(rr_ref) = self.rr_ewma else {
            // Second detection: the interval seeds the sinus reference.
            self.rr_ewma = Some(rr);
            return Some(ClassifiedBeat { sample, class: BeatClass::Normal, rr_samples: rr });
        };
        let rr_ratio = rr / rr_ref;
        let crest_ratio = self.crest_ewma.map_or(1.0, |c| crest / c);
        let class = if rr_ratio < cfg.premature_rr_ratio {
            if crest_ratio > cfg.pvc_crest_ratio {
                BeatClass::Pvc
            } else {
                BeatClass::Apc
            }
        } else {
            BeatClass::Normal
        };
        if class == BeatClass::Normal && rr_ratio <= cfg.pause_rr_ratio {
            self.rr_ewma = Some(rr_ref + cfg.alpha * (rr - rr_ref));
            let c = self.crest_ewma.get_or_insert(crest);
            *c += cfg.alpha * (crest - *c);
            self.streak = 0;
        } else {
            // Off-baseline interval: premature, or held out by the pause
            // guard. A long metronomic streak of these is a sustained
            // rate change, and the frozen references would otherwise
            // misread the new rhythm forever.
            let regular = self.streak > 0
                && (rr - self.streak_rr).abs() <= cfg.resync_tolerance * self.streak_rr;
            if regular {
                let k = self.streak as f64;
                self.streak_rr += (rr - self.streak_rr) / (k + 1.0);
                self.streak_crest += (crest - self.streak_crest) / (k + 1.0);
                self.streak += 1;
            } else {
                self.streak = 1;
                self.streak_rr = rr;
                self.streak_crest = crest;
            }
            if self.streak >= cfg.resync_beats.max(2) {
                self.rr_ewma = Some(self.streak_rr);
                self.crest_ewma = Some(self.streak_crest);
                self.streak = 0;
            }
        }
        Some(ClassifiedBeat { sample, class, rr_samples: rr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(classifier: &mut BeatClassifier, beats: &[(usize, f64)]) -> Vec<BeatClass> {
        beats
            .iter()
            .filter_map(|&(s, c)| classifier.classify(s, c))
            .map(|b| b.class)
            .collect()
    }

    #[test]
    fn steady_sinus_is_normal() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        let beats: Vec<(usize, f64)> = (1..10).map(|i| (i * 200, 1.0)).collect();
        let classes = feed(&mut c, &beats);
        assert!(classes.iter().all(|&b| b == BeatClass::Normal));
        assert!((c.sinus_rr_samples().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn premature_wide_beat_is_pvc() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        // 0.65× the established RR, triple the crest.
        let b = c.classify(930, 3.0).unwrap();
        assert_eq!(b.class, BeatClass::Pvc);
    }

    #[test]
    fn premature_narrow_beat_is_apc() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        // 0.8× the established RR, sinus morphology.
        let b = c.classify(960, 1.0).unwrap();
        assert_eq!(b.class, BeatClass::Apc);
    }

    #[test]
    fn border_zone_prematurity_with_hot_crest_is_pvc() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        let b = c.classify(960, 2.5).unwrap();
        assert_eq!(b.class, BeatClass::Pvc);
    }

    #[test]
    fn sustained_rate_jump_is_not_a_pvc_run() {
        // A sudden SVT: every beat premature vs the frozen sinus
        // reference, but narrow — must read as APC, never PVC, and after
        // `resync_beats` metronomic intervals the new rate becomes the
        // baseline (rate alarms own sustained tachycardia).
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        for k in 0..12 {
            let b = c.classify(900 + k * 100, 1.0).unwrap();
            if k < 8 {
                assert_eq!(b.class, BeatClass::Apc, "beat {k}");
            } else {
                assert_eq!(b.class, BeatClass::Normal, "beat {k} after resync");
            }
        }
        assert!((c.sinus_rr_samples().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bradycardia_recovery_resyncs_the_reference() {
        // 32 s at a slow rate drags the reference to RR 400; when sinus
        // resumes at RR 200 every beat reads premature against it. The
        // resync streak must recover the baseline instead of labelling
        // normal rhythm ectopic forever.
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        let mut t = 0;
        for _ in 0..4 {
            t += 200;
            c.classify(t, 1.0);
        }
        for _ in 0..40 {
            t += 400; // pause-guarded at first, then resynced to RR 400
            c.classify(t, 1.0);
        }
        let mut classes = Vec::new();
        for _ in 0..12 {
            t += 200;
            classes.push(c.classify(t, 1.0).unwrap().class);
        }
        assert!(
            classes[8..].iter().all(|&cl| cl == BeatClass::Normal),
            "post-brady sinus still misread: {classes:?}"
        );
        assert!((c.sinus_rr_samples().unwrap() - 200.0).abs() < 1.0);
    }

    #[test]
    fn bigeminy_never_resyncs() {
        // Alternating normal/PVC: the off-baseline streak is broken every
        // other beat, so the sinus reference must survive untouched.
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        let mut t = 800;
        for _ in 0..10 {
            t += 130; // premature, wide
            assert_eq!(c.classify(t, 5.0).unwrap().class, BeatClass::Pvc);
            t += 270; // compensatory interval back on baseline
            c.classify(t, 1.0).unwrap();
        }
        // The compensatory intervals drift the EWMA upward a little
        // (they pass the pause guard), but the reference must never
        // resync down to the premature RR.
        assert!(c.sinus_rr_samples().unwrap() > 180.0);
    }

    #[test]
    fn ectopy_does_not_drag_the_reference() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        let rr_before = c.sinus_rr_samples().unwrap();
        c.classify(930, 3.0).unwrap(); // PVC
        assert_eq!(c.sinus_rr_samples().unwrap(), rr_before);
    }

    #[test]
    fn pause_interval_does_not_poison_the_reference() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        feed(&mut c, &[(200, 1.0), (400, 1.0), (600, 1.0), (800, 1.0)]);
        // A 1600-sample dropout gap, then sinus resumes at RR 200.
        let gap = c.classify(2400, 1.0).unwrap();
        assert_eq!(gap.class, BeatClass::Normal);
        assert!((c.sinus_rr_samples().unwrap() - 200.0).abs() < 1e-9);
        let resumed = c.classify(2600, 1.0).unwrap();
        assert_eq!(resumed.class, BeatClass::Normal);
    }

    #[test]
    fn first_detection_emits_nothing() {
        let mut c = BeatClassifier::new(BeatClassifierConfig::default());
        assert!(c.classify(100, 1.0).is_none());
        assert!(c.classify(300, 1.0).is_some());
    }
}
