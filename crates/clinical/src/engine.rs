//! The per-fleet clinical engine: one analyzer per patient, fed from
//! the decode side's [`FleetPacket`] emissions.
//!
//! Wiring is a closure over [`ClinicalEngine::on_packet`] passed as the
//! fleet runner's packet tap:
//!
//! ```ignore
//! let mut events = Vec::new();
//! run_fleet_wire_stream::<f64, _>(&config, codebook, rx, policy, &fleet, &telemetry,
//!     |pkt| engine.on_packet(pkt, &mut events))?;
//! ```
//!
//! Every lead runs its own [`StreamingQrsDetector`] (detection quality
//! is per-lead), but rhythm interpretation — classification, alarms,
//! adaptive-compression feedback — runs on the configured primary lead
//! only, mirroring how single-lead arbitration works on real monitors.
//!
//! ## Concealment-aware suppression
//!
//! A window the ingest layer concealed or quarantined is not trusted
//! signal. Its detections still feed the classifier (so RR continuity
//! survives short dropouts) but alarm evaluation is suppressed until
//! the signal clock passes the end of the concealed region, and the
//! asystole silence floor is moved there: concealed silence is a
//! telemetry problem, not a cardiac event.
//!
//! ## Closed-loop fidelity
//!
//! When any alarm on a patient is active the engine escalates that
//! patient's stream to [`FidelityTier::Diagnostic`] through the shared
//! [`TierController`]; once every alarm has cleared and a holdoff has
//! passed it restores [`FidelityTier::Routine`]. This is the first
//! place decode-side results steer encode-side configuration.

use cs_core::{ClinicalFeedback, FidelityTier, FleetPacket, PacketOutcome, TierController};
use cs_dsp::Real;
use cs_ecg_data::QrsDetectorConfig;
use cs_telemetry::{AlarmSeverity, TelemetryRegistry};

use crate::alarm::{AlarmConfig, AlarmEngine, AlarmTransition};
use crate::classifier::{BeatClassifier, BeatClassifierConfig, ClassifiedBeat};
use crate::detector::{QrsDetection, StreamingQrsDetector};

/// Everything the engine needs to know about the fleet and thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ClinicalConfig {
    /// Streaming detector configuration (shared by every lead).
    pub detector: QrsDetectorConfig,
    /// Beat classifier thresholds.
    pub classifier: BeatClassifierConfig,
    /// Alarm engine thresholds.
    pub alarm: AlarmConfig,
    /// The lead whose detections drive rhythm interpretation.
    pub primary_lead: u8,
    /// Quiet time after the last active alarm before the patient's
    /// stream is restored to the routine fidelity tier.
    pub restore_holdoff_s: f64,
}

impl ClinicalConfig {
    /// Defaults for the paper's 256 Hz wire rate.
    pub fn at_256_hz() -> Self {
        ClinicalConfig {
            detector: QrsDetectorConfig::at_256_hz(),
            classifier: BeatClassifierConfig::default(),
            alarm: AlarmConfig::at_256_hz(),
            primary_lead: 0,
            restore_holdoff_s: 8.0,
        }
    }
}

/// One emission from the clinical engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClinicalEvent {
    /// A beat was classified on a patient's primary lead.
    Beat {
        /// Patient stream index.
        stream: usize,
        /// The classified beat.
        beat: ClassifiedBeat,
    },
    /// An alarm changed severity.
    Alarm {
        /// Patient stream index.
        stream: usize,
        /// The severity transition.
        transition: AlarmTransition,
    },
    /// The adaptive-compression loop changed a patient's fidelity tier.
    Tier(ClinicalFeedback),
}

/// Incremental scorer matching monotonic detections against a sorted
/// ground-truth annotation list, streaming TP/FP/FN deltas into the
/// telemetry registry as they become decidable.
///
/// Matching is one-to-one two-pointer: a truth peak more than
/// `tolerance` behind the current detection can never match again and
/// is counted as a false negative; a detection within `tolerance` of
/// the next unmatched truth peak is a true positive; anything else is a
/// false positive. With the detector's refractory (64 samples at
/// 256 Hz) above twice any sane tolerance, detections cannot contend
/// for the same truth peak, so this agrees with the offline
/// `score_detections` on realistic streams while being strictly
/// one-to-one (the offline scorer tolerates many-to-one matches).
#[derive(Debug, Clone)]
pub struct TruthScorer {
    truth: Vec<usize>,
    tolerance: usize,
    next: usize,
    true_pos: u64,
    false_pos: u64,
    false_neg: u64,
    finished: bool,
}

impl TruthScorer {
    /// Builds a scorer over ascending truth peak positions.
    pub fn new(mut truth: Vec<usize>, tolerance: usize) -> Self {
        truth.sort_unstable();
        TruthScorer {
            truth,
            tolerance,
            next: 0,
            true_pos: 0,
            false_pos: 0,
            false_neg: 0,
            finished: false,
        }
    }

    /// Scores one detection; detections must arrive in ascending order.
    pub fn record(&mut self, detection: usize, telemetry: &TelemetryRegistry) {
        let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
        while self.next < self.truth.len() && self.truth[self.next] + self.tolerance < detection {
            self.next += 1;
            fn_ += 1;
        }
        match self.truth.get(self.next) {
            Some(&t) if t.abs_diff(detection) <= self.tolerance => {
                self.next += 1;
                tp += 1;
            }
            _ => fp += 1,
        }
        self.true_pos += tp;
        self.false_pos += fp;
        self.false_neg += fn_;
        telemetry.record_qrs_score(tp, fp, fn_);
    }

    /// Flushes remaining unmatched truth peaks as false negatives.
    /// Idempotent.
    pub fn finish(&mut self, telemetry: &TelemetryRegistry) {
        if self.finished {
            return;
        }
        self.finished = true;
        let fn_ = (self.truth.len() - self.next) as u64;
        self.next = self.truth.len();
        self.false_neg += fn_;
        telemetry.record_qrs_score(0, 0, fn_);
    }

    /// `(true positives, false positives, false negatives)` so far.
    pub fn confusion(&self) -> (u64, u64, u64) {
        (self.true_pos, self.false_pos, self.false_neg)
    }

    /// Sensitivity so far, if any truth peaks have been resolved.
    pub fn sensitivity(&self) -> Option<f64> {
        let denom = self.true_pos + self.false_neg;
        (denom > 0).then(|| self.true_pos as f64 / denom as f64)
    }

    /// Positive predictive value so far, if any detections were scored.
    pub fn ppv(&self) -> Option<f64> {
        let denom = self.true_pos + self.false_pos;
        (denom > 0).then(|| self.true_pos as f64 / denom as f64)
    }
}

/// Per-patient analysis state.
#[derive(Debug)]
struct PatientAnalyzer {
    /// One detector per lead.
    detectors: Vec<StreamingQrsDetector>,
    classifier: BeatClassifier,
    alarms: AlarmEngine,
    /// Whether the first decoded window has arrived. Until it does,
    /// emissions are ignored entirely: a leading concealment has nothing
    /// to hold, and letting the detector seed its warm-up thresholds on
    /// interpolated silence leaves them trigger-happy for the rest of
    /// the session.
    started: bool,
    /// Absolute sample before which alarm evaluation is suppressed
    /// (end of the most recent concealed/quarantined window).
    conceal_until: usize,
    /// Signal clock (samples seen on the primary lead).
    clock: usize,
    /// Sample at which routine fidelity may be restored; `usize::MAX`
    /// while any alarm is active.
    restore_at: Option<usize>,
    truth: Option<TruthScorer>,
}

/// The fleet-wide streaming clinical engine. See the module docs for
/// the wiring pattern.
pub struct ClinicalEngine {
    config: ClinicalConfig,
    patients: Vec<PatientAnalyzer>,
    telemetry: TelemetryRegistry,
    controller: Option<TierController>,
    feedback: Option<crossbeam::channel::Sender<ClinicalFeedback>>,
    /// Reused f64 conversion buffer.
    scratch: Vec<f64>,
    /// Reused detection buffer.
    detections: Vec<QrsDetection>,
    /// Reused alarm-transition buffer.
    transitions: Vec<AlarmTransition>,
}

impl ClinicalEngine {
    /// Builds an engine for `patients` streams of `channels` leads each.
    pub fn new(
        config: ClinicalConfig,
        patients: usize,
        channels: usize,
        telemetry: TelemetryRegistry,
    ) -> Self {
        assert!(channels > 0, "at least one lead per patient");
        assert!(
            (config.primary_lead as usize) < channels,
            "primary lead {} out of range for {} channels",
            config.primary_lead,
            channels
        );
        let analyzers = (0..patients)
            .map(|_| PatientAnalyzer {
                detectors: (0..channels)
                    .map(|_| StreamingQrsDetector::new(config.detector))
                    .collect(),
                classifier: BeatClassifier::new(config.classifier),
                alarms: AlarmEngine::new(config.alarm),
                started: false,
                conceal_until: 0,
                clock: 0,
                restore_at: None,
                truth: None,
            })
            .collect();
        ClinicalEngine {
            config,
            patients: analyzers,
            telemetry,
            controller: None,
            feedback: None,
            scratch: Vec::new(),
            detections: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Attaches the shared fidelity controller: active alarms escalate
    /// the patient's stream to the diagnostic tier, quiet restores it.
    pub fn set_tier_controller(&mut self, controller: TierController) {
        self.controller = Some(controller);
    }

    /// Attaches an out-of-band feedback channel mirroring tier changes
    /// (e.g. for a remote mote uplink). Sends never block; a full or
    /// disconnected channel is ignored.
    pub fn set_feedback(&mut self, sender: crossbeam::channel::Sender<ClinicalFeedback>) {
        self.feedback = Some(sender);
    }

    /// Registers ground-truth R-peak annotations for one patient's
    /// primary lead so live sensitivity/PPV flow into telemetry.
    pub fn set_ground_truth(&mut self, stream: usize, truth: Vec<usize>, tolerance: usize) {
        if let Some(p) = self.patients.get_mut(stream) {
            p.truth = Some(TruthScorer::new(truth, tolerance));
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClinicalConfig {
        &self.config
    }

    /// Current severity of `kind` on `stream` (Normal if out of range).
    pub fn severity(&self, stream: usize, kind: cs_telemetry::AlarmKind) -> AlarmSeverity {
        self.patients
            .get(stream)
            .map_or(AlarmSeverity::Normal, |p| p.alarms.severity(kind))
    }

    /// The patient's truth scorer, if ground truth was registered.
    pub fn truth_scorer(&self, stream: usize) -> Option<&TruthScorer> {
        self.patients.get(stream).and_then(|p| p.truth.as_ref())
    }

    /// Smoothed heart rate of one patient, once seeded.
    pub fn heart_rate_bpm(&self, stream: usize) -> Option<f64> {
        self.patients.get(stream).and_then(|p| p.alarms.heart_rate_bpm())
    }

    /// Feeds one fleet emission. Appends any clinical events to `out`;
    /// steady-state calls are allocation-free once buffers are warm.
    pub fn on_packet<T: Real>(&mut self, pkt: &FleetPacket<T>, out: &mut Vec<ClinicalEvent>) {
        let stream = pkt.stream;
        let Some(patient) = self.patients.get_mut(stream) else {
            return;
        };
        if !patient.started {
            if matches!(pkt.outcome, PacketOutcome::Decoded) {
                patient.started = true;
            } else {
                if pkt.channel == self.config.primary_lead {
                    self.telemetry.record_alarm_suppressed();
                }
                return;
            }
        }
        let lead = pkt.channel as usize;
        let Some(detector) = patient.detectors.get_mut(lead) else {
            return;
        };
        let base = detector.samples_seen();

        self.scratch.clear();
        self.scratch.extend(pkt.packet.samples.iter().map(|&v| v.to_f64()));
        self.detections.clear();
        detector.push_window(&self.scratch, &mut self.detections);

        if pkt.channel != self.config.primary_lead {
            return;
        }
        let now = base + self.scratch.len();
        patient.clock = now;

        let trusted = matches!(pkt.outcome, PacketOutcome::Decoded);
        if !trusted {
            patient.conceal_until = now;
            self.telemetry.record_alarm_suppressed();
        }

        self.transitions.clear();
        for i in 0..self.detections.len() {
            let det = self.detections[i];
            if let Some(scorer) = patient.truth.as_mut() {
                scorer.record(det.sample, &self.telemetry);
            }
            let Some(beat) = patient.classifier.classify(det.sample, det.crest) else {
                continue;
            };
            self.telemetry.record_beat(beat.class);
            out.push(ClinicalEvent::Beat { stream, beat });
            if beat.sample >= patient.conceal_until {
                patient.alarms.on_beat(&beat, &mut self.transitions);
            }
        }
        if now >= patient.conceal_until {
            patient.alarms.on_silence(now, patient.conceal_until, &mut self.transitions);
        }

        for i in 0..self.transitions.len() {
            let t = self.transitions[i];
            if t.from == AlarmSeverity::Normal {
                self.telemetry.record_alarm_raised(t.kind);
            } else if t.to == AlarmSeverity::Normal {
                self.telemetry.record_alarm_cleared(t.kind);
            }
            out.push(ClinicalEvent::Alarm { stream, transition: t });
        }

        // Closed-loop fidelity.
        let holdoff = (self.config.restore_holdoff_s * self.config.alarm.sample_rate_hz) as usize;
        let desired = if patient.alarms.any_active() {
            patient.restore_at = Some(now + holdoff);
            Some(FidelityTier::Diagnostic)
        } else if patient.restore_at.is_some_and(|at| now >= at) {
            patient.restore_at = None;
            Some(FidelityTier::Routine)
        } else {
            None
        };
        if let (Some(tier), Some(ctl)) = (desired, self.controller.as_ref()) {
            if ctl.tier(stream) != tier {
                ctl.set_tier(stream, tier);
                let notice = ClinicalFeedback { stream, tier };
                out.push(ClinicalEvent::Tier(notice));
                if let Some(tx) = self.feedback.as_ref() {
                    let _ = tx.try_send(notice);
                }
            }
        }
    }

    /// Flushes every detector (end of record) and settles truth
    /// scorers. Call once after the fleet drains.
    pub fn finish(&mut self, out: &mut Vec<ClinicalEvent>) {
        for stream in 0..self.patients.len() {
            let patient = &mut self.patients[stream];
            let primary = self.config.primary_lead as usize;
            for lead in 0..patient.detectors.len() {
                self.detections.clear();
                patient.detectors[lead].flush(&mut self.detections);
                if lead != primary {
                    continue;
                }
                for i in 0..self.detections.len() {
                    let det = self.detections[i];
                    if let Some(scorer) = patient.truth.as_mut() {
                        scorer.record(det.sample, &self.telemetry);
                    }
                    if let Some(beat) = patient.classifier.classify(det.sample, det.crest) {
                        self.telemetry.record_beat(beat.class);
                        out.push(ClinicalEvent::Beat { stream, beat });
                    }
                }
            }
            if let Some(scorer) = patient.truth.as_mut() {
                scorer.finish(&self.telemetry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_telemetry::AlarmKind;

    #[test]
    fn truth_scorer_matches_clean_stream() {
        let telemetry = TelemetryRegistry::new();
        let truth = vec![100, 300, 500, 700];
        let mut s = TruthScorer::new(truth, 13);
        for d in [101, 295, 505, 699] {
            s.record(d, &telemetry);
        }
        s.finish(&telemetry);
        assert_eq!(s.confusion(), (4, 0, 0));
        assert_eq!(s.sensitivity(), Some(1.0));
        assert_eq!(s.ppv(), Some(1.0));
        assert_eq!(telemetry.qrs_confusion(), (4, 0, 0));
    }

    #[test]
    fn truth_scorer_counts_misses_and_extras() {
        let telemetry = TelemetryRegistry::disabled();
        let mut s = TruthScorer::new(vec![100, 300, 500], 13);
        // 100 matched, 200 spurious, 300 missed (no detection), 500 matched.
        for d in [101, 200, 505] {
            s.record(d, &telemetry);
        }
        s.finish(&telemetry);
        assert_eq!(s.confusion(), (2, 1, 1));
    }

    #[test]
    fn truth_scorer_finish_flushes_tail_misses() {
        let telemetry = TelemetryRegistry::disabled();
        let mut s = TruthScorer::new(vec![100, 300, 500], 13);
        s.record(99, &telemetry);
        s.finish(&telemetry);
        s.finish(&telemetry); // idempotent
        assert_eq!(s.confusion(), (1, 0, 2));
    }

    #[test]
    fn severity_defaults_to_normal_out_of_range() {
        let engine = ClinicalEngine::new(
            ClinicalConfig::at_256_hz(),
            1,
            1,
            TelemetryRegistry::disabled(),
        );
        assert_eq!(engine.severity(7, AlarmKind::Asystole), AlarmSeverity::Normal);
    }

    #[test]
    #[should_panic(expected = "primary lead")]
    fn primary_lead_must_exist() {
        let mut cfg = ClinicalConfig::at_256_hz();
        cfg.primary_lead = 2;
        ClinicalEngine::new(cfg, 1, 2, TelemetryRegistry::disabled());
    }
}
