//! # cs-clinical — streaming clinical analysis for the CS-ECG pipeline
//!
//! Everything downstream of reconstruction: the decode side hands this
//! crate in-order per-lead sample windows (via `cs_core::FleetPacket`
//! emissions) and gets back beats, alarms, and adaptive-compression
//! feedback.
//!
//! ```text
//!   FleetPacket ─▶ StreamingQrsDetector ─▶ BeatClassifier ─▶ AlarmEngine
//!        │              (per lead)          (primary lead)       │
//!        │                                                       ▼
//!        └──────────◀── TierController ◀── ClinicalEngine ── transitions
//!                     (Routine ⇄ Diagnostic)
//! ```
//!
//! * [`StreamingQrsDetector`] — an incremental port of
//!   `cs_ecg_data::detect::detect_r_peaks` that produces **bit-identical
//!   detections** regardless of how the signal is chunked into windows,
//!   at ~115 ms latency behind the input.
//! * [`BeatClassifier`] — RR-interval + crest-morphology beat typing
//!   (normal / PVC / APC).
//! * [`AlarmEngine`] — per-patient alarm state machine with onset
//!   hysteresis, immediate escalation, latched criticals, and an
//!   asystole silence timeout.
//! * [`ClinicalEngine`] — the fleet-wide assembly: per-lead detectors,
//!   concealment-aware alarm suppression, live sensitivity/PPV scoring
//!   against registered ground truth, and closed-loop fidelity control
//!   through `cs_core::TierController`.
//!
//! Steady-state analysis performs no heap allocation: detectors use
//! fixed rings sized at construction, and every event buffer is reused.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alarm;
mod classifier;
mod detector;
mod engine;

pub use alarm::{AlarmConfig, AlarmEngine, AlarmTransition};
pub use classifier::{BeatClassifier, BeatClassifierConfig, ClassifiedBeat};
pub use detector::{QrsDetection, StreamingQrsDetector};
pub use engine::{ClinicalConfig, ClinicalEngine, ClinicalEvent, TruthScorer};
