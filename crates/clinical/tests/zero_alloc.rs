//! Steady-state clinical analysis must be allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up period (rings are pre-sized at construction, but the event
//! and scratch buffers grow on first use), every further
//! [`ClinicalEngine::on_packet`] call — detection, classification,
//! alarm evaluation, truth scoring, telemetry — must perform **zero**
//! heap allocations. The analysis path runs on the decode side's hot
//! loop; an allocation there stalls the very stream being monitored.
//!
//! Single `#[test]` in its own binary so no concurrent test pollutes
//! the counter.

use cs_clinical::{ClinicalConfig, ClinicalEngine};
use cs_core::{DecodedPacket, FleetPacket, PacketOutcome, TierController};
use cs_telemetry::TelemetryRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// 512-sample windows of a 72 bpm pulse train at 256 Hz.
fn window(k: usize) -> Vec<f64> {
    let rr = 213; // ≈ 72 bpm at 256 Hz
    (0..512)
        .map(|i| {
            let abs = k * 512 + i;
            let phase = (abs % rr) as f64;
            380.0 * (-(phase - 18.0).powi(2) / 5.0).exp() + 6.0 * (abs as f64 * 0.013).sin()
        })
        .collect()
}

#[test]
fn steady_state_analysis_allocates_nothing() {
    let telemetry = TelemetryRegistry::new();
    let mut engine = ClinicalEngine::new(ClinicalConfig::at_256_hz(), 1, 1, telemetry.clone());
    engine.set_tier_controller(TierController::new(1));
    // Live truth scoring rides the hot path too.
    let rr = 213;
    let truth: Vec<usize> = (0..(64 * 512) / rr).map(|k| k * rr + 18).collect();
    engine.set_ground_truth(0, truth, 13);

    // Pre-build the emissions so the measured loop is analysis only.
    let packets: Vec<FleetPacket<f64>> = (0..64)
        .map(|k| {
            let mut packet = DecodedPacket::default();
            packet.index = k as u64;
            packet.samples = window(k);
            FleetPacket { stream: 0, channel: 0, outcome: PacketOutcome::Decoded, e2e: None, packet }
        })
        .collect();

    let mut events = Vec::with_capacity(256);

    // Warm-up: priming (2 s), first beats, scratch/event buffer growth.
    for pkt in &packets[..16] {
        events.clear();
        engine.on_packet(pkt, &mut events);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut beats = 0;
    for pkt in &packets[16..] {
        events.clear();
        engine.on_packet(pkt, &mut events);
        beats += events.len();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state clinical analysis allocated {} times",
        after - before
    );
    // The measured loop really analyzed signal: beats flowed and the
    // truth scorer kept up.
    assert!(beats > 40, "only {beats} events in the measured window");
    let (tp, _, _) = telemetry.qrs_confusion();
    assert!(tp > 40, "truth scorer matched only {tp} peaks");
}
