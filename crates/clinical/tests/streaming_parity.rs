//! Cross-crate acceptance: the streaming detector must match the
//! offline detector **on reconstructed signals**, and the full clinical
//! engine must raise/clear alarms and drive the adaptive-compression
//! loop when fed fleet emissions.

use std::sync::Arc;

use cs_clinical::{ClinicalConfig, ClinicalEngine, ClinicalEvent, StreamingQrsDetector};
use cs_core::{
    packetize, train_codebook, Decoder, Encoder, FidelityTier, FleetPacket, PacketOutcome,
    SolverPolicy, SystemConfig, TierController,
};
use cs_core::{ConcealmentReason, DecodedPacket};
use cs_ecg_data::{
    detect_r_peaks, resample_360_to_256, score_detections, AdcModel, BeatAnnotation, EcgModel,
    EcgModelConfig, QrsDetectorConfig,
};
use cs_telemetry::{AlarmKind, AlarmSeverity, TelemetryRegistry};

/// Synthesizes an arrhythmic record, round-trips it through the CS
/// pipeline at `cr`, and returns `(reconstruction, truth @256 Hz)`.
fn reconstructed_record(cr: f64, seed: u64, duration_s: f64) -> (Vec<f64>, Vec<BeatAnnotation>) {
    let mut model_cfg = EcgModelConfig::default();
    model_cfg.rhythm.pvc_probability = 0.10;
    model_cfg.rhythm.mean_heart_rate_bpm = 78.0;
    let mut model = EcgModel::new(model_cfg, seed);
    let (mv_360, beats) = model.synthesize(duration_s);
    let at_256 = resample_360_to_256(&mv_360);
    let adc = AdcModel::mit_bih();
    let samples: Vec<i16> = at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();
    let truth: Vec<BeatAnnotation> = beats
        .iter()
        .map(|b| BeatAnnotation { sample: b.sample * 256 / 360, beat: b.beat })
        .filter(|b| b.sample < samples.len())
        .collect();

    let config = SystemConfig::builder().compression_ratio(cr).build().unwrap();
    let training = packetize(&samples, config.packet_len()).take(3).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).unwrap());
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
    let mut decoder: Decoder<f64> =
        Decoder::new(&config, codebook, SolverPolicy::default()).unwrap();
    let mut recon = Vec::with_capacity(samples.len());
    for packet in packetize(&samples, config.packet_len()) {
        let wire = encoder.encode_packet(packet).unwrap();
        recon.extend(decoder.decode_packet(&wire).unwrap().samples);
    }
    (recon, truth)
}

#[test]
fn streaming_matches_offline_on_reconstructed_signal() {
    let (recon, truth) = reconstructed_record(50.0, 2024, 30.0);
    let config = QrsDetectorConfig::at_256_hz();
    let offline = detect_r_peaks(&recon, &config);

    // Windowed exactly as the decoder emits it: 512-sample packets.
    let mut det = StreamingQrsDetector::new(config);
    let mut out = Vec::new();
    for window in recon.chunks(512) {
        det.push_window(window, &mut out);
    }
    det.flush(&mut out);
    let streamed: Vec<usize> = out.iter().map(|d| d.sample).collect();
    assert_eq!(streamed, offline, "streaming/offline divergence on reconstructed ECG");

    // And the detections must still be clinically useful at CR 50.
    let (sens, ppv) = score_detections(&truth, &streamed, 13);
    assert!(sens >= 0.95, "sensitivity {sens:.3} below 0.95 on reconstructed signal");
    assert!(ppv >= 0.95, "PPV {ppv:.3} below 0.95 on reconstructed signal");
}

/// Wraps raw sample windows as fleet emissions for the engine.
fn emit(stream: usize, outcome: PacketOutcome, index: u64, window: &[f64]) -> FleetPacket<f64> {
    let mut packet = DecodedPacket::default();
    packet.index = index;
    packet.samples = window.to_vec();
    FleetPacket { stream, channel: 0, outcome, e2e: None, packet }
}

/// A 256 Hz sinus-like pulse train at the given rate — enough QRS energy
/// for the detector without a full synthesizer run.
fn pulse_train(duration_s: f64, bpm: f64) -> Vec<f64> {
    let fs = 256.0;
    let n = (duration_s * fs) as usize;
    let rr = (60.0 / bpm * fs) as usize;
    (0..n)
        .map(|i| {
            let phase = (i % rr) as f64;
            let spike = (-(phase - 20.0).powi(2) / 6.0).exp();
            400.0 * spike + 8.0 * (i as f64 * 0.01).sin()
        })
        .collect()
}

#[test]
fn engine_raises_tachycardia_and_closes_the_fidelity_loop() {
    let telemetry = TelemetryRegistry::new();
    let mut engine = ClinicalEngine::new(ClinicalConfig::at_256_hz(), 2, 1, telemetry.clone());
    let controller = TierController::new(2);
    engine.set_tier_controller(controller.clone());
    let (tx, rx) = crossbeam::channel::bounded(64);
    engine.set_feedback(tx);

    // 20 s at 70 bpm, 30 s at 160 bpm, 40 s back at 70 bpm.
    let mut signal = pulse_train(20.0, 70.0);
    signal.extend(pulse_train(30.0, 160.0));
    signal.extend(pulse_train(40.0, 70.0));

    let mut events = Vec::new();
    for (k, window) in signal.chunks(512).enumerate() {
        engine.on_packet(&emit(0, PacketOutcome::Decoded, k as u64, window), &mut events);
    }
    engine.finish(&mut events);

    let raised = events.iter().any(|e| matches!(e,
        ClinicalEvent::Alarm { stream: 0, transition } if transition.kind == AlarmKind::Tachycardia
            && transition.to > AlarmSeverity::Normal));
    let cleared = events.iter().any(|e| matches!(e,
        ClinicalEvent::Alarm { stream: 0, transition } if transition.kind == AlarmKind::Tachycardia
            && transition.to == AlarmSeverity::Normal));
    assert!(raised, "tachycardia never raised: {events:?}");
    assert!(cleared, "tachycardia never cleared: {events:?}");

    // The loop escalated to diagnostic while abnormal and restored
    // routine after the quiet holdoff.
    assert_eq!(controller.escalations(), 1);
    assert_eq!(controller.restorations(), 1);
    assert_eq!(controller.tier(0), FidelityTier::Routine);
    assert_eq!(controller.tier(1), FidelityTier::Routine, "other patient untouched");
    let mut tiers = Vec::new();
    while let Ok(f) = rx.try_recv() {
        tiers.push(f.tier);
    }
    assert_eq!(tiers, vec![FidelityTier::Diagnostic, FidelityTier::Routine]);

    // Telemetry saw the same story.
    let snap = telemetry.snapshot();
    assert_eq!(snap.alarm(AlarmKind::Tachycardia).raised, 1);
    assert_eq!(snap.alarm(AlarmKind::Tachycardia).cleared, 1);
    assert_eq!(snap.alarm(AlarmKind::Tachycardia).active, 0);
}

#[test]
fn concealed_windows_suppress_alarms_but_keep_continuity() {
    let telemetry = TelemetryRegistry::new();
    let mut engine = ClinicalEngine::new(ClinicalConfig::at_256_hz(), 1, 1, telemetry.clone());

    // Healthy rhythm, but windows 12..=14 arrive concealed as flat-ish
    // interpolations: 6 s of signal gap. Asystole must NOT fire.
    let signal = pulse_train(60.0, 70.0);
    let mut events = Vec::new();
    for (k, window) in signal.chunks(512).enumerate() {
        let outcome = if (12..=14).contains(&k) {
            PacketOutcome::Concealed(ConcealmentReason::Loss)
        } else {
            PacketOutcome::Decoded
        };
        let flat = vec![0.0; window.len()];
        let payload = if (12..=14).contains(&k) { &flat[..] } else { window };
        engine.on_packet(&emit(0, outcome, k as u64, payload), &mut events);
    }
    engine.finish(&mut events);

    assert!(
        !events.iter().any(|e| matches!(e, ClinicalEvent::Alarm { .. })),
        "no alarm may fire across a concealed gap: {events:?}"
    );
    let snap = telemetry.snapshot();
    assert_eq!(snap.alarm(AlarmKind::Asystole).raised, 0);
    assert_eq!(snap.alarms_suppressed, 3, "one suppression per concealed window");
    // The beat stream kept flowing after the gap.
    assert!(snap.beats.iter().map(|&(_, c)| c).sum::<u64>() > 50);
}

#[test]
fn ground_truth_scoring_flows_into_telemetry() {
    let telemetry = TelemetryRegistry::new();
    let mut engine = ClinicalEngine::new(ClinicalConfig::at_256_hz(), 1, 1, telemetry.clone());
    let signal = pulse_train(30.0, 70.0);
    // The pulse train's R crests: detector refines to the extremum near
    // phase 20 of each RR period.
    let rr = (60.0 / 70.0 * 256.0) as usize;
    let truth: Vec<usize> = (0..signal.len() / rr).map(|k| k * rr + 20).collect();
    engine.set_ground_truth(0, truth, 13);

    let mut events = Vec::new();
    for (k, window) in signal.chunks(512).enumerate() {
        engine.on_packet(&emit(0, PacketOutcome::Decoded, k as u64, window), &mut events);
    }
    engine.finish(&mut events);

    let scorer = engine.truth_scorer(0).unwrap();
    assert!(scorer.sensitivity().unwrap() >= 0.95, "confusion: {:?}", scorer.confusion());
    assert!(scorer.ppv().unwrap() >= 0.95, "confusion: {:?}", scorer.confusion());
    let snap = telemetry.snapshot();
    assert_eq!(snap.qrs_sensitivity(), scorer.sensitivity());
    assert_eq!(snap.qrs_ppv(), scorer.ppv());
}
