//! Property tests for the log2 histogram invariants promised by
//! `HistogramSnapshot::quantile` and `merge`, plus adversarial
//! ring-buffer overflow checks on the journal.

use cs_telemetry::{Histogram, HistogramSnapshot, Journal, SolveTrace};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let mut s = HistogramSnapshot::new();
    for &v in values {
        s.record_ns(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_preserves_total_count(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..200),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..200),
    ) {
        let mut left = snapshot_of(&a);
        let right = snapshot_of(&b);
        left.merge(&right);
        prop_assert_eq!(left.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(left.buckets.iter().sum::<u64>(), left.count());
        // Extrema survive the merge too.
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        if !all.is_empty() {
            prop_assert_eq!(left.min_ns(), *all.iter().min().unwrap());
            prop_assert_eq!(left.max_ns(), *all.iter().max().unwrap());
        }
    }

    #[test]
    fn atomic_merge_preserves_total_count(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a {
            ha.record_ns(v);
        }
        for &v in &b {
            hb.record_ns(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.snapshot().buckets.iter().sum::<u64>(), ha.count());
    }

    #[test]
    fn quantile_is_monotone_in_p(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        let s = snapshot_of(&values);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(
            s.quantile(lo) <= s.quantile(hi),
            "quantile({}) = {} > quantile({}) = {}",
            lo, s.quantile(lo), hi, s.quantile(hi)
        );
    }

    #[test]
    fn quantile_is_bounded_by_recorded_extrema(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        p in 0.0f64..=1.0,
    ) {
        let s = snapshot_of(&values);
        let q = s.quantile(p);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert!(
            (min..=max).contains(&q),
            "quantile({p}) = {q} outside [{min}, {max}]"
        );
        prop_assert_eq!(s.min_ns(), min);
        prop_assert_eq!(s.max_ns(), max);
    }

    #[test]
    fn quantile_has_log2_bucket_accuracy(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..100),
        p in 0.0f64..=1.0,
    ) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = snapshot_of(&values);
        let q = s.quantile(p);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        // The reported quantile shares the true quantile's log2 bucket
        // (up to extrema clamping), i.e. relative error below 2x.
        prop_assert!(
            q >= exact / 2 && (q / 2 <= exact || q <= s.max_ns()),
            "quantile({p}) = {q} not within a log2 bucket of exact {exact}"
        );
    }

    #[test]
    fn journal_never_exceeds_capacity_and_accounts_for_drops(
        capacity in 1usize..32,
        pushes in 0u64..200,
    ) {
        let j = Journal::new(capacity);
        for seq in 0..pushes {
            j.push(SolveTrace { seq, ..SolveTrace::default() });
        }
        prop_assert!(j.len() <= capacity);
        prop_assert_eq!(j.pushed(), pushes);
        prop_assert_eq!(j.dropped() + j.len() as u64, pushes);
        // Single-threaded pushes drop only to overflow, keeping the
        // newest `capacity` traces in order.
        let kept = j.drain();
        let expected_start = pushes.saturating_sub(capacity as u64);
        let seqs: Vec<u64> = kept.iter().map(|t| t.seq).collect();
        let expected: Vec<u64> = (expected_start..pushes).collect();
        prop_assert_eq!(seqs, expected);
    }
}
