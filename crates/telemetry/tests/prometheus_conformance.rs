//! Prometheus text-exposition conformance for the hand-rolled exporter.
//!
//! The scrape output is consumed by a real Prometheus server, which is
//! far stricter than "looks greppable": every sample needs `# HELP` and
//! `# TYPE` metadata declared before it, metric and label names must
//! match the spec grammar, label values must escape `\`, `"` and
//! newlines, histogram buckets must be cumulative and monotone with a
//! `+Inf` bucket equal to `_count`, and no series may appear twice.
//! This test implements that checklist as a standalone validator (the
//! crate is dependency-free, so no prometheus-parser crate) and runs
//! the real exporter through it — populated, empty, and disabled.

use cs_telemetry::{
    escape_label, ArchiveOp, FaultKind, ScrapeEndpoint, SloConfig, SolveTrace, Stage,
    TelemetryRegistry, TraceContext,
};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

// ---------------------------------------------------------------------
// The validator.
// ---------------------------------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample: name, sorted labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{k="v",...} value`, validating every lexical rule on the
/// way; panics with the offending line on any violation.
fn parse_sample(line: &str) -> Sample {
    let name_end = line
        .find(|c| c == '{' || c == ' ')
        .unwrap_or_else(|| panic!("no value on sample line: {line}"));
    let name = &line[..name_end];
    assert!(valid_metric_name(name), "invalid metric name `{name}` in: {line}");

    let mut labels = Vec::new();
    let rest = if line.as_bytes()[name_end] == b'{' {
        let mut chars = line[name_end + 1..].char_indices().peekable();
        loop {
            // Label name up to '='.
            let mut label = String::new();
            for (_, c) in chars.by_ref() {
                if c == '=' {
                    break;
                }
                label.push(c);
            }
            assert!(valid_label_name(&label), "invalid label name `{label}` in: {line}");
            // Quoted value with escapes.
            assert_eq!(chars.next().map(|(_, c)| c), Some('"'), "unquoted label in: {line}");
            let mut value = String::new();
            loop {
                match chars.next().map(|(_, c)| c) {
                    Some('\\') => match chars.next().map(|(_, c)| c) {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => panic!("bad escape `\\{other:?}` in: {line}"),
                    },
                    Some('"') => break,
                    Some(c) => {
                        assert!(c != '\n', "raw newline in label value: {line}");
                        value.push(c);
                    }
                    None => panic!("unterminated label value in: {line}"),
                }
            }
            labels.push((label, value));
            match chars.next().map(|(_, c)| c) {
                Some(',') => continue,
                Some('}') => break,
                other => panic!("expected `,` or `}}`, got {other:?} in: {line}"),
            }
        }
        let consumed = chars.peek().map_or(line.len(), |&(i, _)| name_end + 1 + i);
        &line[consumed..]
    } else {
        &line[name_end..]
    };

    let value_text = rest.trim_start();
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value `{other}` in: {line}")),
    };
    Sample { name: name.to_owned(), labels, value }
}

/// The metric family a sample belongs to: histogram samples drop their
/// `_bucket`/`_sum`/`_count` suffix, everything else matches exactly.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    if types.contains_key(name) {
        return name;
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    panic!("sample `{name}` has no preceding # TYPE metadata");
}

/// Validates a full exposition body; panics on the first violation.
fn validate(text: &str) {
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut series: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<Sample> = Vec::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# HELP ") {
            let (name, help) = meta.split_once(' ').expect("HELP without text");
            assert!(valid_metric_name(name), "invalid family name in HELP: {line}");
            assert!(!help.is_empty(), "empty HELP text: {line}");
            assert!(helps.insert(name.to_owned()), "duplicate HELP for `{name}`");
            continue;
        }
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            let (name, kind) = meta.split_once(' ').expect("TYPE without kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped"),
                "unknown TYPE `{kind}` for `{name}`"
            );
            assert!(helps.contains(name), "TYPE before HELP for `{name}`");
            assert!(
                types.insert(name.to_owned(), kind.to_owned()).is_none(),
                "duplicate TYPE for `{name}`"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");

        let sample = parse_sample(line);
        let family = family_of(&sample.name, &types).to_owned();
        let kind = &types[&family];
        if kind == "counter" {
            assert!(
                family.ends_with("_total"),
                "counter `{family}` should end in _total"
            );
            assert!(
                sample.value >= 0.0 && sample.value.is_finite(),
                "counter sample went negative or non-finite: {line}"
            );
        }
        let mut key = sample.name.clone();
        let mut sorted = sample.labels.clone();
        sorted.sort();
        for (k, v) in &sorted {
            key.push_str(&format!("|{k}={v}"));
        }
        assert!(series.insert(key), "duplicate series: {line}");
        samples.push(sample);
    }

    // Histogram families: group buckets by their non-`le` label set and
    // check the cumulative-distribution invariants.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        let mut sums: BTreeSet<String> = BTreeSet::new();
        for s in &samples {
            let group = |labels: &[(String, String)]| {
                let mut kept: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                kept.sort();
                kept.join(",")
            };
            if s.name == format!("{family}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or_else(|| panic!("{family}_bucket without le label"));
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                buckets.entry(group(&s.labels)).or_default().push((le, s.value));
            } else if s.name == format!("{family}_count") {
                counts.insert(group(&s.labels), s.value);
            } else if s.name == format!("{family}_sum") {
                sums.insert(group(&s.labels));
            }
        }
        assert!(!buckets.is_empty() || counts.is_empty(), "{family}: counts without buckets");
        for (labels, rows) in &buckets {
            for pair in rows.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "{family}{{{labels}}}: le bounds not ascending"
                );
                assert!(
                    pair[0].1 <= pair[1].1,
                    "{family}{{{labels}}}: bucket counts not cumulative"
                );
            }
            let last = rows.last().unwrap();
            assert!(last.0.is_infinite(), "{family}{{{labels}}}: missing +Inf bucket");
            let count = counts
                .get(labels)
                .unwrap_or_else(|| panic!("{family}{{{labels}}}: missing _count"));
            assert_eq!(last.1, *count, "{family}{{{labels}}}: +Inf bucket != _count");
            assert!(sums.contains(labels), "{family}{{{labels}}}: missing _sum");
        }
    }
}

// ---------------------------------------------------------------------
// Exporter output under the validator.
// ---------------------------------------------------------------------

/// A registry with every family populated: stages, workers, faults,
/// archive ops, batch occupancy, traced emissions (e2e + SLO, one
/// deadline miss so the burn-rate gauges are non-zero), scrapes, and a
/// second render so the self-observation histogram appears.
fn populated_registry() -> TelemetryRegistry {
    let registry = TelemetryRegistry::with_slo_config(SloConfig {
        deadline: Duration::from_millis(1),
        ..SloConfig::default()
    });
    for (i, stage) in Stage::ALL.iter().enumerate() {
        registry.record_stage_ns(*stage, 1_000 * (i as u64 + 1));
        registry.record_stage_ns(*stage, 900_000 * (i as u64 + 1));
    }
    for w in 0..3 {
        registry.record_worker_packet(w);
    }
    for kind in FaultKind::ALL {
        registry.record_fault(kind);
    }
    for op in ArchiveOp::ALL {
        registry.record_archive_op(op);
    }
    registry.record_batch_occupancy(4);
    registry.record_solve(SolveTrace { iterations: 12, solve_ns: 5_000, ..SolveTrace::default() });
    for patient in 0..2u32 {
        for seq in 0..4 {
            let captured = registry.now_ns();
            registry.record_emit(&TraceContext::new(patient, (seq % 2) as u8, seq, captured));
        }
    }
    // One unmistakable deadline miss: a capture stamp 50 ms in the past
    // against the 1 ms budget.
    std::thread::sleep(Duration::from_millis(50));
    let stale = registry.now_ns().saturating_sub(50_000_000);
    registry.record_emit(&TraceContext::new(0, 0, 4, stale));
    for endpoint in ScrapeEndpoint::ALL {
        registry.record_scrape(endpoint);
    }
    let _ = registry.prometheus(); // primes cs_exporter_render_seconds
    registry
}

#[test]
fn populated_scrape_conforms() {
    let registry = populated_registry();
    let scrape = registry.prometheus();
    validate(&scrape);
    // Spot-check that validation ran over the full surface, not a
    // degenerate scrape: every family the exporter documents is present.
    for family in [
        "cs_stage_latency_ns",
        "cs_stage_latency_quantile_ns",
        "cs_batch_occupancy",
        "cs_worker_packets_total",
        "cs_fault_total",
        "cs_archive_total",
        "cs_journal_traces",
        "cs_e2e_latency_seconds",
        "cs_deadline_miss_total",
        "cs_lane_freshness_seconds",
        "cs_lane_newest_seq",
        "cs_slo_burn_rate",
        "cs_patient_health",
        "cs_telemetry_scrapes_total",
        "cs_exporter_render_seconds",
    ] {
        assert!(scrape.contains(&format!("# TYPE {family} ")), "family `{family}` missing");
    }
}

#[test]
fn empty_and_disabled_scrapes_conform() {
    // A fresh registry elides every zero-count series but must still
    // emit well-formed metadata for whatever remains.
    validate(&TelemetryRegistry::new().prometheus());
    validate(&TelemetryRegistry::disabled().prometheus());
}

#[test]
fn escaped_label_values_stay_parseable() {
    // The closed label sets never need escaping today, but the escape
    // path is the spec-conformance safety net: a hostile value must
    // round-trip through the validator's strict parser.
    let hostile = "he said \"x\\y\"\nnewline";
    let escaped = escape_label(hostile);
    let text = format!(
        "# HELP t_total test\n# TYPE t_total counter\nt_total{{k=\"{escaped}\"}} 1\n"
    );
    validate(&text);
    assert_eq!(escape_label("plain_snake_case"), "plain_snake_case");
}

#[test]
fn validator_rejects_malformed_expositions() {
    // The validator itself must have teeth, or the conformance tests
    // above prove nothing.
    let cases: [(&str, &str); 5] = [
        ("no metadata", "cs_orphan_total 1\n"),
        (
            "bad metric name",
            "# HELP 9bad test\n# TYPE 9bad counter\n9bad 1\n",
        ),
        (
            "duplicate series",
            "# HELP d_total test\n# TYPE d_total counter\nd_total{a=\"1\"} 1\nd_total{a=\"1\"} 2\n",
        ),
        (
            "non-cumulative buckets",
            "# HELP h test\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
        ),
        (
            "missing +Inf bucket",
            "# HELP h test\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
        ),
    ];
    for (what, text) in cases {
        let outcome = std::panic::catch_unwind(|| validate(text));
        assert!(outcome.is_err(), "validator accepted malformed exposition: {what}");
    }
}
