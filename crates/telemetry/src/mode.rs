//! The solver-mode taxonomy for per-mode iteration accounting.
//!
//! The prior-driven decoder can solve a packet four different ways; the
//! registry keeps one iteration histogram per mode so the iteration
//! savings of the support-weighted and block-sparse paths stay visible
//! next to the cold/warm baselines (`cs_solver_iterations{mode=…}`).
//! Like [`Stage`](crate::Stage), the set is closed and array-indexed.

/// How the decoder solved a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverMode {
    /// Plain FISTA from the zero start (no usable warm seed).
    Cold,
    /// Warm-started FISTA from the previous window's estimate.
    Warm,
    /// Support-weighted FISTA: warm seed plus per-coefficient ℓ1 weights
    /// estimated from the previous window's support.
    Weighted,
    /// Block-sparse FISTA: the group prox over wavelet-tree groups.
    Block,
}

impl SolverMode {
    /// Number of modes (the registry's per-mode array length).
    pub const COUNT: usize = 4;

    /// Every mode, in escalation order.
    pub const ALL: [SolverMode; SolverMode::COUNT] = [
        SolverMode::Cold,
        SolverMode::Warm,
        SolverMode::Weighted,
        SolverMode::Block,
    ];

    /// Dense index into per-mode arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus `mode` label and
    /// the JSON-Lines key.
    pub fn name(self) -> &'static str {
        match self {
            SolverMode::Cold => "cold",
            SolverMode::Warm => "warm",
            SolverMode::Weighted => "weighted",
            SolverMode::Block => "block",
        }
    }
}

impl std::fmt::Display for SolverMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, mode) in SolverMode::ALL.iter().enumerate() {
            assert_eq!(mode.index(), i);
        }
        assert_eq!(SolverMode::ALL.len(), SolverMode::COUNT);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = SolverMode::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SolverMode::COUNT);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
