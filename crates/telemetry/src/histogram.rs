//! Fixed-bucket log2 latency histograms.
//!
//! Latencies in this system span six orders of magnitude — tens of
//! nanoseconds for a span around an integer gather-add, milliseconds for
//! a FISTA solve — so the buckets are powers of two: bucket `i` counts
//! observations in `[2^i, 2^{i+1})` nanoseconds (bucket 0 additionally
//! holds zero). 64 buckets cover every representable `u64`, recording is
//! a handful of relaxed atomic adds, and quantiles are read back with
//! bucket resolution (≤ 2× relative error), which is plenty for p50/p95/
//! p99 latency reporting.
//!
//! Two forms exist:
//!
//! * [`Histogram`] — the shared, lock-free recorder built on `AtomicU64`
//!   arrays. Any number of threads may [`record_ns`](Histogram::record_ns)
//!   concurrently; merging and reading race benignly with writers (a
//!   reader may miss in-flight increments, never sees torn values).
//! * [`HistogramSnapshot`] — a plain `Copy` value for aggregation and
//!   transport: what [`Histogram::snapshot`] returns and what the
//!   `cs-metrics` fleet statistics embed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets; enough for any `u64` nanosecond value.
pub const BUCKETS: usize = 64;

/// The bucket an observation lands in: `floor(log2(ns))`, with 0 mapped
/// into bucket 0.
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^{i+1} − 1`, saturating at
/// `u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A lock-free log2 histogram of `u64` observations (nanoseconds by
/// convention).
///
/// # Examples
///
/// ```
/// use cs_telemetry::Histogram;
///
/// let h = Histogram::new();
/// for ns in [100, 200, 400, 800_000] {
///     h.record_ns(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min_ns(), 100);
/// assert_eq!(h.max_ns(), 800_000);
/// // p50 falls in the bucket holding 200 ns, within log2 resolution.
/// let p50 = h.quantile(0.5);
/// assert!((128..=511).contains(&p50), "p50 {p50}");
/// ```
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free: five relaxed atomic
    /// read-modify-writes, safe from any thread.
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds another histogram's current contents into this one. Total
    /// count is preserved: `merged.count() == a.count() + b.count()` when
    /// neither is being written concurrently.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wraps on overflow, which at nanosecond
    /// scale means > 584 years of accumulated latency).
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min_ns(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest observation (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// The `p`-quantile (`p ∈ [0, 1]`) at bucket resolution. See
    /// [`HistogramSnapshot::quantile`] for the exact contract.
    pub fn quantile(&self, p: f64) -> u64 {
        self.snapshot().quantile(p)
    }

    /// A consistent-enough point-in-time copy (individual loads are
    /// atomic; the snapshot as a whole may straddle concurrent writes).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, c) in buckets.iter_mut().zip(&self.counts) {
            *b = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum_ns(),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value log2 histogram: the owned counterpart of [`Histogram`]
/// for aggregation (`cs_metrics::FleetStats` embeds one per stream) and
/// export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` covers `[2^i, 2^{i+1})`.
    pub buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

// Not derived: an empty histogram's running minimum must start at
// `u64::MAX` (the `Summary` extrema precedent in cs-metrics).
impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::new()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Merges another snapshot into this one. Preserves the total count:
    /// `a.merge(&b)` leaves `a.count() == old_a.count() + b.count()`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`p ∈ [0, 1]`, clamped) at bucket resolution.
    ///
    /// Guarantees, tested by property in `tests/histogram_props.rs`:
    ///
    /// * **monotone in `p`** — `quantile(p1) ≤ quantile(p2)` for
    ///   `p1 ≤ p2`;
    /// * **bounded** — the result always lies in
    ///   `[min_ns(), max_ns()]`;
    /// * **bucket-accurate** — the true quantile lies in the same log2
    ///   bucket, so the relative error is below 2×.
    ///
    /// # Error bound
    ///
    /// The reported value is the upper bound `2^{i+1} − 1` of the bucket
    /// `[2^i, 2^{i+1})` holding the rank-`⌈p·n⌉` observation, clamped
    /// into `[min_ns(), max_ns()]`. The true quantile `q` lies in the
    /// same bucket, so `q ≤ quantile(p) < 2·q` — the estimate never
    /// *under*-reports and over-reports by strictly less than one
    /// octave. There is no error in degenerate directions: a
    /// single-sample histogram returns that sample exactly (the clamp
    /// collapses the bucket to the observed value), `p = 0` returns a
    /// value `≥ min_ns()` in the minimum's bucket, and `p = 1` returns
    /// `max_ns()`'s bucket upper clamped to exactly `max_ns()`.
    ///
    /// # Edge cases
    ///
    /// * empty histogram → 0, for any `p`;
    /// * `p` = NaN → treated as 0.0 (the minimum-rank quantile), never a
    ///   panic or a garbage rank;
    /// * `p` outside `[0, 1]` → clamped.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // Representative value: the bucket's upper bound, clamped
                // into the observed range so quantiles never exceed the
                // recorded extrema.
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_cover_recorded_range() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        // True p50 is 500; bucket resolution admits [256, 1000].
        assert!((256..=1023).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn atomic_merge_preserves_count_and_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(10);
        a.record_ns(20);
        b.record_ns(5);
        b.record_ns(40_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min_ns(), 5);
        assert_eq!(a.max_ns(), 40_000);
        assert_eq!(a.sum_ns(), 40_035);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(t * 1000 + i % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(
            h.snapshot().buckets.iter().sum::<u64>(),
            40_000,
            "bucket counts must sum to the total"
        );
    }

    #[test]
    fn empty_quantile_is_zero_for_any_p() {
        let s = HistogramSnapshot::new();
        for p in [0.0, 0.5, 1.0, -3.0, 42.0, f64::NAN] {
            assert_eq!(s.quantile(p), 0);
        }
    }

    #[test]
    fn single_sample_quantile_is_exact() {
        // The clamp into [min, max] collapses the log2 bucket to the one
        // observed value: a single-sample histogram has zero error.
        for ns in [0u64, 1, 7, 1023, 1024, 5_000_000_000] {
            let mut s = HistogramSnapshot::new();
            s.record_ns(ns);
            for p in [0.0, 0.25, 0.5, 1.0] {
                assert_eq!(s.quantile(p), ns, "p={p} ns={ns}");
            }
        }
    }

    #[test]
    fn quantile_extremes_hit_the_recorded_range() {
        let mut s = HistogramSnapshot::new();
        for ns in [10u64, 300, 9_000, 70_000] {
            s.record_ns(ns);
        }
        // p=0 lands in the minimum's bucket [8,16): clamped to ≥ min.
        let p0 = s.quantile(0.0);
        assert!((10..16).contains(&p0), "p0 {p0}");
        // p=1's bucket upper (131071) clamps to exactly the max.
        assert_eq!(s.quantile(1.0), 70_000);
    }

    #[test]
    fn nan_p_is_treated_as_zero_not_garbage() {
        let mut s = HistogramSnapshot::new();
        s.record_ns(100);
        s.record_ns(100_000);
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0));
    }

    #[test]
    fn quantile_never_underestimates_by_more_than_the_bucket() {
        // The documented bound: q ≤ quantile(p) < 2q for the true
        // quantile q, checked against an exact sorted reference.
        let values: Vec<u64> = (1..=500u64).map(|i| i * i).collect();
        let mut s = HistogramSnapshot::new();
        for &v in &values {
            s.record_ns(v);
        }
        for p in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = s.quantile(p);
            assert!(est >= truth, "p={p}: est {est} < truth {truth}");
            assert!(est < truth * 2, "p={p}: est {est} ≥ 2×truth {truth}");
        }
    }

    #[test]
    fn snapshot_matches_live_reads() {
        let h = Histogram::new();
        h.record_ns(7);
        h.record_ns(900);
        let s = h.snapshot();
        assert_eq!(s.count(), h.count());
        assert_eq!(s.min_ns(), h.min_ns());
        assert_eq!(s.max_ns(), h.max_ns());
        assert_eq!(s.quantile(0.5), h.quantile(0.5));
    }
}
