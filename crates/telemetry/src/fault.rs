//! The fault taxonomy.
//!
//! One label per way a packet can fail to decode normally on a hostile
//! wire, plus the supervision events that recover from them. Like
//! [`crate::Stage`], the set is closed and small: per-kind storage in the
//! registry is a fixed atomic-counter array indexed by
//! [`FaultKind::index`], so counting a fault is one relaxed increment.

/// A fault or recovery event, in ingest order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Frame rejected at ingest (bad magic/version, CRC mismatch,
    /// truncation) before any payload byte was interpreted.
    FrameRejected,
    /// Frame dropped as a duplicate of a buffered sequence number.
    Duplicate,
    /// Frame arrived after its slot had already been emitted.
    Late,
    /// Window concealed because its frame never arrived.
    ConcealedLoss,
    /// Window concealed because the DPCM loop lost synchronization.
    ConcealedDesync,
    /// Frame quarantined after poisoning its decoder (error or panic).
    Quarantined,
    /// Worker restarted with a fresh workspace after a panic.
    WorkerRestart,
    /// Solve stopped at the iteration budget without converging.
    DeadlineDegraded,
    /// Gap burst too large for per-slot concealment; cursor jumped.
    Resync,
}

impl FaultKind {
    /// Number of fault kinds (the registry's counter-array length).
    pub const COUNT: usize = 9;

    /// Every kind, in ingest order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::FrameRejected,
        FaultKind::Duplicate,
        FaultKind::Late,
        FaultKind::ConcealedLoss,
        FaultKind::ConcealedDesync,
        FaultKind::Quarantined,
        FaultKind::WorkerRestart,
        FaultKind::DeadlineDegraded,
        FaultKind::Resync,
    ];

    /// Dense index into per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus `kind` label and
    /// the JSON-Lines key.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FrameRejected => "frame_rejected",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Late => "late",
            FaultKind::ConcealedLoss => "concealed_loss",
            FaultKind::ConcealedDesync => "concealed_desync",
            FaultKind::Quarantined => "quarantined",
            FaultKind::WorkerRestart => "worker_restart",
            FaultKind::DeadlineDegraded => "deadline_degraded",
            FaultKind::Resync => "resync",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(FaultKind::ALL.len(), FaultKind::COUNT);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::COUNT);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
