//! The clinical alarm taxonomy.
//!
//! Labels for the streaming analysis layer (`cs-clinical`): beat classes
//! assigned by the morphology/RR classifier and the alarm conditions the
//! per-patient state machine tracks. Like [`crate::FaultKind`], both sets
//! are closed and small so the registry can back them with fixed
//! atomic-counter arrays — raising an alarm is one relaxed increment on
//! the decode hot path.

/// A beat class assigned by the streaming classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeatClass {
    /// A sinus beat: on-time RR, normal morphology.
    Normal,
    /// Premature ventricular contraction: early, wide, high-energy QRS.
    Pvc,
    /// Atrial premature contraction: early beat with normal QRS
    /// morphology.
    Apc,
}

impl BeatClass {
    /// Number of beat classes (the registry's counter-array length).
    pub const COUNT: usize = 3;

    /// Every class, in classifier-priority order.
    pub const ALL: [BeatClass; BeatClass::COUNT] =
        [BeatClass::Normal, BeatClass::Pvc, BeatClass::Apc];

    /// Dense index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus `class` label and
    /// the JSON-Lines key.
    pub fn name(self) -> &'static str {
        match self {
            BeatClass::Normal => "normal",
            BeatClass::Pvc => "pvc",
            BeatClass::Apc => "apc",
        }
    }
}

impl std::fmt::Display for BeatClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An alarm condition tracked by the per-patient state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlarmKind {
    /// A run of premature ventricular contractions in the recent beat
    /// history.
    PvcRun,
    /// Sustained heart rate above the tachycardia threshold.
    Tachycardia,
    /// Sustained heart rate below the bradycardia threshold.
    Bradycardia,
    /// No detected beat for longer than the asystole timeout.
    Asystole,
}

impl AlarmKind {
    /// Number of alarm kinds (the registry's counter-array length).
    pub const COUNT: usize = 4;

    /// Every kind, in escalation-review order.
    pub const ALL: [AlarmKind; AlarmKind::COUNT] = [
        AlarmKind::PvcRun,
        AlarmKind::Tachycardia,
        AlarmKind::Bradycardia,
        AlarmKind::Asystole,
    ];

    /// Dense index into per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus `kind` label and
    /// the JSON-Lines key.
    pub fn name(self) -> &'static str {
        match self {
            AlarmKind::PvcRun => "pvc_run",
            AlarmKind::Tachycardia => "tachycardia",
            AlarmKind::Bradycardia => "bradycardia",
            AlarmKind::Asystole => "asystole",
        }
    }
}

impl std::fmt::Display for AlarmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Escalation level of an active alarm. Ordered: comparisons follow
/// clinical urgency, so `max()` over conditions yields the patient's
/// headline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlarmSeverity {
    /// Condition not present (or cleared past its hysteresis).
    Normal,
    /// Condition present; onset hysteresis satisfied. Auto-clears.
    Warning,
    /// Condition sustained or extreme. Latched: clears only after the
    /// latch holdoff, never mid-episode.
    Critical,
}

impl AlarmSeverity {
    /// Stable snake_case name for exports.
    pub fn name(self) -> &'static str {
        match self {
            AlarmSeverity::Normal => "normal",
            AlarmSeverity::Warning => "warning",
            AlarmSeverity::Critical => "critical",
        }
    }
}

impl std::fmt::Display for AlarmSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, kind) in AlarmKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        for (i, class) in BeatClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        assert_eq!(AlarmKind::ALL.len(), AlarmKind::COUNT);
        assert_eq!(BeatClass::ALL.len(), BeatClass::COUNT);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = AlarmKind::ALL.iter().map(|k| k.name()).collect();
        names.extend(BeatClass::ALL.iter().map(|c| c.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn severity_orders_by_urgency() {
        assert!(AlarmSeverity::Normal < AlarmSeverity::Warning);
        assert!(AlarmSeverity::Warning < AlarmSeverity::Critical);
    }
}
