//! A minimal HTTP/1.1 scrape endpoint over `std::net::TcpListener`.
//!
//! Serves three read-only routes from a shared [`TelemetryRegistry`]:
//!
//! * `GET /metrics` — the Prometheus text exposition;
//! * `GET /healthz` — the aggregate SLO verdict as JSON: `200` while no
//!   patient is `Stalled`, `503` otherwise, so a stock liveness probe
//!   needs no body parsing;
//! * `GET /tracez` — recent journal traces as JSON (newest last).
//!
//! Threading model: one accept thread, connections handled **inline** —
//! scrapes arrive every few seconds from one or two collectors, so a
//! connection pool would be machinery without a workload. A slow or
//! stuck client is bounded by a 2 s socket read/write timeout *and* a
//! 2 s whole-head deadline (so a byte-at-a-time trickler cannot restart
//! the per-read clock) and can
//! delay, never wedge, the next scrape; the decode fleet itself never
//! blocks on the server because every route renders from lock-free
//! snapshots. Scrapes are themselves observed (per-endpoint counters and
//! a render-time histogram) — the exporter appears in its own output.

use crate::registry::TelemetryRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The scrape surfaces the server counts per-request hits against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrapeEndpoint {
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /tracez`.
    Tracez,
    /// Anything else (unknown path or method).
    Other,
}

impl ScrapeEndpoint {
    /// Number of endpoints (the registry's counter-array length).
    pub const COUNT: usize = 4;

    /// Every endpoint, in route order.
    pub const ALL: [ScrapeEndpoint; ScrapeEndpoint::COUNT] = [
        ScrapeEndpoint::Metrics,
        ScrapeEndpoint::Healthz,
        ScrapeEndpoint::Tracez,
        ScrapeEndpoint::Other,
    ];

    /// Dense index into per-endpoint arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (Prometheus `endpoint` label).
    pub fn name(self) -> &'static str {
        match self {
            ScrapeEndpoint::Metrics => "metrics",
            ScrapeEndpoint::Healthz => "healthz",
            ScrapeEndpoint::Tracez => "tracez",
            ScrapeEndpoint::Other => "other",
        }
    }
}

/// Per-connection socket timeout: bounds a single blocking read or write.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Total budget for receiving one request head. The per-read timeout
/// alone is not enough: a client trickling one byte per just-under-2 s
/// read would hold the inline accept loop for up to [`MAX_REQUEST_BYTES`]
/// reads (hours). Every read shrinks its timeout to the remaining
/// budget, so the whole head phase is bounded by this constant no matter
/// how the client paces its bytes.
const HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// Maximum request-head bytes read before the request is rejected.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running scrape server; shuts down (and joins its thread) on drop.
///
/// # Examples
///
/// ```
/// use cs_telemetry::{MetricsServer, TelemetryRegistry};
///
/// let registry = TelemetryRegistry::new();
/// let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
/// println!("scrape http://{}/metrics", server.local_addr());
/// drop(server); // stops accepting and joins
/// ```
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `registry` on a background thread.
    pub fn bind<A: ToSocketAddrs>(addr: A, registry: TelemetryRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cs-telemetry-serve".into())
            .spawn(move || accept_loop(listener, registry, thread_stop))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves the actual port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Called by
    /// `Drop`; explicit form for callers that want the join point.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: TelemetryRegistry, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Inline handling: see the module docs for why no pool.
        let _ = handle_connection(stream, &registry);
    }
}

fn handle_connection(mut stream: TcpStream, registry: &TelemetryRegistry) -> std::io::Result<()> {
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    let deadline = std::time::Instant::now() + HEAD_DEADLINE;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            return respond(&mut stream, 431, "text/plain; charset=utf-8", "request too large");
        }
        let now = std::time::Instant::now();
        if now >= deadline {
            return respond(&mut stream, 408, "text/plain; charset=utf-8", "request header timeout");
        }
        // Each read gets only the remaining head budget, so a client
        // trickling single bytes cannot restart the clock.
        stream.set_read_timeout(Some((deadline - now).min(IO_TIMEOUT)))?;
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return respond(
                    &mut stream,
                    408,
                    "text/plain; charset=utf-8",
                    "request header timeout",
                );
            }
            Err(_) => return Ok(()), // reset: drop silently
        }
    }

    let request_line = head
        .split(|&b| b == b'\r')
        .next()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    if method != "GET" {
        registry.record_scrape(ScrapeEndpoint::Other);
        return respond(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed");
    }
    match path {
        "/metrics" => {
            registry.record_scrape(ScrapeEndpoint::Metrics);
            let body = registry.prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/healthz" => {
            registry.record_scrape(ScrapeEndpoint::Healthz);
            let (status, body) = healthz_body(registry);
            respond(&mut stream, status, "application/json", &body)
        }
        "/tracez" => {
            registry.record_scrape(ScrapeEndpoint::Tracez);
            let body = crate::trace::tracez_json(&registry.journal().peek());
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => {
            registry.record_scrape(ScrapeEndpoint::Other);
            respond(&mut stream, 404, "text/plain; charset=utf-8", "not found")
        }
    }
}

/// The `/healthz` verdict: `(200, …)` while no patient is Stalled,
/// `(503, …)` otherwise.
pub fn healthz_body(registry: &TelemetryRegistry) -> (u16, String) {
    use std::fmt::Write as _;
    let slo = registry.slo_snapshot();
    let stalled = slo.any_stalled();
    let mut body = String::new();
    let _ = write!(
        body,
        "{{\"status\":\"{}\",\"patients\":{},\"healthy\":{},\"degraded\":{},\"stalled\":{}}}",
        if stalled { "stalled" } else { "ok" },
        slo.patients.len(),
        slo.count_in(crate::slo::HealthState::Healthy),
        slo.count_in(crate::slo::HealthState::Degraded),
        slo.count_in(crate::slo::HealthState::Stalled),
    );
    (if stalled { 503 } else { 200 }, body)
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_healthz_and_tracez() {
        let registry = TelemetryRegistry::new();
        registry.record_stage_ns(crate::Stage::FistaSolve, 1_000);
        registry.record_solve(crate::SolveTrace { seq: 9, ..Default::default() });
        let server = MetricsServer::bind("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("cs_stage_latency_ns_bucket{stage=\"fista_solve\""));

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));

        let (status, body) = get(addr, "/tracez");
        assert_eq!(status, 200);
        assert!(body.contains("\"seq\":9"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // The server observed itself: four scrapes across the endpoints.
        assert_eq!(registry.scrape_count(ScrapeEndpoint::Metrics), 1);
        assert_eq!(registry.scrape_count(ScrapeEndpoint::Healthz), 1);
        assert_eq!(registry.scrape_count(ScrapeEndpoint::Tracez), 1);
        assert_eq!(registry.scrape_count(ScrapeEndpoint::Other), 1);
        let text = registry.prometheus();
        assert!(text.contains("cs_telemetry_scrapes_total{endpoint=\"metrics\"} 1"));
    }

    #[test]
    fn non_get_is_rejected() {
        let server =
            MetricsServer::bind("127.0.0.1:0", TelemetryRegistry::new()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn partial_head_stall_is_bounded_by_the_head_deadline() {
        let server =
            MetricsServer::bind("127.0.0.1:0", TelemetryRegistry::new()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // One byte, then silence. Before the whole-head deadline this
        // held the inline accept loop up to IO_TIMEOUT per read for as
        // many reads as MAX_REQUEST_BYTES allows.
        stream.write_all(b"G").unwrap();
        let started = std::time::Instant::now();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        let elapsed = started.elapsed();
        assert!(
            elapsed < HEAD_DEADLINE + IO_TIMEOUT,
            "stalled head held the server {elapsed:?}"
        );
        // The accept loop is immediately serviceable again.
        let (status, _) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server =
            MetricsServer::bind("127.0.0.1:0", TelemetryRegistry::new()).unwrap();
        let addr = server.local_addr();
        drop(server);
        // The listener is gone: a fresh bind to the same port succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after shutdown: {rebind:?}");
    }
}
