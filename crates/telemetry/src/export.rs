//! Exporters: Prometheus text exposition and JSON-Lines snapshots.
//!
//! Both render a [`TelemetrySnapshot`], so an export never holds any lock
//! the recording paths contend on. The formats are hand-rolled — stage
//! names are a closed set of snake_case identifiers and every value is a
//! finite number, so no escaping machinery is needed and the crate stays
//! dependency-free.

use crate::histogram::{bucket_upper, HistogramSnapshot};
use crate::registry::{TelemetryRegistry, TelemetrySnapshot};
use std::fmt::Write as _;

/// The quantiles every exporter and report surface.
pub const REPORT_QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Per stage with at least one observation: a classic `histogram` family
/// (`cs_stage_latency_ns_bucket{stage=...,le=...}` with cumulative counts
/// at each occupied bucket's upper bound plus `+Inf`, `_sum`, `_count`)
/// and p50/p95/p99 gauges. Plus per-worker packet counters and journal
/// accounting gauges.
pub fn prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP cs_stage_latency_ns Per-stage pipeline latency in nanoseconds\n");
    out.push_str("# TYPE cs_stage_latency_ns histogram\n");
    for (stage, hist) in &snap.stages {
        if hist.count() == 0 {
            continue;
        }
        let mut cumulative = 0u64;
        for (i, &c) in hist.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let _ = writeln!(
                out,
                "cs_stage_latency_ns_bucket{{stage=\"{}\",le=\"{}\"}} {}",
                stage.name(),
                bucket_upper(i),
                cumulative
            );
        }
        let _ = writeln!(
            out,
            "cs_stage_latency_ns_bucket{{stage=\"{}\",le=\"+Inf\"}} {}",
            stage.name(),
            hist.count()
        );
        let _ = writeln!(
            out,
            "cs_stage_latency_ns_sum{{stage=\"{}\"}} {}",
            stage.name(),
            hist.sum_ns()
        );
        let _ = writeln!(
            out,
            "cs_stage_latency_ns_count{{stage=\"{}\"}} {}",
            stage.name(),
            hist.count()
        );
    }
    out.push_str("# HELP cs_stage_latency_quantile_ns Per-stage latency quantiles (log2-bucket resolution)\n");
    out.push_str("# TYPE cs_stage_latency_quantile_ns gauge\n");
    for (stage, hist) in &snap.stages {
        if hist.count() == 0 {
            continue;
        }
        for (p, label) in REPORT_QUANTILES {
            let _ = writeln!(
                out,
                "cs_stage_latency_quantile_ns{{stage=\"{}\",quantile=\"{}\"}} {}",
                stage.name(),
                label,
                hist.quantile(p)
            );
        }
    }
    // Batch occupancy only appears once a batched solve has run, so
    // sequential deployments export no empty family.
    if snap.batch_occupancy.count() > 0 {
        out.push_str("# HELP cs_batch_occupancy Lanes per batched FISTA solve\n");
        out.push_str("# TYPE cs_batch_occupancy histogram\n");
        let hist = &snap.batch_occupancy;
        let mut cumulative = 0u64;
        for (i, &c) in hist.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let _ = writeln!(
                out,
                "cs_batch_occupancy_bucket{{le=\"{}\"}} {}",
                bucket_upper(i),
                cumulative
            );
        }
        let _ = writeln!(out, "cs_batch_occupancy_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "cs_batch_occupancy_sum {}", hist.sum_ns());
        let _ = writeln!(out, "cs_batch_occupancy_count {}", hist.count());
    }
    out.push_str("# HELP cs_worker_packets_total Packets decoded per fleet worker\n");
    out.push_str("# TYPE cs_worker_packets_total counter\n");
    for (worker, &packets) in snap.worker_packets.iter().enumerate() {
        if packets > 0 {
            let _ = writeln!(
                out,
                "cs_worker_packets_total{{worker=\"{worker}\"}} {packets}"
            );
        }
    }
    out.push_str("# HELP cs_fault_total Fault and recovery events by kind\n");
    out.push_str("# TYPE cs_fault_total counter\n");
    // Every kind is always emitted, zero or not: a dashboard watching
    // quarantine rates must see an explicit 0, not a missing series.
    for (kind, count) in &snap.faults {
        let _ = writeln!(out, "cs_fault_total{{kind=\"{}\"}} {count}", kind.name());
    }
    out.push_str("# HELP cs_archive_total Durable-store operations by kind\n");
    out.push_str("# TYPE cs_archive_total counter\n");
    // Like faults: every op is emitted explicitly, zero or not, so a
    // dashboard watching torn-tail rates sees 0 rather than a gap.
    for (op, count) in &snap.archive_ops {
        let _ = writeln!(out, "cs_archive_total{{op=\"{}\"}} {count}", op.name());
    }
    out.push_str("# HELP cs_journal_traces Event-journal accounting\n");
    out.push_str("# TYPE cs_journal_traces gauge\n");
    let _ = writeln!(out, "cs_journal_traces{{state=\"buffered\"}} {}", snap.journal_len);
    let _ = writeln!(out, "cs_journal_traces{{state=\"pushed\"}} {}", snap.journal_pushed);
    let _ = writeln!(out, "cs_journal_traces{{state=\"dropped\"}} {}", snap.journal_dropped);
    out
}

fn stage_json(name: &str, hist: &HistogramSnapshot, out: &mut String) {
    let _ = write!(
        out,
        "{{\"stage\":\"{}\",\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{:.1}}}",
        name,
        hist.count(),
        hist.quantile(0.50),
        hist.quantile(0.95),
        hist.quantile(0.99),
        hist.min_ns(),
        hist.max_ns(),
        hist.mean_ns()
    );
}

/// Renders a snapshot as one JSON-Lines record (a single line, no
/// trailing newline). Stages with zero observations and trailing
/// zero-count workers are elided to keep lines scannable.
pub fn json_line(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"uptime_s\":{:.3},\"stages\":[", snap.uptime.as_secs_f64());
    let mut first = true;
    for (stage, hist) in &snap.stages {
        if hist.count() == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        stage_json(stage.name(), hist, &mut out);
    }
    out.push_str("],\"worker_packets\":[");
    let last_active = snap
        .worker_packets
        .iter()
        .rposition(|&p| p > 0)
        .map_or(0, |i| i + 1);
    for (i, &p) in snap.worker_packets[..last_active].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{p}");
    }
    out.push_str("],\"faults\":{");
    let mut first = true;
    for (kind, count) in &snap.faults {
        if *count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{count}", kind.name());
    }
    out.push_str("},\"archive\":{");
    let mut first = true;
    for (op, count) in &snap.archive_ops {
        if *count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{count}", op.name());
    }
    out.push('}');
    if snap.batch_occupancy.count() > 0 {
        let hist = &snap.batch_occupancy;
        let _ = write!(
            out,
            ",\"batch_occupancy\":{{\"count\":{},\"mean\":{:.2},\"max\":{}}}",
            hist.count(),
            hist.mean_ns(),
            hist.max_ns()
        );
    }
    let _ = write!(
        out,
        ",\"journal\":{{\"buffered\":{},\"pushed\":{},\"dropped\":{}}}}}",
        snap.journal_len, snap.journal_pushed, snap.journal_dropped
    );
    out
}

impl TelemetryRegistry {
    /// Snapshots the registry and renders it in Prometheus text format.
    pub fn prometheus(&self) -> String {
        prometheus(&self.snapshot())
    }

    /// Snapshots the registry and renders one JSON-Lines record.
    pub fn json_line(&self) -> String {
        json_line(&self.snapshot())
    }
}

/// A count-based cadence: `tick()` returns `true` on every `n`-th call.
/// Drives "emit a snapshot every N packets" loops without any clock.
///
/// # Examples
///
/// ```
/// use cs_telemetry::Every;
///
/// let mut every = Every::new(3);
/// let fires: Vec<bool> = (0..7).map(|_| every.tick()).collect();
/// assert_eq!(fires, [false, false, true, false, false, true, false]);
/// ```
#[derive(Debug, Clone)]
pub struct Every {
    n: u64,
    seen: u64,
}

impl Every {
    /// Fires on every `n`-th tick (`n` clamped to ≥ 1).
    pub fn new(n: u64) -> Self {
        Every { n: n.max(1), seen: 0 }
    }

    /// Counts one event; `true` when the cadence fires.
    pub fn tick(&mut self) -> bool {
        self.seen += 1;
        if self.seen >= self.n {
            self.seen = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    fn sample_registry() -> TelemetryRegistry {
        let reg = TelemetryRegistry::new();
        for ns in [100, 200, 400, 800_000] {
            reg.record_stage_ns(Stage::FistaSolve, ns);
        }
        reg.record_stage_ns(Stage::HuffmanDecode, 50);
        reg.record_worker_packet(0);
        reg.record_worker_packet(0);
        reg.record_worker_packet(2);
        reg
    }

    #[test]
    fn prometheus_emits_histogram_family_and_quantiles() {
        let text = sample_registry().prometheus();
        assert!(text.contains("# TYPE cs_stage_latency_ns histogram"));
        assert!(text.contains("cs_stage_latency_ns_bucket{stage=\"fista_solve\",le=\"+Inf\"} 4"));
        assert!(text.contains("cs_stage_latency_ns_count{stage=\"fista_solve\"} 4"));
        assert!(text.contains("cs_stage_latency_ns_sum{stage=\"fista_solve\"} 800700"));
        assert!(text.contains("cs_stage_latency_quantile_ns{stage=\"fista_solve\",quantile=\"0.99\"}"));
        assert!(text.contains("cs_worker_packets_total{worker=\"0\"} 2"));
        assert!(text.contains("cs_worker_packets_total{worker=\"2\"} 1"));
        // Stages never recorded are elided entirely.
        assert!(!text.contains("stage=\"packetize\""));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let text = sample_registry().prometheus();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("cs_stage_latency_ns_bucket{stage=\"fista_solve\""))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 4);
    }

    #[test]
    fn json_line_is_single_line_with_expected_fields() {
        let line = sample_registry().json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"stage\":\"fista_solve\",\"count\":4"));
        assert!(line.contains("\"worker_packets\":[2,0,1]"));
        assert!(line.contains("\"journal\":{\"buffered\":0,\"pushed\":0,\"dropped\":0}"));
        // Balanced braces — a cheap well-formedness check without a parser.
        let open = line.matches('{').count();
        let close = line.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn fault_counters_exported_in_both_formats() {
        let reg = sample_registry();
        reg.record_fault(crate::FaultKind::ConcealedLoss);
        reg.record_fault(crate::FaultKind::ConcealedLoss);
        reg.record_fault(crate::FaultKind::WorkerRestart);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_fault_total counter"));
        assert!(text.contains("cs_fault_total{kind=\"concealed_loss\"} 2"));
        assert!(text.contains("cs_fault_total{kind=\"worker_restart\"} 1"));
        // Zero-count kinds are still present as explicit zeroes.
        assert!(text.contains("cs_fault_total{kind=\"quarantined\"} 0"));
        let line = reg.json_line();
        assert!(line.contains("\"faults\":{\"concealed_loss\":2,\"worker_restart\":1}"));
    }

    #[test]
    fn archive_counters_exported_in_both_formats() {
        let reg = sample_registry();
        reg.record_archive_op(crate::ArchiveOp::Append);
        reg.record_archive_op(crate::ArchiveOp::Append);
        reg.record_archive_op(crate::ArchiveOp::TornTail);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_archive_total counter"));
        assert!(text.contains("cs_archive_total{op=\"append\"} 2"));
        assert!(text.contains("cs_archive_total{op=\"torn_tail\"} 1"));
        // Zero-count ops stay present as explicit zeroes.
        assert!(text.contains("cs_archive_total{op=\"compact\"} 0"));
        let line = reg.json_line();
        assert!(line.contains("\"archive\":{\"append\":2,\"torn_tail\":1}"));
    }

    #[test]
    fn batch_occupancy_exported_in_both_formats() {
        let reg = sample_registry();
        for lanes in [4, 4, 2, 8] {
            reg.record_batch_occupancy(lanes);
        }
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_batch_occupancy histogram"));
        assert!(text.contains("cs_batch_occupancy_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cs_batch_occupancy_count 4"));
        assert!(text.contains("cs_batch_occupancy_sum 18"));
        let line = reg.json_line();
        assert!(line.contains("\"batch_occupancy\":{\"count\":4,\"mean\":4.50,\"max\":8}"));
        let open = line.matches('{').count();
        let close = line.matches('}').count();
        assert_eq!(open, close);
        // Without any batched solve, neither format mentions occupancy.
        let off = sample_registry();
        assert!(!off.prometheus().contains("cs_batch_occupancy"));
        assert!(!off.json_line().contains("batch_occupancy"));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let reg = TelemetryRegistry::new();
        let line = reg.json_line();
        assert!(line.contains("\"stages\":[]"));
        assert!(line.contains("\"worker_packets\":[]"));
        let text = reg.prometheus();
        assert!(text.contains("cs_journal_traces{state=\"buffered\"} 0"));
    }
}
