//! Exporters: Prometheus text exposition and JSON-Lines snapshots.
//!
//! Both render a [`TelemetrySnapshot`], so an export never holds any lock
//! the recording paths contend on. The formats are hand-rolled and the
//! crate stays dependency-free; label values pass through
//! [`escape_label`] so the output stays spec-conformant even if a label
//! set ever grows a quote, backslash, or newline (today's sets are
//! closed snake_case identifiers, so escaping is a no-op in practice —
//! verified by `tests/prometheus_conformance.rs`).
//!
//! Rendering through [`TelemetryRegistry::prometheus`] /
//! [`TelemetryRegistry::json_line`] is itself observed: render time
//! lands in the `cs_exporter_render_seconds` histogram (one scrape
//! behind, since a render can't include its own duration).

use crate::histogram::{bucket_upper, HistogramSnapshot};
use crate::registry::{TelemetryRegistry, TelemetrySnapshot};
use crate::slo::HealthState;
use std::fmt::Write as _;
use std::time::Instant;

/// The quantiles every exporter and report surface.
pub const REPORT_QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double-quote, and line-feed must be backslash-escaped.
/// Returns the input unchanged (no allocation) when nothing needs
/// escaping — the common case for this crate's closed label sets.
pub fn escape_label(value: &str) -> std::borrow::Cow<'_, str> {
    if !value.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(value);
    }
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// Writes one classic histogram family (cumulative occupied buckets,
/// `+Inf`, `_sum`, `_count`) with an optional pre-rendered label prefix
/// like `patient="3",` and a bucket-value-to-`le` mapping.
fn write_histogram(
    out: &mut String,
    family: &str,
    labels: &str,
    hist: &HistogramSnapshot,
    le: impl Fn(u64) -> String,
    sum: impl Fn(u64) -> String,
) {
    let mut cumulative = 0u64;
    for (i, &c) in hist.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let _ = writeln!(
            out,
            "{family}_bucket{{{labels}le=\"{}\"}} {cumulative}",
            le(bucket_upper(i))
        );
    }
    let _ = writeln!(out, "{family}_bucket{{{labels}le=\"+Inf\"}} {}", hist.count());
    // A label-free series is written bare (`x_sum 3`), not as `x_sum{}`.
    let braces = |s: &str| {
        if labels.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", s.trim_end_matches(','))
        }
    };
    let _ = writeln!(out, "{family}_sum{} {}", braces(labels), sum(hist.sum_ns()));
    let _ = writeln!(out, "{family}_count{} {}", braces(labels), hist.count());
}

fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Per stage with at least one observation: a classic `histogram` family
/// (`cs_stage_latency_ns_bucket{stage=...,le=...}` with cumulative counts
/// at each occupied bucket's upper bound plus `+Inf`, `_sum`, `_count`)
/// and p50/p95/p99 gauges. Plus per-worker packet counters and journal
/// accounting gauges.
pub fn prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP cs_stage_latency_ns Per-stage pipeline latency in nanoseconds\n");
    out.push_str("# TYPE cs_stage_latency_ns histogram\n");
    for (stage, hist) in &snap.stages {
        if hist.count() == 0 {
            continue;
        }
        let labels = format!("stage=\"{}\",", escape_label(stage.name()));
        write_histogram(
            &mut out,
            "cs_stage_latency_ns",
            &labels,
            hist,
            |u| u.to_string(),
            |s| s.to_string(),
        );
    }
    out.push_str("# HELP cs_stage_latency_quantile_ns Per-stage latency quantiles (log2-bucket resolution)\n");
    out.push_str("# TYPE cs_stage_latency_quantile_ns gauge\n");
    for (stage, hist) in &snap.stages {
        if hist.count() == 0 {
            continue;
        }
        for (p, label) in REPORT_QUANTILES {
            let _ = writeln!(
                out,
                "cs_stage_latency_quantile_ns{{stage=\"{}\",quantile=\"{}\"}} {}",
                stage.name(),
                label,
                hist.quantile(p)
            );
        }
    }
    // Batch occupancy only appears once a batched solve has run, so
    // sequential deployments export no empty family.
    if snap.batch_occupancy.count() > 0 {
        out.push_str("# HELP cs_batch_occupancy Lanes per batched FISTA solve\n");
        out.push_str("# TYPE cs_batch_occupancy histogram\n");
        write_histogram(
            &mut out,
            "cs_batch_occupancy",
            "",
            &snap.batch_occupancy,
            |u| u.to_string(),
            |s| s.to_string(),
        );
    }
    // Per-mode solver iteration histograms: only modes that have solved
    // appear, so an unweighted deployment exports cold/warm only.
    if snap.solver_iterations.iter().any(|(_, h)| h.count() > 0) {
        out.push_str("# HELP cs_solver_iterations FISTA iterations per solve by solver mode\n");
        out.push_str("# TYPE cs_solver_iterations histogram\n");
        for (mode, hist) in &snap.solver_iterations {
            if hist.count() == 0 {
                continue;
            }
            let labels = format!("mode=\"{}\",", escape_label(mode.name()));
            write_histogram(
                &mut out,
                "cs_solver_iterations",
                &labels,
                hist,
                |u| u.to_string(),
                |s| s.to_string(),
            );
        }
    }
    out.push_str("# HELP cs_worker_packets_total Packets decoded per fleet worker\n");
    out.push_str("# TYPE cs_worker_packets_total counter\n");
    for (worker, &packets) in snap.worker_packets.iter().enumerate() {
        if packets > 0 {
            let _ = writeln!(
                out,
                "cs_worker_packets_total{{worker=\"{worker}\"}} {packets}"
            );
        }
    }
    out.push_str("# HELP cs_fault_total Fault and recovery events by kind\n");
    out.push_str("# TYPE cs_fault_total counter\n");
    // Every kind is always emitted, zero or not: a dashboard watching
    // quarantine rates must see an explicit 0, not a missing series.
    for (kind, count) in &snap.faults {
        let _ = writeln!(out, "cs_fault_total{{kind=\"{}\"}} {count}", kind.name());
    }
    out.push_str("# HELP cs_archive_total Durable-store operations by kind\n");
    out.push_str("# TYPE cs_archive_total counter\n");
    // Like faults: every op is emitted explicitly, zero or not, so a
    // dashboard watching torn-tail rates sees 0 rather than a gap.
    for (op, count) in &snap.archive_ops {
        let _ = writeln!(out, "cs_archive_total{{op=\"{}\"}} {count}", op.name());
    }
    // ── Clinical analysis families (only once the clinical layer has
    // classified a beat, scored a detection, or touched an alarm —
    // fleets without a clinical tap export nothing). ──
    let clinical_active = snap.beats.iter().any(|(_, c)| *c > 0)
        || snap.alarms.iter().any(|(_, c)| c.raised > 0)
        || snap.alarms_suppressed > 0
        || snap.qrs_true_positive + snap.qrs_false_positive + snap.qrs_false_negative > 0;
    if clinical_active {
        out.push_str("# HELP cs_beat_total Classified beats by class\n");
        out.push_str("# TYPE cs_beat_total counter\n");
        // Every class explicit, zero or not: a dashboard watching PVC
        // rates must see 0, not a missing series.
        for (class, count) in &snap.beats {
            let _ = writeln!(out, "cs_beat_total{{class=\"{}\"}} {count}", class.name());
        }
        out.push_str("# HELP cs_alarm_raised_total Alarm activations by kind\n");
        out.push_str("# TYPE cs_alarm_raised_total counter\n");
        for (kind, counts) in &snap.alarms {
            let _ = writeln!(
                out,
                "cs_alarm_raised_total{{kind=\"{}\"}} {}",
                kind.name(),
                counts.raised
            );
        }
        out.push_str("# HELP cs_alarm_cleared_total Alarm clearances by kind\n");
        out.push_str("# TYPE cs_alarm_cleared_total counter\n");
        for (kind, counts) in &snap.alarms {
            let _ = writeln!(
                out,
                "cs_alarm_cleared_total{{kind=\"{}\"}} {}",
                kind.name(),
                counts.cleared
            );
        }
        out.push_str("# HELP cs_alarm_active Currently active alarms by kind\n");
        out.push_str("# TYPE cs_alarm_active gauge\n");
        for (kind, counts) in &snap.alarms {
            let _ = writeln!(
                out,
                "cs_alarm_active{{kind=\"{}\"}} {}",
                kind.name(),
                counts.active
            );
        }
        out.push_str(
            "# HELP cs_alarm_suppressed_total Alarm evaluations suppressed over concealed windows\n",
        );
        out.push_str("# TYPE cs_alarm_suppressed_total counter\n");
        let _ = writeln!(out, "cs_alarm_suppressed_total {}", snap.alarms_suppressed);
        // QRS score gauges appear only once their denominators are
        // non-zero — a ratio over nothing is a lie, not a zero.
        if let Some(sens) = snap.qrs_sensitivity() {
            out.push_str(
                "# HELP cs_qrs_sensitivity Streaming QRS detection sensitivity vs annotations\n",
            );
            out.push_str("# TYPE cs_qrs_sensitivity gauge\n");
            let _ = writeln!(out, "cs_qrs_sensitivity {sens}");
        }
        if let Some(ppv) = snap.qrs_ppv() {
            out.push_str(
                "# HELP cs_qrs_ppv Streaming QRS detection positive predictive value vs annotations\n",
            );
            out.push_str("# TYPE cs_qrs_ppv gauge\n");
            let _ = writeln!(out, "cs_qrs_ppv {ppv}");
        }
    }
    out.push_str("# HELP cs_journal_traces Event-journal accounting\n");
    out.push_str("# TYPE cs_journal_traces gauge\n");
    let _ = writeln!(out, "cs_journal_traces{{state=\"buffered\"}} {}", snap.journal_len);
    let _ = writeln!(out, "cs_journal_traces{{state=\"pushed\"}} {}", snap.journal_pushed);
    let _ = writeln!(out, "cs_journal_traces{{state=\"dropped\"}} {}", snap.journal_dropped);
    // ── End-to-end tracing and SLO families (active patients only). ──
    if !snap.e2e.is_empty() {
        out.push_str(
            "# HELP cs_e2e_latency_seconds Capture-to-emit latency per patient\n",
        );
        out.push_str("# TYPE cs_e2e_latency_seconds histogram\n");
        for (patient, hist) in &snap.e2e {
            let labels = format!("patient=\"{patient}\",");
            write_histogram(&mut out, "cs_e2e_latency_seconds", &labels, hist, seconds, seconds);
        }
    }
    if !snap.slo.patients.is_empty() {
        out.push_str("# HELP cs_deadline_miss_total Emissions that exceeded the end-to-end deadline budget\n");
        out.push_str("# TYPE cs_deadline_miss_total counter\n");
        for p in &snap.slo.patients {
            let _ = writeln!(
                out,
                "cs_deadline_miss_total{{patient=\"{}\"}} {}",
                p.patient, p.deadline_misses
            );
        }
        out.push_str("# HELP cs_lane_freshness_seconds Age of the newest emission per patient lane\n");
        out.push_str("# TYPE cs_lane_freshness_seconds gauge\n");
        for p in &snap.slo.patients {
            for lane in &p.lanes {
                let _ = writeln!(
                    out,
                    "cs_lane_freshness_seconds{{patient=\"{}\",lane=\"{}\"}} {}",
                    p.patient,
                    lane.lane,
                    lane.age_ns as f64 / 1e9
                );
            }
        }
        out.push_str("# HELP cs_lane_newest_seq Newest emitted sequence number per patient lane\n");
        out.push_str("# TYPE cs_lane_newest_seq gauge\n");
        for p in &snap.slo.patients {
            for lane in &p.lanes {
                let _ = writeln!(
                    out,
                    "cs_lane_newest_seq{{patient=\"{}\",lane=\"{}\"}} {}",
                    p.patient, lane.lane, lane.newest_seq
                );
            }
        }
        out.push_str("# HELP cs_slo_burn_rate Error-budget burn rate per patient and window\n");
        out.push_str("# TYPE cs_slo_burn_rate gauge\n");
        for p in &snap.slo.patients {
            let _ = writeln!(
                out,
                "cs_slo_burn_rate{{patient=\"{}\",window=\"fast\"}} {}",
                p.patient, p.fast_burn
            );
            let _ = writeln!(
                out,
                "cs_slo_burn_rate{{patient=\"{}\",window=\"slow\"}} {}",
                p.patient, p.slow_burn
            );
        }
        out.push_str("# HELP cs_patient_health Derived SLO health (one-hot over states)\n");
        out.push_str("# TYPE cs_patient_health gauge\n");
        for p in &snap.slo.patients {
            for state in HealthState::ALL {
                let _ = writeln!(
                    out,
                    "cs_patient_health{{patient=\"{}\",state=\"{}\"}} {}",
                    p.patient,
                    escape_label(state.name()),
                    u64::from(p.health == state)
                );
            }
        }
    }
    // ── Socket-ingest lifecycle (only once the ingest layer has seen a
    // session or shed one — fleets fed in-process export nothing). ──
    if snap.ingest_accepted > 0 || snap.ingest_shed > 0 {
        out.push_str("# HELP cs_ingest_sessions Live ingest sessions by lifecycle state\n");
        out.push_str("# TYPE cs_ingest_sessions gauge\n");
        // Every state explicit, zero or not: a dashboard watching drain
        // progress needs the 0, not a missing series.
        for (state, count) in &snap.ingest_sessions {
            let _ = writeln!(
                out,
                "cs_ingest_sessions{{state=\"{}\"}} {count}",
                escape_label(state.name())
            );
        }
        out.push_str("# HELP cs_ingest_sessions_total Sessions ever admitted to handshaking\n");
        out.push_str("# TYPE cs_ingest_sessions_total counter\n");
        let _ = writeln!(out, "cs_ingest_sessions_total {}", snap.ingest_accepted);
        out.push_str("# HELP cs_ingest_shed_total Sessions refused by the admission controller\n");
        out.push_str("# TYPE cs_ingest_shed_total counter\n");
        let _ = writeln!(out, "cs_ingest_shed_total {}", snap.ingest_shed);
        out.push_str("# HELP cs_ingest_disconnect_total Session terminations by reason\n");
        out.push_str("# TYPE cs_ingest_disconnect_total counter\n");
        for (reason, count) in &snap.ingest_disconnects {
            let _ = writeln!(
                out,
                "cs_ingest_disconnect_total{{reason=\"{}\"}} {count}",
                escape_label(reason.name())
            );
        }
        out.push_str("# HELP cs_ingest_frames_total Frames accepted off ingest sockets\n");
        out.push_str("# TYPE cs_ingest_frames_total counter\n");
        let _ = writeln!(out, "cs_ingest_frames_total {}", snap.ingest_frames);
        out.push_str("# HELP cs_ingest_bytes_total Wire bytes accepted off ingest sockets\n");
        out.push_str("# TYPE cs_ingest_bytes_total counter\n");
        let _ = writeln!(out, "cs_ingest_bytes_total {}", snap.ingest_bytes);
    }
    // ── Telemetry self-observation: the exporter in its own output. ──
    out.push_str("# HELP cs_telemetry_scrapes_total HTTP scrape requests by endpoint\n");
    out.push_str("# TYPE cs_telemetry_scrapes_total counter\n");
    // Zeros included: a dashboard alerting on scrape starvation needs an
    // explicit 0 series from the first render.
    for (endpoint, count) in &snap.scrapes {
        let _ = writeln!(
            out,
            "cs_telemetry_scrapes_total{{endpoint=\"{}\"}} {count}",
            escape_label(endpoint.name())
        );
    }
    if snap.render_ns.count() > 0 {
        out.push_str("# HELP cs_exporter_render_seconds Exporter render time (lags the current render by one scrape)\n");
        out.push_str("# TYPE cs_exporter_render_seconds histogram\n");
        write_histogram(&mut out, "cs_exporter_render_seconds", "", &snap.render_ns, seconds, seconds);
    }
    out
}

fn stage_json(name: &str, hist: &HistogramSnapshot, out: &mut String) {
    let _ = write!(
        out,
        "{{\"stage\":\"{}\",\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{:.1}}}",
        name,
        hist.count(),
        hist.quantile(0.50),
        hist.quantile(0.95),
        hist.quantile(0.99),
        hist.min_ns(),
        hist.max_ns(),
        hist.mean_ns()
    );
}

/// Renders a snapshot as one JSON-Lines record (a single line, no
/// trailing newline). Stages with zero observations and trailing
/// zero-count workers are elided to keep lines scannable.
///
/// Record schema (stable keys, in order): `uptime_s` (seconds since
/// registry creation), `ts_unix_s` (absolute wall-clock seconds since
/// the Unix epoch at snapshot time), `stages`, `worker_packets`,
/// `faults`, `archive`, optional `batch_occupancy`, optional
/// `solver_iterations` (per-mode iteration stats), `e2e` (per-patient
/// end-to-end latency), `slo` (per-patient health, freshness, burn
/// rates, lane watermarks), optional `ingest` (socket-session lifecycle,
/// present once a session was admitted or shed), optional `clinical`
/// (beat classes, alarm counters, concealment suppressions, QRS score —
/// present once the clinical layer has recorded anything), `scrapes`
/// (zero counts elided), optional `render` (exporter self-observation),
/// `journal`.
pub fn json_line(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"uptime_s\":{:.3},\"ts_unix_s\":{:.3},\"stages\":[",
        snap.uptime.as_secs_f64(),
        snap.unix_time_s
    );
    let mut first = true;
    for (stage, hist) in &snap.stages {
        if hist.count() == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        stage_json(stage.name(), hist, &mut out);
    }
    out.push_str("],\"worker_packets\":[");
    let last_active = snap
        .worker_packets
        .iter()
        .rposition(|&p| p > 0)
        .map_or(0, |i| i + 1);
    for (i, &p) in snap.worker_packets[..last_active].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{p}");
    }
    out.push_str("],\"faults\":{");
    let mut first = true;
    for (kind, count) in &snap.faults {
        if *count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{count}", kind.name());
    }
    out.push_str("},\"archive\":{");
    let mut first = true;
    for (op, count) in &snap.archive_ops {
        if *count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{count}", op.name());
    }
    out.push('}');
    if snap.batch_occupancy.count() > 0 {
        let hist = &snap.batch_occupancy;
        let _ = write!(
            out,
            ",\"batch_occupancy\":{{\"count\":{},\"mean\":{:.2},\"max\":{}}}",
            hist.count(),
            hist.mean_ns(),
            hist.max_ns()
        );
    }
    if snap.solver_iterations.iter().any(|(_, h)| h.count() > 0) {
        out.push_str(",\"solver_iterations\":{");
        let mut first = true;
        for (mode, hist) in &snap.solver_iterations {
            if hist.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{}}}",
                mode.name(),
                hist.count(),
                hist.mean_ns(),
                hist.quantile(0.50),
                hist.quantile(0.95)
            );
        }
        out.push('}');
    }
    out.push_str(",\"e2e\":[");
    for (i, (patient, hist)) in snap.e2e.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"patient\":{},\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            patient,
            hist.count(),
            hist.quantile(0.50),
            hist.quantile(0.95),
            hist.quantile(0.99),
            hist.max_ns()
        );
    }
    out.push_str("],\"slo\":[");
    for (i, p) in snap.slo.patients.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"patient\":{},\"health\":\"{}\",\"emits\":{},\"deadline_misses\":{},\"freshness_s\":{:.3},\"fast_burn\":{:.3},\"slow_burn\":{:.3},\"lanes\":[",
            p.patient,
            p.health.name(),
            p.emits,
            p.deadline_misses,
            p.freshness_ns as f64 / 1e9,
            p.fast_burn,
            p.slow_burn
        );
        for (j, lane) in p.lanes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"lane\":{},\"newest_seq\":{},\"age_s\":{:.3}}}",
                lane.lane,
                lane.newest_seq,
                lane.age_ns as f64 / 1e9
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    if snap.ingest_accepted > 0 || snap.ingest_shed > 0 {
        let _ = write!(
            out,
            ",\"ingest\":{{\"accepted\":{},\"shed\":{},\"frames\":{},\"bytes\":{},\"sessions\":{{",
            snap.ingest_accepted, snap.ingest_shed, snap.ingest_frames, snap.ingest_bytes
        );
        let mut first = true;
        for (state, count) in &snap.ingest_sessions {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{count}", state.name());
        }
        out.push_str("},\"disconnects\":{");
        let mut first = true;
        for (reason, count) in &snap.ingest_disconnects {
            if *count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{count}", reason.name());
        }
        out.push_str("}}");
    }
    let clinical_active = snap.beats.iter().any(|(_, c)| *c > 0)
        || snap.alarms.iter().any(|(_, c)| c.raised > 0)
        || snap.alarms_suppressed > 0
        || snap.qrs_true_positive + snap.qrs_false_positive + snap.qrs_false_negative > 0;
    if clinical_active {
        out.push_str(",\"clinical\":{\"beats\":{");
        let mut first = true;
        for (class, count) in &snap.beats {
            if *count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{count}", class.name());
        }
        out.push_str("},\"alarms\":{");
        let mut first = true;
        for (kind, counts) in &snap.alarms {
            if counts.raised == 0 && counts.active == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"raised\":{},\"cleared\":{},\"active\":{}}}",
                kind.name(),
                counts.raised,
                counts.cleared,
                counts.active
            );
        }
        let _ = write!(out, "}},\"suppressed\":{}", snap.alarms_suppressed);
        let _ = write!(
            out,
            ",\"qrs\":{{\"tp\":{},\"fp\":{},\"fn\":{}",
            snap.qrs_true_positive, snap.qrs_false_positive, snap.qrs_false_negative
        );
        if let Some(sens) = snap.qrs_sensitivity() {
            let _ = write!(out, ",\"sensitivity\":{sens:.4}");
        }
        if let Some(ppv) = snap.qrs_ppv() {
            let _ = write!(out, ",\"ppv\":{ppv:.4}");
        }
        out.push_str("}}");
    }
    out.push_str(",\"scrapes\":{");
    let mut first = true;
    for (endpoint, count) in &snap.scrapes {
        if *count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{count}", endpoint.name());
    }
    out.push('}');
    if snap.render_ns.count() > 0 {
        let _ = write!(
            out,
            ",\"render\":{{\"count\":{},\"p50_ns\":{},\"max_ns\":{}}}",
            snap.render_ns.count(),
            snap.render_ns.quantile(0.50),
            snap.render_ns.max_ns()
        );
    }
    let _ = write!(
        out,
        ",\"journal\":{{\"buffered\":{},\"pushed\":{},\"dropped\":{}}}}}",
        snap.journal_len, snap.journal_pushed, snap.journal_dropped
    );
    out
}

impl TelemetryRegistry {
    fn timed_render(&self, render: impl FnOnce(&TelemetrySnapshot) -> String) -> String {
        let start = self.is_enabled().then(Instant::now);
        let out = render(&self.snapshot());
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.record_render_ns(ns);
        }
        out
    }

    /// Snapshots the registry and renders it in Prometheus text format.
    /// The render itself is timed into `cs_exporter_render_seconds`
    /// (visible from the *next* render onward).
    pub fn prometheus(&self) -> String {
        self.timed_render(prometheus)
    }

    /// Snapshots the registry and renders one JSON-Lines record; timed
    /// like [`TelemetryRegistry::prometheus`].
    pub fn json_line(&self) -> String {
        self.timed_render(json_line)
    }
}

/// A count-based cadence: `tick()` returns `true` on every `n`-th call.
/// Drives "emit a snapshot every N packets" loops without any clock.
///
/// # Examples
///
/// ```
/// use cs_telemetry::Every;
///
/// let mut every = Every::new(3);
/// let fires: Vec<bool> = (0..7).map(|_| every.tick()).collect();
/// assert_eq!(fires, [false, false, true, false, false, true, false]);
/// ```
#[derive(Debug, Clone)]
pub struct Every {
    n: u64,
    seen: u64,
}

impl Every {
    /// Fires on every `n`-th tick (`n` clamped to ≥ 1).
    pub fn new(n: u64) -> Self {
        Every { n: n.max(1), seen: 0 }
    }

    /// Counts one event; `true` when the cadence fires.
    pub fn tick(&mut self) -> bool {
        self.seen += 1;
        if self.seen >= self.n {
            self.seen = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    fn sample_registry() -> TelemetryRegistry {
        let reg = TelemetryRegistry::new();
        for ns in [100, 200, 400, 800_000] {
            reg.record_stage_ns(Stage::FistaSolve, ns);
        }
        reg.record_stage_ns(Stage::HuffmanDecode, 50);
        reg.record_worker_packet(0);
        reg.record_worker_packet(0);
        reg.record_worker_packet(2);
        reg
    }

    #[test]
    fn prometheus_emits_histogram_family_and_quantiles() {
        let text = sample_registry().prometheus();
        assert!(text.contains("# TYPE cs_stage_latency_ns histogram"));
        assert!(text.contains("cs_stage_latency_ns_bucket{stage=\"fista_solve\",le=\"+Inf\"} 4"));
        assert!(text.contains("cs_stage_latency_ns_count{stage=\"fista_solve\"} 4"));
        assert!(text.contains("cs_stage_latency_ns_sum{stage=\"fista_solve\"} 800700"));
        assert!(text.contains("cs_stage_latency_quantile_ns{stage=\"fista_solve\",quantile=\"0.99\"}"));
        assert!(text.contains("cs_worker_packets_total{worker=\"0\"} 2"));
        assert!(text.contains("cs_worker_packets_total{worker=\"2\"} 1"));
        // Stages never recorded are elided entirely.
        assert!(!text.contains("stage=\"packetize\""));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let text = sample_registry().prometheus();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("cs_stage_latency_ns_bucket{stage=\"fista_solve\""))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 4);
    }

    #[test]
    fn json_line_is_single_line_with_expected_fields() {
        let line = sample_registry().json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"stage\":\"fista_solve\",\"count\":4"));
        assert!(line.contains("\"worker_packets\":[2,0,1]"));
        assert!(line.contains("\"journal\":{\"buffered\":0,\"pushed\":0,\"dropped\":0}"));
        // Balanced braces — a cheap well-formedness check without a parser.
        let open = line.matches('{').count();
        let close = line.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn fault_counters_exported_in_both_formats() {
        let reg = sample_registry();
        reg.record_fault(crate::FaultKind::ConcealedLoss);
        reg.record_fault(crate::FaultKind::ConcealedLoss);
        reg.record_fault(crate::FaultKind::WorkerRestart);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_fault_total counter"));
        assert!(text.contains("cs_fault_total{kind=\"concealed_loss\"} 2"));
        assert!(text.contains("cs_fault_total{kind=\"worker_restart\"} 1"));
        // Zero-count kinds are still present as explicit zeroes.
        assert!(text.contains("cs_fault_total{kind=\"quarantined\"} 0"));
        let line = reg.json_line();
        assert!(line.contains("\"faults\":{\"concealed_loss\":2,\"worker_restart\":1}"));
    }

    #[test]
    fn archive_counters_exported_in_both_formats() {
        let reg = sample_registry();
        reg.record_archive_op(crate::ArchiveOp::Append);
        reg.record_archive_op(crate::ArchiveOp::Append);
        reg.record_archive_op(crate::ArchiveOp::TornTail);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_archive_total counter"));
        assert!(text.contains("cs_archive_total{op=\"append\"} 2"));
        assert!(text.contains("cs_archive_total{op=\"torn_tail\"} 1"));
        // Zero-count ops stay present as explicit zeroes.
        assert!(text.contains("cs_archive_total{op=\"compact\"} 0"));
        let line = reg.json_line();
        assert!(line.contains("\"archive\":{\"append\":2,\"torn_tail\":1}"));
    }

    #[test]
    fn batch_occupancy_exported_in_both_formats() {
        let reg = sample_registry();
        for lanes in [4, 4, 2, 8] {
            reg.record_batch_occupancy(lanes);
        }
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_batch_occupancy histogram"));
        assert!(text.contains("cs_batch_occupancy_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cs_batch_occupancy_count 4"));
        assert!(text.contains("cs_batch_occupancy_sum 18"));
        let line = reg.json_line();
        assert!(line.contains("\"batch_occupancy\":{\"count\":4,\"mean\":4.50,\"max\":8}"));
        let open = line.matches('{').count();
        let close = line.matches('}').count();
        assert_eq!(open, close);
        // Without any batched solve, neither format mentions occupancy.
        let off = sample_registry();
        assert!(!off.prometheus().contains("cs_batch_occupancy"));
        assert!(!off.json_line().contains("batch_occupancy"));
    }

    #[test]
    fn solver_iterations_exported_in_both_formats() {
        let reg = sample_registry();
        reg.record_solver_iterations(crate::SolverMode::Warm, 200);
        reg.record_solver_iterations(crate::SolverMode::Warm, 300);
        reg.record_solver_iterations(crate::SolverMode::Weighted, 120);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_solver_iterations histogram"));
        assert!(text.contains("cs_solver_iterations_bucket{mode=\"warm\",le=\"+Inf\"} 2"));
        assert!(text.contains("cs_solver_iterations_count{mode=\"warm\"} 2"));
        assert!(text.contains("cs_solver_iterations_sum{mode=\"warm\"} 500"));
        assert!(text.contains("cs_solver_iterations_count{mode=\"weighted\"} 1"));
        // Modes that never solved export no series.
        assert!(!text.contains("mode=\"cold\""));
        assert!(!text.contains("mode=\"block\""));
        let line = reg.json_line();
        assert!(line.contains("\"solver_iterations\":{\"warm\":{\"count\":2,\"mean\":250.0,"));
        assert!(line.contains("\"weighted\":{\"count\":1,\"mean\":120.0,"));
        let open = line.matches('{').count();
        let close = line.matches('}').count();
        assert_eq!(open, close);
        // Without any solves, neither format mentions the family.
        let off = sample_registry();
        assert!(!off.prometheus().contains("cs_solver_iterations"));
        assert!(!off.json_line().contains("solver_iterations"));
    }

    #[test]
    fn ingest_families_exported_in_both_formats() {
        let reg = sample_registry();
        // An inactive ingest layer exports nothing.
        assert!(!reg.prometheus().contains("cs_ingest_"));
        assert!(!reg.json_line().contains("\"ingest\""));

        use crate::{IngestDisconnect, IngestState};
        reg.ingest_session_enter(IngestState::Handshaking);
        reg.ingest_session_exit(IngestState::Handshaking);
        reg.ingest_session_enter(IngestState::Streaming);
        reg.record_ingest_shed();
        reg.record_ingest_disconnect(IngestDisconnect::SlowLoris);
        reg.record_ingest_frames(7, 700);

        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_ingest_sessions gauge"));
        assert!(text.contains("cs_ingest_sessions{state=\"handshaking\"} 0"));
        assert!(text.contains("cs_ingest_sessions{state=\"streaming\"} 1"));
        assert!(text.contains("cs_ingest_sessions{state=\"draining\"} 0"));
        assert!(text.contains("cs_ingest_sessions_total 1"));
        assert!(text.contains("cs_ingest_shed_total 1"));
        assert!(text.contains("cs_ingest_disconnect_total{reason=\"slow_loris\"} 1"));
        assert!(text.contains("cs_ingest_disconnect_total{reason=\"client_closed\"} 0"));
        assert!(text.contains("cs_ingest_frames_total 7"));
        assert!(text.contains("cs_ingest_bytes_total 700"));

        let line = reg.json_line();
        assert!(line.contains("\"ingest\":{\"accepted\":1,\"shed\":1,\"frames\":7,\"bytes\":700,"));
        assert!(line.contains("\"sessions\":{\"handshaking\":0,\"streaming\":1,\"draining\":0}"));
        assert!(line.contains("\"disconnects\":{\"slow_loris\":1}"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());

        // The gauge saturates instead of wrapping on an unpaired exit.
        reg.ingest_session_exit(IngestState::Draining);
        assert_eq!(reg.ingest_sessions(IngestState::Draining), 0);
    }

    #[test]
    fn clinical_families_exported_in_both_formats() {
        let reg = sample_registry();
        // Without clinical activity, neither format mentions the layer.
        assert!(!reg.prometheus().contains("cs_beat_total"));
        assert!(!reg.prometheus().contains("cs_alarm_"));
        assert!(!reg.json_line().contains("\"clinical\""));

        use crate::{AlarmKind, BeatClass};
        reg.record_beat(BeatClass::Normal);
        reg.record_beat(BeatClass::Normal);
        reg.record_beat(BeatClass::Pvc);
        reg.record_alarm_raised(AlarmKind::PvcRun);
        reg.record_alarm_raised(AlarmKind::Tachycardia);
        reg.record_alarm_cleared(AlarmKind::Tachycardia);
        reg.record_alarm_suppressed();
        reg.record_qrs_score(19, 1, 1);

        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_beat_total counter"));
        assert!(text.contains("cs_beat_total{class=\"normal\"} 2"));
        assert!(text.contains("cs_beat_total{class=\"pvc\"} 1"));
        // Zero-count classes stay present as explicit zeroes.
        assert!(text.contains("cs_beat_total{class=\"apc\"} 0"));
        assert!(text.contains("cs_alarm_raised_total{kind=\"pvc_run\"} 1"));
        assert!(text.contains("cs_alarm_raised_total{kind=\"asystole\"} 0"));
        assert!(text.contains("cs_alarm_cleared_total{kind=\"tachycardia\"} 1"));
        assert!(text.contains("cs_alarm_active{kind=\"pvc_run\"} 1"));
        assert!(text.contains("cs_alarm_active{kind=\"tachycardia\"} 0"));
        assert!(text.contains("cs_alarm_suppressed_total 1"));
        assert!(text.contains("cs_qrs_sensitivity 0.95"));
        assert!(text.contains("cs_qrs_ppv 0.95"));

        let line = reg.json_line();
        assert!(line.contains("\"clinical\":{\"beats\":{\"normal\":2,\"pvc\":1}"));
        assert!(line.contains(
            "\"alarms\":{\"pvc_run\":{\"raised\":1,\"cleared\":0,\"active\":1},\
             \"tachycardia\":{\"raised\":1,\"cleared\":1,\"active\":0}}"
        ));
        assert!(line.contains("\"suppressed\":1"));
        assert!(line.contains(
            "\"qrs\":{\"tp\":19,\"fp\":1,\"fn\":1,\"sensitivity\":0.9500,\"ppv\":0.9500}"
        ));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn qrs_gauges_absent_until_denominators_exist() {
        let reg = sample_registry();
        // Only false positives: PPV has a denominator, sensitivity not.
        reg.record_qrs_score(0, 3, 0);
        let text = reg.prometheus();
        assert!(!text.contains("cs_qrs_sensitivity"));
        assert!(text.contains("cs_qrs_ppv 0"));
        let line = reg.json_line();
        assert!(line.contains("\"qrs\":{\"tp\":0,\"fp\":3,\"fn\":0,\"ppv\":0.0000}"));
        assert!(!line.contains("sensitivity"));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let reg = TelemetryRegistry::new();
        let line = reg.json_line();
        assert!(line.contains("\"stages\":[]"));
        assert!(line.contains("\"worker_packets\":[]"));
        assert!(line.contains("\"e2e\":[]"));
        assert!(line.contains("\"slo\":[]"));
        let text = reg.prometheus();
        assert!(text.contains("cs_journal_traces{state=\"buffered\"} 0"));
        // No patient has emitted: the e2e/SLO families stay absent, the
        // self-observation counters are present as explicit zeros.
        assert!(!text.contains("cs_e2e_latency_seconds"));
        assert!(!text.contains("cs_patient_health"));
        assert!(text.contains("cs_telemetry_scrapes_total{endpoint=\"metrics\"} 0"));
    }

    #[test]
    fn e2e_and_slo_families_exported_in_both_formats() {
        let reg = TelemetryRegistry::with_slo_config(crate::SloConfig {
            deadline: std::time::Duration::from_millis(2),
            ..Default::default()
        });
        let ctx = crate::TraceContext::new(5, 1, 3, reg.now_ns());
        reg.record_emit(&ctx).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let stale = crate::TraceContext::new(5, 1, 4, 0);
        reg.record_emit(&stale).unwrap();

        let text = reg.prometheus();
        assert!(text.contains("# TYPE cs_e2e_latency_seconds histogram"));
        assert!(text.contains("cs_e2e_latency_seconds_count{patient=\"5\"} 2"));
        assert!(text.contains("cs_e2e_latency_seconds_bucket{patient=\"5\",le=\"+Inf\"} 2"));
        assert!(text.contains("cs_deadline_miss_total{patient=\"5\"} 1"));
        assert!(text.contains("cs_lane_freshness_seconds{patient=\"5\",lane=\"1\"}"));
        assert!(text.contains("cs_lane_newest_seq{patient=\"5\",lane=\"1\"} 4"));
        assert!(text.contains("cs_slo_burn_rate{patient=\"5\",window=\"fast\"}"));
        assert!(text.contains("cs_slo_burn_rate{patient=\"5\",window=\"slow\"}"));
        // One miss out of two emits burns both windows far past the
        // threshold: the one-hot health gauge reads Degraded.
        assert!(text.contains("cs_patient_health{patient=\"5\",state=\"healthy\"} 0"));
        assert!(text.contains("cs_patient_health{patient=\"5\",state=\"degraded\"} 1"));
        assert!(text.contains("cs_patient_health{patient=\"5\",state=\"stalled\"} 0"));

        let line = reg.json_line();
        assert!(line.contains("\"ts_unix_s\":"));
        assert!(line.contains("\"e2e\":[{\"patient\":5,\"count\":2"));
        assert!(line.contains("\"slo\":[{\"patient\":5,\"health\":\"degraded\""));
        assert!(line.contains("\"deadline_misses\":1"));
        assert!(line.contains("\"lanes\":[{\"lane\":1,\"newest_seq\":4"));
        assert!(!line.contains('\n'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn render_time_is_self_observed_one_scrape_behind() {
        let reg = sample_registry();
        let first = reg.prometheus();
        assert!(
            !first.contains("cs_exporter_render_seconds"),
            "first render cannot contain its own duration"
        );
        let second = reg.prometheus();
        assert!(second.contains("# TYPE cs_exporter_render_seconds histogram"));
        assert!(second.contains("cs_exporter_render_seconds_count 1"));
        assert_eq!(reg.render_times().count(), 2);
        let line = reg.json_line();
        assert!(line.contains("\"render\":{\"count\":2"));
    }

    #[test]
    fn label_escaping_covers_the_spec_characters() {
        assert_eq!(escape_label("fista_solve"), "fista_solve");
        assert!(matches!(
            escape_label("plain"),
            std::borrow::Cow::Borrowed(_)
        ));
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }
}
