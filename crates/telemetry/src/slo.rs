//! The per-patient SLO engine: freshness watermarks, deadline budgets,
//! and multi-window burn rates.
//!
//! A monitoring fleet's acceptance metric is not "how fast is the
//! solver" but "is patient P's reconstructed signal fresh, and are we
//! inside the latency budget at the target percentile". This module
//! keeps, per patient:
//!
//! * **freshness watermarks** — per-lane newest emitted sequence number
//!   and the age of the last emission;
//! * **deadline accounting** — emissions and deadline misses against a
//!   configurable end-to-end budget ([`SloConfig::deadline`]);
//! * **burn rates** over two sliding windows (fast 5 m / slow 1 h by
//!   default). The burn rate is `miss_rate / error_budget` where the
//!   error budget is `1 − target`: burn 1.0 consumes the budget exactly
//!   at the sustainable rate, burn 10 exhausts a month's budget in three
//!   days. Alerting on the **AND** of a fast and a slow window (the
//!   multi-window policy from the Google SRE workbook) makes the signal
//!   both quick to fire and quick to clear without flapping on a single
//!   slow packet.
//!
//! Health is derived, never stored: [`SloEngine::snapshot`] classifies
//! each active patient as [`Healthy`](HealthState::Healthy),
//! [`Degraded`](HealthState::Degraded) (both burn windows at or above
//! the threshold), or [`Stalled`](HealthState::Stalled) (nothing emitted
//! for longer than [`SloConfig::stall_after`]).
//!
//! Everything on the recording path is relaxed atomics — no locks, no
//! allocation — so [`record_emit`](SloEngine::record_emit) is safe to
//! call from every collector emission. Bucket-epoch races under
//! concurrent recording are benign: at worst an observation lands in a
//! just-recycled bucket, perturbing a 16-bucket window by one slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-patient slots; stream ids beyond this fold back modulo
/// `MAX_PATIENTS` (the `MAX_WORKERS` precedent — a single coordinator
/// host saturates long before 64 patients).
pub const MAX_PATIENTS: usize = 64;

/// Per-lane watermark slots per patient; lane ids fold modulo
/// `MAX_LANES` (the paper's system carries at most a few leads).
pub const MAX_LANES: usize = 8;

/// Ring buckets per burn-rate window: resolution is `window / 16`.
pub const BURN_BUCKETS: usize = 16;

/// The per-patient service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// End-to-end (capture → emit) latency budget per packet. Default
    /// 2 s — the paper's packet period: a reconstruction is late once
    /// the next window has fully arrived.
    pub deadline: Duration,
    /// A patient with no emission for this long is `Stalled`. Default
    /// 30 s (15 packet periods).
    pub stall_after: Duration,
    /// Fast burn-rate window. Default 5 minutes.
    pub fast_window: Duration,
    /// Slow burn-rate window. Default 1 hour.
    pub slow_window: Duration,
    /// Deadline-hit objective (fraction of emissions inside the budget).
    /// Default 0.999.
    pub target: f64,
    /// Burn-rate threshold at or above which — in **both** windows — a
    /// patient is `Degraded`. Default 1.0 (consuming error budget faster
    /// than sustainable).
    pub degraded_burn: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            deadline: Duration::from_secs(2),
            stall_after: Duration::from_secs(30),
            fast_window: Duration::from_secs(5 * 60),
            slow_window: Duration::from_secs(60 * 60),
            target: 0.999,
            degraded_burn: 1.0,
        }
    }
}

/// Derived per-patient health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Fresh and inside the error budget.
    Healthy,
    /// Burning error budget at or above threshold in both windows.
    Degraded,
    /// No emission within [`SloConfig::stall_after`].
    Stalled,
}

impl HealthState {
    /// Every state, in severity order.
    pub const ALL: [HealthState; 3] =
        [HealthState::Healthy, HealthState::Degraded, HealthState::Stalled];

    /// Stable snake_case name (Prometheus `state` label).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Stalled => "stalled",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One bucket of a sliding burn-rate window. `epoch` is the absolute
/// bucket tick the counters belong to; a writer arriving in a new tick
/// CASes the epoch forward and zeroes the counters.
#[derive(Debug)]
struct Bucket {
    epoch: AtomicU64,
    emits: AtomicU64,
    misses: AtomicU64,
}

/// A 16-bucket ring covering one sliding window.
#[derive(Debug)]
struct BurnWindow {
    bucket_ns: u64,
    buckets: [Bucket; BURN_BUCKETS],
}

impl BurnWindow {
    fn new(window: Duration) -> Self {
        let window_ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX).max(1);
        BurnWindow {
            bucket_ns: (window_ns / BURN_BUCKETS as u64).max(1),
            buckets: std::array::from_fn(|_| Bucket {
                epoch: AtomicU64::new(u64::MAX),
                emits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    fn record(&self, now_ns: u64, missed: bool) {
        let tick = now_ns / self.bucket_ns;
        let bucket = &self.buckets[tick as usize % BURN_BUCKETS];
        let epoch = bucket.epoch.load(Ordering::Relaxed);
        if epoch != tick {
            // One writer wins the recycle; losers just add to the fresh
            // counters. A stale-epoch loser's increment lands in the old
            // tick at worst — benign at bucket granularity.
            if bucket
                .epoch
                .compare_exchange(epoch, tick, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                bucket.emits.store(0, Ordering::Relaxed);
                bucket.misses.store(0, Ordering::Relaxed);
            }
        }
        bucket.emits.fetch_add(1, Ordering::Relaxed);
        if missed {
            bucket.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(emits, misses)` across buckets still inside the window at
    /// `now_ns`.
    fn totals(&self, now_ns: u64) -> (u64, u64) {
        let tick = now_ns / self.bucket_ns;
        let oldest = tick.saturating_sub(BURN_BUCKETS as u64 - 1);
        let mut emits = 0u64;
        let mut misses = 0u64;
        for b in &self.buckets {
            let epoch = b.epoch.load(Ordering::Relaxed);
            if epoch != u64::MAX && epoch >= oldest && epoch <= tick {
                emits += b.emits.load(Ordering::Relaxed);
                misses += b.misses.load(Ordering::Relaxed);
            }
        }
        (emits, misses)
    }
}

/// One patient's recording slots.
#[derive(Debug)]
struct PatientSlot {
    emits: AtomicU64,
    misses: AtomicU64,
    /// `now_ns + 1` of the newest emission (0 = never).
    last_emit: AtomicU64,
    /// Per-lane `seq + 1` watermark (0 = never).
    lane_seq: [AtomicU64; MAX_LANES],
    /// Per-lane `now_ns + 1` of the newest emission (0 = never).
    lane_last: [AtomicU64; MAX_LANES],
    fast: BurnWindow,
    slow: BurnWindow,
}

/// Lock-free per-patient SLO accounting; owned by the registry.
#[derive(Debug)]
pub struct SloEngine {
    config: SloConfig,
    deadline_ns: u64,
    stall_after_ns: u64,
    slots: [PatientSlot; MAX_PATIENTS],
}

impl SloEngine {
    /// An engine enforcing `config`.
    pub fn new(config: SloConfig) -> Self {
        SloEngine {
            deadline_ns: u64::try_from(config.deadline.as_nanos()).unwrap_or(u64::MAX),
            stall_after_ns: u64::try_from(config.stall_after.as_nanos()).unwrap_or(u64::MAX),
            slots: std::array::from_fn(|_| PatientSlot {
                emits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                last_emit: AtomicU64::new(0),
                lane_seq: std::array::from_fn(|_| AtomicU64::new(0)),
                lane_last: std::array::from_fn(|_| AtomicU64::new(0)),
                fast: BurnWindow::new(config.fast_window),
                slow: BurnWindow::new(config.slow_window),
            }),
            config,
        }
    }

    /// The configured objective.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// The deadline budget in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// Accounts one emission for `patient`/`lane` at `now_ns`. Ids fold
    /// modulo [`MAX_PATIENTS`]/[`MAX_LANES`]. Pure relaxed atomics.
    pub fn record_emit(&self, patient: usize, lane: usize, seq: u64, now_ns: u64, missed: bool) {
        let slot = &self.slots[patient % MAX_PATIENTS];
        slot.emits.fetch_add(1, Ordering::Relaxed);
        if missed {
            slot.misses.fetch_add(1, Ordering::Relaxed);
        }
        slot.last_emit.fetch_max(now_ns + 1, Ordering::Relaxed);
        slot.lane_seq[lane % MAX_LANES].fetch_max(seq + 1, Ordering::Relaxed);
        slot.lane_last[lane % MAX_LANES].fetch_max(now_ns + 1, Ordering::Relaxed);
        slot.fast.record(now_ns, missed);
        slot.slow.record(now_ns, missed);
    }

    fn burn(&self, emits: u64, misses: u64) -> f64 {
        if emits == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.config.target).max(f64::EPSILON);
        (misses as f64 / emits as f64) / budget
    }

    /// Classifies every active patient at `now_ns`.
    pub fn snapshot(&self, now_ns: u64) -> SloSnapshot {
        let mut patients = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            let emits = slot.emits.load(Ordering::Relaxed);
            if emits == 0 {
                continue;
            }
            let misses = slot.misses.load(Ordering::Relaxed);
            let last = slot.last_emit.load(Ordering::Relaxed) - 1;
            let freshness_ns = now_ns.saturating_sub(last);
            let (fe, fm) = slot.fast.totals(now_ns);
            let (se, sm) = slot.slow.totals(now_ns);
            let fast_burn = self.burn(fe, fm);
            let slow_burn = self.burn(se, sm);
            let health = if freshness_ns > self.stall_after_ns {
                HealthState::Stalled
            } else if fast_burn >= self.config.degraded_burn
                && slow_burn >= self.config.degraded_burn
            {
                HealthState::Degraded
            } else {
                HealthState::Healthy
            };
            let lanes = (0..MAX_LANES)
                .filter_map(|lane| {
                    let seq = slot.lane_seq[lane].load(Ordering::Relaxed);
                    if seq == 0 {
                        return None;
                    }
                    let lane_last = slot.lane_last[lane].load(Ordering::Relaxed) - 1;
                    Some(LaneWatermark {
                        lane,
                        newest_seq: seq - 1,
                        age_ns: now_ns.saturating_sub(lane_last),
                    })
                })
                .collect();
            patients.push(PatientSlo {
                patient: id,
                emits,
                deadline_misses: misses,
                freshness_ns,
                fast_burn,
                slow_burn,
                health,
                lanes,
            });
        }
        SloSnapshot { deadline_ns: self.deadline_ns, patients }
    }
}

/// One lane's freshness watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWatermark {
    /// Lane (lead) index.
    pub lane: usize,
    /// Newest emitted sequence number.
    pub newest_seq: u64,
    /// Nanoseconds since that lane last emitted.
    pub age_ns: u64,
}

/// One patient's derived SLO state.
#[derive(Debug, Clone, PartialEq)]
pub struct PatientSlo {
    /// Patient (stream) slot index.
    pub patient: usize,
    /// Total emissions observed.
    pub emits: u64,
    /// Emissions that exceeded the deadline budget.
    pub deadline_misses: u64,
    /// Nanoseconds since the newest emission across all lanes.
    pub freshness_ns: u64,
    /// Fast-window burn rate.
    pub fast_burn: f64,
    /// Slow-window burn rate.
    pub slow_burn: f64,
    /// Derived health.
    pub health: HealthState,
    /// Per-lane watermarks for lanes that have emitted.
    pub lanes: Vec<LaneWatermark>,
}

/// Point-in-time SLO verdict across the fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSnapshot {
    /// The deadline budget the misses were counted against.
    pub deadline_ns: u64,
    /// Active patients (at least one emission), in slot order.
    pub patients: Vec<PatientSlo>,
}

impl SloSnapshot {
    /// Whether any active patient is stalled (drives `/healthz`).
    pub fn any_stalled(&self) -> bool {
        self.patients.iter().any(|p| p.health == HealthState::Stalled)
    }

    /// The worst health across active patients (`Healthy` when none).
    pub fn worst(&self) -> HealthState {
        self.patients
            .iter()
            .map(|p| p.health)
            .max()
            .unwrap_or(HealthState::Healthy)
    }

    /// Patients currently in `state`.
    pub fn count_in(&self, state: HealthState) -> u64 {
        self.patients.iter().filter(|p| p.health == state).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;
    const S: u64 = 1_000 * MS;

    fn engine() -> SloEngine {
        SloEngine::new(SloConfig::default())
    }

    #[test]
    fn inactive_patients_are_invisible() {
        let snap = engine().snapshot(10 * S);
        assert!(snap.patients.is_empty());
        assert!(!snap.any_stalled());
        assert_eq!(snap.worst(), HealthState::Healthy);
    }

    #[test]
    fn healthy_patient_reports_watermarks() {
        let e = engine();
        e.record_emit(3, 0, 10, 5 * S, false);
        e.record_emit(3, 1, 11, 6 * S, false);
        let snap = e.snapshot(7 * S);
        assert_eq!(snap.patients.len(), 1);
        let p = &snap.patients[0];
        assert_eq!(p.patient, 3);
        assert_eq!(p.emits, 2);
        assert_eq!(p.deadline_misses, 0);
        assert_eq!(p.health, HealthState::Healthy);
        assert_eq!(p.freshness_ns, S);
        assert_eq!(p.lanes.len(), 2);
        assert_eq!(p.lanes[0], LaneWatermark { lane: 0, newest_seq: 10, age_ns: 2 * S });
        assert_eq!(p.lanes[1], LaneWatermark { lane: 1, newest_seq: 11, age_ns: S });
    }

    #[test]
    fn silence_beyond_stall_after_is_stalled() {
        let e = engine();
        e.record_emit(0, 0, 0, S, false);
        assert_eq!(e.snapshot(10 * S).patients[0].health, HealthState::Healthy);
        let snap = e.snapshot(32 * S);
        assert_eq!(snap.patients[0].health, HealthState::Stalled);
        assert!(snap.any_stalled());
        assert_eq!(snap.worst(), HealthState::Stalled);
        assert_eq!(snap.count_in(HealthState::Stalled), 1);
    }

    #[test]
    fn sustained_misses_burn_both_windows_to_degraded() {
        let e = engine();
        // 50 % miss rate against a 99.9 % target → burn 500 in any window.
        for i in 0..100u64 {
            e.record_emit(1, 0, i, 10 * S + i * 100 * MS, i % 2 == 0);
        }
        let snap = e.snapshot(20 * S);
        let p = &snap.patients[0];
        assert!(p.fast_burn > 100.0, "fast {}", p.fast_burn);
        assert!(p.slow_burn > 100.0, "slow {}", p.slow_burn);
        assert_eq!(p.health, HealthState::Degraded);
        assert_eq!(p.deadline_misses, 50);
    }

    #[test]
    fn fast_window_forgets_old_misses_but_slow_remembers() {
        let e = engine();
        // A burst of misses early on…
        for i in 0..20u64 {
            e.record_emit(0, 0, i, S + i * 10 * MS, true);
        }
        // …then clean traffic. 10 minutes later the 5 m fast window has
        // rotated the burst out, so the patient is Healthy again even
        // though the 1 h slow window still shows a nonzero burn.
        let later = 600 * S;
        for i in 20..40u64 {
            e.record_emit(0, 0, i, later + i * 10 * MS, false);
        }
        let snap = e.snapshot(later + 41 * 10 * MS);
        let p = &snap.patients[0];
        assert_eq!(p.fast_burn, 0.0, "fast window must have rotated the burst out");
        assert!(p.slow_burn > 0.0, "slow window still remembers");
        assert_eq!(p.health, HealthState::Healthy, "AND semantics: one window clean ⇒ not degraded");
    }

    #[test]
    fn ids_fold_modulo_capacity() {
        let e = engine();
        e.record_emit(2, 1, 5, S, false);
        e.record_emit(2 + MAX_PATIENTS, 1 + MAX_LANES, 6, 2 * S, false);
        let snap = e.snapshot(3 * S);
        assert_eq!(snap.patients.len(), 1);
        assert_eq!(snap.patients[0].emits, 2);
        assert_eq!(snap.patients[0].lanes[0].newest_seq, 6);
    }

    #[test]
    fn zero_emissions_in_window_is_zero_burn() {
        let e = engine();
        e.record_emit(0, 0, 0, S, true);
        // Two hours later both windows are empty: burn must read 0, not NaN.
        let snap = e.snapshot(7200 * S);
        assert_eq!(snap.patients[0].fast_burn, 0.0);
        assert_eq!(snap.patients[0].slow_burn, 0.0);
    }

    #[test]
    fn concurrent_recording_accounts_every_emit() {
        let e = std::sync::Arc::new(engine());
        let threads: Vec<_> = (0..4usize)
            .map(|t| {
                let e = std::sync::Arc::clone(&e);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        e.record_emit(t, 0, i, S + i * MS, i % 10 == 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = e.snapshot(3 * S);
        assert_eq!(snap.patients.len(), 4);
        for p in &snap.patients {
            assert_eq!(p.emits, 1000);
            assert_eq!(p.deadline_misses, 100);
        }
    }
}
