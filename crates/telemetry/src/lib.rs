//! # cs-telemetry — zero-dependency observability for the CS-ECG pipeline
//!
//! Lock-free counters, fixed-bucket log2 latency histograms, RAII span
//! guards over every pipeline stage, a bounded convergence-trace journal,
//! and Prometheus/JSON-Lines exporters — with **no dependencies outside
//! `std`**, so the crate sits below every other workspace crate without
//! widening the build surface.
//!
//! The design center is "default-on but cheap": instrumented code paths
//! hold a [`TelemetryRegistry`] unconditionally, and the shared
//! [`TelemetryRegistry::disabled`] handle reduces every span to a single
//! relaxed atomic load. The `telemetry_overhead` bench in `cs-bench`
//! holds the *enabled* registry to < 2 % of fleet decode throughput.
//!
//! ```
//! use cs_telemetry::{Stage, TelemetryRegistry};
//!
//! let telemetry = TelemetryRegistry::new();
//! {
//!     let _span = telemetry.span(Stage::FistaSolve);
//!     // ... solve ...
//! }
//! let p50 = telemetry.stage(Stage::FistaSolve).quantile(0.5);
//! assert!(p50 >= 1);
//! println!("{}", telemetry.prometheus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod clinical;
pub mod export;
pub mod fault;
pub mod histogram;
pub mod ingest;
pub mod journal;
pub mod mode;
pub mod registry;
pub mod serve;
pub mod slo;
pub mod stage;
pub mod trace;

pub use archive::ArchiveOp;
pub use clinical::{AlarmKind, AlarmSeverity, BeatClass};
pub use export::{escape_label, json_line, prometheus, Every, REPORT_QUANTILES};
pub use fault::FaultKind;
pub use histogram::{bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use ingest::{IngestDisconnect, IngestState};
pub use journal::{Journal, SolveTrace};
pub use mode::SolverMode;
pub use registry::{
    AlarmCounts, Span, TelemetryRegistry, TelemetrySnapshot, DEFAULT_JOURNAL_CAPACITY,
    MAX_WORKERS,
};
pub use serve::{MetricsServer, ScrapeEndpoint};
pub use slo::{
    HealthState, LaneWatermark, PatientSlo, SloConfig, SloSnapshot, MAX_LANES, MAX_PATIENTS,
};
pub use stage::Stage;
pub use trace::{tracez_json, EmitRecord, TraceContext, TRACEZ_LIMIT};
