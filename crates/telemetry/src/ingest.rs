//! The ingest-session taxonomy.
//!
//! Two closed label sets for the socket ingest layer: the live session
//! lifecycle states (a gauge — sessions move between them) and the
//! terminal disconnect reasons (a counter — every session ends in
//! exactly one). Like [`crate::FaultKind`], storage in the registry is a
//! fixed atomic array indexed by the enum, so recording costs one
//! relaxed atomic op.

/// A live ingest session's lifecycle state (`cs_ingest_sessions` gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngestState {
    /// Connection accepted, hello not yet validated.
    Handshaking,
    /// Handshake accepted; frames are flowing.
    Streaming,
    /// Server drain announced; the session is flushing and saying
    /// goodbye.
    Draining,
}

impl IngestState {
    /// Number of states (the registry's gauge-array length).
    pub const COUNT: usize = 3;

    /// Every state, in lifecycle order.
    pub const ALL: [IngestState; IngestState::COUNT] =
        [IngestState::Handshaking, IngestState::Streaming, IngestState::Draining];

    /// Dense index into per-state arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (Prometheus `state` label).
    pub fn name(self) -> &'static str {
        match self {
            IngestState::Handshaking => "handshaking",
            IngestState::Streaming => "streaming",
            IngestState::Draining => "draining",
        }
    }
}

impl std::fmt::Display for IngestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an ingest session ended (`cs_ingest_disconnect_total` counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngestDisconnect {
    /// The client closed its write side cleanly.
    ClientClosed,
    /// The server drained; the session flushed and said goodbye.
    Drained,
    /// No bytes arrived within the idle timeout.
    IdleTimeout,
    /// Bytes trickled below the read-rate floor (slow-loris eviction).
    SlowLoris,
    /// The hello never completed inside the handshake deadline.
    HandshakeTimeout,
    /// The hello was malformed (bad magic/version/CRC or an
    /// out-of-range patient or lane set).
    BadHandshake,
    /// The admission controller refused the session (shed with a typed
    /// NACK before any frame work was accepted).
    Shed,
    /// The socket failed mid-session (reset, broken pipe).
    IoError,
}

impl IngestDisconnect {
    /// Number of reasons (the registry's counter-array length).
    pub const COUNT: usize = 8;

    /// Every reason.
    pub const ALL: [IngestDisconnect; IngestDisconnect::COUNT] = [
        IngestDisconnect::ClientClosed,
        IngestDisconnect::Drained,
        IngestDisconnect::IdleTimeout,
        IngestDisconnect::SlowLoris,
        IngestDisconnect::HandshakeTimeout,
        IngestDisconnect::BadHandshake,
        IngestDisconnect::Shed,
        IngestDisconnect::IoError,
    ];

    /// Dense index into per-reason arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (Prometheus `reason` label).
    pub fn name(self) -> &'static str {
        match self {
            IngestDisconnect::ClientClosed => "client_closed",
            IngestDisconnect::Drained => "drained",
            IngestDisconnect::IdleTimeout => "idle_timeout",
            IngestDisconnect::SlowLoris => "slow_loris",
            IngestDisconnect::HandshakeTimeout => "handshake_timeout",
            IngestDisconnect::BadHandshake => "bad_handshake",
            IngestDisconnect::Shed => "shed",
            IngestDisconnect::IoError => "io_error",
        }
    }
}

impl std::fmt::Display for IngestDisconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, s) in IngestState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, r) in IngestDisconnect::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = IngestState::ALL
            .iter()
            .map(|s| s.name())
            .chain(IngestDisconnect::ALL.iter().map(|r| r.name()))
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), IngestState::COUNT + IngestDisconnect::COUNT);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
