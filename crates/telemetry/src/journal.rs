//! The bounded event journal: per-packet convergence traces.
//!
//! Aggregate histograms answer "where does time go"; the journal answers
//! "what did packet 17 of stream 3 *do*" — iteration count, final
//! residual, warm-start acceptance — for the most recent window of
//! traffic. It is a bounded ring: a full journal overwrites its oldest
//! trace and counts the loss, and a contended journal drops the incoming
//! trace and counts that too. Pushing therefore **never blocks** a decode
//! worker and never grows memory; fidelity is sacrificed instead, and the
//! sacrifice is visible in [`Journal::dropped`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One solver invocation's convergence record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveTrace {
    /// Fleet stream index (0 outside the fleet engine).
    pub stream: u32,
    /// Lead index within the stream.
    pub channel: u8,
    /// Packet sequence index within the stream.
    pub seq: u64,
    /// FISTA iterations spent.
    pub iterations: u32,
    /// Final residual norm `‖Aα − y‖₂`.
    pub residual: f64,
    /// Wall-clock solve time in nanoseconds.
    pub solve_ns: u64,
    /// Whether the solve was seeded from a prior estimate.
    pub warm_started: bool,
    /// Whether a stopping criterion fired before the iteration cap.
    pub converged: bool,
}

/// A bounded, never-blocking ring buffer of [`SolveTrace`]s with
/// drop/overflow accounting.
///
/// # Examples
///
/// ```
/// use cs_telemetry::{Journal, SolveTrace};
///
/// let journal = Journal::new(2);
/// for seq in 0..3 {
///     journal.push(SolveTrace { seq, ..SolveTrace::default() });
/// }
/// assert_eq!(journal.pushed(), 3);
/// assert_eq!(journal.dropped(), 1); // oldest overwritten
/// let kept: Vec<u64> = journal.drain().iter().map(|t| t.seq).collect();
/// assert_eq!(kept, [1, 2]);
/// ```
#[derive(Debug)]
pub struct Journal {
    ring: Mutex<VecDeque<SolveTrace>>,
    capacity: usize,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl Default for SolveTrace {
    fn default() -> Self {
        SolveTrace {
            stream: 0,
            channel: 0,
            seq: 0,
            iterations: 0,
            residual: 0.0,
            solve_ns: 0,
            warm_started: false,
            converged: false,
        }
    }
}

impl Journal {
    /// A journal holding at most `capacity` traces (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a trace without ever blocking the caller: a full ring
    /// evicts its oldest trace (counted in [`Journal::dropped`]); a ring
    /// whose lock is momentarily held by another thread drops the
    /// incoming trace instead (also counted).
    pub fn push(&self, trace: SolveTrace) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() == self.capacity {
                    ring.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                ring.push_back(trace);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns every buffered trace, oldest first.
    pub fn drain(&self) -> Vec<SolveTrace> {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.drain(..).collect()
    }

    /// Copies the buffered traces without consuming them, oldest first.
    pub fn peek(&self) -> Vec<SolveTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().copied().collect()
    }

    /// Traces currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no traces are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum traces the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total traces ever offered via [`Journal::push`].
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Traces lost: ring-full evictions plus contention drops. The
    /// invariant `pushed == dropped + retained + drained` always holds.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u64) -> SolveTrace {
        SolveTrace { seq, ..SolveTrace::default() }
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let j = Journal::new(0);
        assert_eq!(j.capacity(), 1);
        j.push(trace(0));
        j.push(trace(1));
        assert_eq!(j.len(), 1);
        assert_eq!(j.drain()[0].seq, 1);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let j = Journal::new(4);
        for seq in 0..10 {
            j.push(trace(seq));
        }
        assert_eq!(j.pushed(), 10);
        assert_eq!(j.dropped(), 6);
        assert_eq!(j.len(), 4);
        let kept: Vec<u64> = j.drain().iter().map(|t| t.seq).collect();
        assert_eq!(kept, [6, 7, 8, 9]);
        // Accounting invariant: everything offered is either kept or
        // counted as dropped.
        assert_eq!(j.pushed(), j.dropped() + kept.len() as u64);
    }

    #[test]
    fn drain_empties_without_resetting_counters() {
        let j = Journal::new(8);
        j.push(trace(0));
        j.push(trace(1));
        assert_eq!(j.drain().len(), 2);
        assert!(j.is_empty());
        assert_eq!(j.pushed(), 2);
        assert_eq!(j.dropped(), 0);
        j.push(trace(2));
        assert_eq!(j.peek().len(), 1);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn concurrent_pushes_account_for_every_trace() {
        let j = std::sync::Arc::new(Journal::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = std::sync::Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        j.push(trace(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.pushed(), 4000);
        // Never blocks, never loses accounting: retained + dropped covers
        // every push whether it was evicted, contended away, or kept.
        assert_eq!(j.dropped() + j.len() as u64, 4000);
    }
}
