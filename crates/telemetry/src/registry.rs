//! The telemetry registry and its RAII span guards.
//!
//! A [`TelemetryRegistry`] is a cheaply clonable handle (an `Arc`) to the
//! shared recording state: one [`Histogram`] per [`Stage`], a fixed array
//! of per-worker packet counters, and the bounded [`Journal`] of
//! convergence traces. Instrumented code paths hold a registry
//! unconditionally — the **disabled** registry is a process-wide shared
//! handle whose every recording operation is gated on a single relaxed
//! `AtomicBool` load, so un-observed pipelines pay one atomic load per
//! span and nothing else (measured < 2 % of fleet throughput by the
//! `telemetry_overhead` bench even when *enabled*).

use crate::archive::ArchiveOp;
use crate::clinical::{AlarmKind, BeatClass};
use crate::fault::FaultKind;
use crate::ingest::{IngestDisconnect, IngestState};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::journal::{Journal, SolveTrace};
use crate::mode::SolverMode;
use crate::serve::ScrapeEndpoint;
use crate::slo::{SloConfig, SloEngine, SloSnapshot, MAX_PATIENTS};
use crate::stage::Stage;
use crate::trace::{EmitRecord, TraceContext};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Per-worker counter slots. Worker ids beyond this fold back modulo
/// `MAX_WORKERS`; at the paper's per-stream decode costs a single host
/// saturates long before 64 workers.
pub const MAX_WORKERS: usize = 64;

/// Default journal capacity in traces (~64 two-second packets of history
/// per worker at the default fleet shape).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

struct Inner {
    enabled: AtomicBool,
    started: Instant,
    stages: [Histogram; Stage::COUNT],
    workers: [AtomicU64; MAX_WORKERS],
    faults: [AtomicU64; FaultKind::COUNT],
    archive: [AtomicU64; ArchiveOp::COUNT],
    /// Batched-solve width distribution (raw lane counts, not durations):
    /// occupancy `k` records the value `k`, so the histogram's mean is the
    /// fleet's average batch fill.
    batch_occupancy: Histogram,
    /// Per-solver-mode iteration counts (raw iterations, not durations):
    /// a solve of `k` iterations records the value `k` into its mode's
    /// histogram, so means/percentiles read directly as iterations.
    solver_iterations: [Histogram; SolverMode::COUNT],
    journal: Journal,
    /// Per-patient end-to-end (capture → emit) latency; stream ids fold
    /// modulo [`MAX_PATIENTS`], mirroring the worker counters.
    e2e: [Histogram; MAX_PATIENTS],
    slo: SloEngine,
    /// Self-observation: scrape hits per HTTP endpoint and exporter
    /// render times — the telemetry layer appears in its own output.
    scrapes: [AtomicU64; ScrapeEndpoint::COUNT],
    render: Histogram,
    /// Socket-ingest lifecycle: live session counts per state (gauge
    /// semantics — enter/exit), sessions ever accepted, admission sheds,
    /// terminal disconnect reasons, and accepted frame/byte volume.
    ingest_states: [AtomicU64; IngestState::COUNT],
    ingest_accepted: AtomicU64,
    ingest_shed: AtomicU64,
    ingest_disconnects: [AtomicU64; IngestDisconnect::COUNT],
    ingest_frames: AtomicU64,
    ingest_bytes: AtomicU64,
    /// Clinical analysis layer: alarms raised/cleared per kind (totals),
    /// currently-active alarm gauges per kind, alarm evaluations
    /// suppressed on concealed windows, classified beats per class, and
    /// the QRS-detection confusion counts the sensitivity/PPV panels are
    /// derived from.
    alarms_raised: [AtomicU64; AlarmKind::COUNT],
    alarms_cleared: [AtomicU64; AlarmKind::COUNT],
    alarms_active: [AtomicU64; AlarmKind::COUNT],
    alarms_suppressed: AtomicU64,
    beats: [AtomicU64; BeatClass::COUNT],
    qrs_true_positive: AtomicU64,
    qrs_false_positive: AtomicU64,
    qrs_false_negative: AtomicU64,
}

/// Shared handle to the telemetry recording state.
///
/// # Examples
///
/// ```
/// use cs_telemetry::{Stage, TelemetryRegistry};
///
/// let telemetry = TelemetryRegistry::new();
/// {
///     let _span = telemetry.span(Stage::FistaSolve);
///     // ... the work being timed ...
/// }
/// assert_eq!(telemetry.stage(Stage::FistaSolve).count(), 1);
///
/// // The disabled registry records nothing and costs one atomic load.
/// let off = TelemetryRegistry::disabled();
/// let _span = off.span(Stage::FistaSolve);
/// drop(_span);
/// assert_eq!(off.stage(Stage::FistaSolve).count(), 0);
/// ```
#[derive(Clone)]
pub struct TelemetryRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryRegistry")
            .field("enabled", &self.is_enabled())
            .field("uptime", &self.uptime())
            .finish_non_exhaustive()
    }
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        TelemetryRegistry::new()
    }
}

impl TelemetryRegistry {
    /// A fresh, enabled registry with the default journal capacity.
    pub fn new() -> Self {
        TelemetryRegistry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh, enabled registry whose journal holds `capacity` traces.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        TelemetryRegistry::with_capacity_and_slo(capacity, SloConfig::default())
    }

    /// A fresh, enabled registry with a custom SLO (deadline budget,
    /// stall threshold, burn windows) and the default journal capacity.
    pub fn with_slo_config(slo: SloConfig) -> Self {
        TelemetryRegistry::with_capacity_and_slo(DEFAULT_JOURNAL_CAPACITY, slo)
    }

    /// A fresh, enabled registry with both knobs. The SLO is fixed at
    /// construction so the recording path never re-reads configuration.
    pub fn with_capacity_and_slo(capacity: usize, slo: SloConfig) -> Self {
        TelemetryRegistry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                started: Instant::now(),
                stages: std::array::from_fn(|_| Histogram::new()),
                workers: std::array::from_fn(|_| AtomicU64::new(0)),
                faults: std::array::from_fn(|_| AtomicU64::new(0)),
                archive: std::array::from_fn(|_| AtomicU64::new(0)),
                batch_occupancy: Histogram::new(),
                solver_iterations: std::array::from_fn(|_| Histogram::new()),
                journal: Journal::new(capacity),
                e2e: std::array::from_fn(|_| Histogram::new()),
                slo: SloEngine::new(slo),
                scrapes: std::array::from_fn(|_| AtomicU64::new(0)),
                render: Histogram::new(),
                ingest_states: std::array::from_fn(|_| AtomicU64::new(0)),
                ingest_accepted: AtomicU64::new(0),
                ingest_shed: AtomicU64::new(0),
                ingest_disconnects: std::array::from_fn(|_| AtomicU64::new(0)),
                ingest_frames: AtomicU64::new(0),
                ingest_bytes: AtomicU64::new(0),
                alarms_raised: std::array::from_fn(|_| AtomicU64::new(0)),
                alarms_cleared: std::array::from_fn(|_| AtomicU64::new(0)),
                alarms_active: std::array::from_fn(|_| AtomicU64::new(0)),
                alarms_suppressed: AtomicU64::new(0),
                beats: std::array::from_fn(|_| AtomicU64::new(0)),
                qrs_true_positive: AtomicU64::new(0),
                qrs_false_positive: AtomicU64::new(0),
                qrs_false_negative: AtomicU64::new(0),
            }),
        }
    }

    /// The process-wide disabled registry: every un-instrumented pipeline
    /// shares this handle, so constructing encoders/decoders without
    /// telemetry allocates nothing and recording costs one atomic load.
    pub fn disabled() -> Self {
        static DISABLED: OnceLock<TelemetryRegistry> = OnceLock::new();
        DISABLED
            .get_or_init(|| {
                let r = TelemetryRegistry::with_journal_capacity(1);
                r.set_enabled(false);
                r
            })
            .clone()
    }

    /// Whether recording is on (one relaxed atomic load — the only cost
    /// a disabled span pays).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime. Spans already entered keep
    /// the decision made at entry.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Enters a timed span over `stage`; the elapsed time is recorded
    /// into the stage histogram when the guard drops.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span::enter(self, stage)
    }

    /// Records a pre-measured duration against a stage.
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        if self.is_enabled() {
            self.inner.stages[stage.index()].record_ns(ns);
        }
    }

    /// The live histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.inner.stages[stage.index()]
    }

    /// Counts one decoded packet against a worker (ids fold modulo
    /// [`MAX_WORKERS`]).
    pub fn record_worker_packet(&self, worker: usize) {
        if self.is_enabled() {
            self.inner.workers[worker % MAX_WORKERS].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-worker packet counts for workers `0..n`.
    pub fn worker_packets(&self, n: usize) -> Vec<u64> {
        self.inner.workers[..n.min(MAX_WORKERS)]
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Counts one fault event of the given kind (no-op when disabled).
    pub fn record_fault(&self, kind: FaultKind) {
        if self.is_enabled() {
            self.inner.faults[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The running count for one fault kind.
    pub fn fault_count(&self, kind: FaultKind) -> u64 {
        self.inner.faults[kind.index()].load(Ordering::Relaxed)
    }

    /// Counts one archive operation of the given kind (no-op when
    /// disabled).
    pub fn record_archive_op(&self, op: ArchiveOp) {
        if self.is_enabled() {
            self.inner.archive[op.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts `n` archive operations at once (e.g. a replay batch).
    pub fn record_archive_ops(&self, op: ArchiveOp, n: u64) {
        if self.is_enabled() {
            self.inner.archive[op.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The running count for one archive operation.
    pub fn archive_count(&self, op: ArchiveOp) -> u64 {
        self.inner.archive[op.index()].load(Ordering::Relaxed)
    }

    /// Records the lane occupancy of one batched solve (no-op when
    /// disabled). The histogram stores raw widths, not durations.
    pub fn record_batch_occupancy(&self, lanes: usize) {
        if self.is_enabled() {
            self.inner.batch_occupancy.record_ns(lanes as u64);
        }
    }

    /// The live batched-solve occupancy histogram.
    pub fn batch_occupancy(&self) -> &Histogram {
        &self.inner.batch_occupancy
    }

    /// Records the iteration count of one solve against its mode's
    /// histogram (no-op when disabled). Raw counts, not durations.
    pub fn record_solver_iterations(&self, mode: SolverMode, iterations: usize) {
        if self.is_enabled() {
            self.inner.solver_iterations[mode.index()].record_ns(iterations as u64);
        }
    }

    /// The live per-mode iteration histogram.
    pub fn solver_iterations(&self, mode: SolverMode) -> &Histogram {
        &self.inner.solver_iterations[mode.index()]
    }

    /// Appends a convergence trace to the journal (no-op when disabled).
    pub fn record_solve(&self, trace: SolveTrace) {
        if self.is_enabled() {
            self.inner.journal.push(trace);
        }
    }

    /// The convergence-trace journal.
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// Time since the registry was created.
    pub fn uptime(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Nanoseconds on this registry's monotonic clock (its creation
    /// instant is zero) — the time base every [`TraceContext`] and SLO
    /// watermark uses. Not comparable across registries.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The SLO this registry enforces.
    pub fn slo_config(&self) -> &SloConfig {
        self.inner.slo.config()
    }

    /// Records one delivered packet against the end-to-end latency
    /// histogram and the SLO engine, returning what was measured.
    /// Returns `None` (and records nothing) when disabled.
    pub fn record_emit(&self, ctx: &TraceContext) -> Option<EmitRecord> {
        if !self.is_enabled() {
            return None;
        }
        let now = self.now_ns();
        let e2e_ns = now.saturating_sub(ctx.captured_ns);
        self.inner.e2e[ctx.stream as usize % MAX_PATIENTS].record_ns(e2e_ns);
        let deadline_missed = e2e_ns > self.inner.slo.deadline_ns();
        self.inner
            .slo
            .record_emit(ctx.stream as usize, ctx.lane as usize, ctx.seq, now, deadline_missed);
        Some(EmitRecord { e2e_ns, deadline_missed })
    }

    /// The live end-to-end latency histogram for one patient slot
    /// (stream ids fold modulo [`MAX_PATIENTS`]).
    pub fn e2e(&self, patient: usize) -> &Histogram {
        &self.inner.e2e[patient % MAX_PATIENTS]
    }

    /// The derived SLO state for every active patient, evaluated now.
    pub fn slo_snapshot(&self) -> SloSnapshot {
        self.inner.slo.snapshot(self.now_ns())
    }

    /// Counts one HTTP scrape against an endpoint (no-op when disabled).
    pub fn record_scrape(&self, endpoint: ScrapeEndpoint) {
        if self.is_enabled() {
            self.inner.scrapes[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The running scrape count for one endpoint.
    pub fn scrape_count(&self, endpoint: ScrapeEndpoint) -> u64 {
        self.inner.scrapes[endpoint.index()].load(Ordering::Relaxed)
    }

    /// Records one exporter render duration (no-op when disabled).
    pub fn record_render_ns(&self, ns: u64) {
        if self.is_enabled() {
            self.inner.render.record_ns(ns);
        }
    }

    /// The live exporter render-time histogram.
    pub fn render_times(&self) -> &Histogram {
        &self.inner.render
    }

    /// Marks one ingest session entering a lifecycle `state` (no-op when
    /// disabled). Pair with [`TelemetryRegistry::ingest_session_exit`];
    /// entering `Handshaking` also counts toward the sessions-ever-
    /// accepted total.
    pub fn ingest_session_enter(&self, state: IngestState) {
        if self.is_enabled() {
            self.inner.ingest_states[state.index()].fetch_add(1, Ordering::Relaxed);
            if state == IngestState::Handshaking {
                self.inner.ingest_accepted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Marks one ingest session leaving a lifecycle `state`. Saturating:
    /// an unpaired exit (e.g. telemetry toggled mid-session) clamps at
    /// zero rather than wrapping the gauge.
    pub fn ingest_session_exit(&self, state: IngestState) {
        if self.is_enabled() {
            let _ = self.inner.ingest_states[state.index()].fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| v.checked_sub(1),
            );
        }
    }

    /// Live ingest-session count in one lifecycle state.
    pub fn ingest_sessions(&self, state: IngestState) -> u64 {
        self.inner.ingest_states[state.index()].load(Ordering::Relaxed)
    }

    /// Sessions ever admitted to handshaking.
    pub fn ingest_accepted_total(&self) -> u64 {
        self.inner.ingest_accepted.load(Ordering::Relaxed)
    }

    /// Counts one session refused by the admission controller (no-op
    /// when disabled).
    pub fn record_ingest_shed(&self) {
        if self.is_enabled() {
            self.inner.ingest_shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sessions refused by the admission controller.
    pub fn ingest_shed_total(&self) -> u64 {
        self.inner.ingest_shed.load(Ordering::Relaxed)
    }

    /// Counts one terminal session disconnect by reason (no-op when
    /// disabled).
    pub fn record_ingest_disconnect(&self, reason: IngestDisconnect) {
        if self.is_enabled() {
            self.inner.ingest_disconnects[reason.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The running count for one disconnect reason.
    pub fn ingest_disconnect_count(&self, reason: IngestDisconnect) -> u64 {
        self.inner.ingest_disconnects[reason.index()].load(Ordering::Relaxed)
    }

    /// Counts `frames` accepted frames totalling `bytes` wire bytes off
    /// ingest sockets (no-op when disabled).
    pub fn record_ingest_frames(&self, frames: u64, bytes: u64) {
        if self.is_enabled() {
            self.inner.ingest_frames.fetch_add(frames, Ordering::Relaxed);
            self.inner.ingest_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Frames accepted off ingest sockets.
    pub fn ingest_frames_total(&self) -> u64 {
        self.inner.ingest_frames.load(Ordering::Relaxed)
    }

    /// Wire bytes accepted off ingest sockets.
    pub fn ingest_bytes_total(&self) -> u64 {
        self.inner.ingest_bytes.load(Ordering::Relaxed)
    }

    /// Marks one alarm condition entering `Warning`-or-worse: bumps the
    /// raised total and the active gauge for `kind` (no-op when
    /// disabled). Pair with [`TelemetryRegistry::record_alarm_cleared`].
    pub fn record_alarm_raised(&self, kind: AlarmKind) {
        if self.is_enabled() {
            self.inner.alarms_raised[kind.index()].fetch_add(1, Ordering::Relaxed);
            self.inner.alarms_active[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks one alarm condition returning to `Normal`: bumps the cleared
    /// total and decrements the active gauge. Saturating: an unpaired
    /// clear (telemetry toggled mid-episode) clamps the gauge at zero.
    pub fn record_alarm_cleared(&self, kind: AlarmKind) {
        if self.is_enabled() {
            self.inner.alarms_cleared[kind.index()].fetch_add(1, Ordering::Relaxed);
            let _ = self.inner.alarms_active[kind.index()].fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |v| v.checked_sub(1),
            );
        }
    }

    /// Alarms ever raised for one kind.
    pub fn alarm_raised_count(&self, kind: AlarmKind) -> u64 {
        self.inner.alarms_raised[kind.index()].load(Ordering::Relaxed)
    }

    /// Alarms ever cleared for one kind.
    pub fn alarm_cleared_count(&self, kind: AlarmKind) -> u64 {
        self.inner.alarms_cleared[kind.index()].load(Ordering::Relaxed)
    }

    /// Patients currently in `Warning`-or-worse for one kind.
    pub fn alarm_active_count(&self, kind: AlarmKind) -> u64 {
        self.inner.alarms_active[kind.index()].load(Ordering::Relaxed)
    }

    /// Counts one alarm evaluation suppressed because the window was
    /// concealed — concealed samples are the concealment heuristic's
    /// output, not the patient's rhythm (no-op when disabled).
    pub fn record_alarm_suppressed(&self) {
        if self.is_enabled() {
            self.inner.alarms_suppressed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Alarm evaluations suppressed on concealed windows.
    pub fn alarm_suppressed_total(&self) -> u64 {
        self.inner.alarms_suppressed.load(Ordering::Relaxed)
    }

    /// Counts one classified beat (no-op when disabled).
    pub fn record_beat(&self, class: BeatClass) {
        if self.is_enabled() {
            self.inner.beats[class.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Beats ever classified into one class.
    pub fn beat_count(&self, class: BeatClass) -> u64 {
        self.inner.beats[class.index()].load(Ordering::Relaxed)
    }

    /// Accumulates a QRS-detection scoring outcome against annotated
    /// ground truth (no-op when disabled). The exporters derive the
    /// sensitivity (`tp / (tp + fn)`) and positive predictivity
    /// (`tp / (tp + fp)`) panels from these totals.
    pub fn record_qrs_score(&self, true_pos: u64, false_pos: u64, false_neg: u64) {
        if self.is_enabled() {
            self.inner.qrs_true_positive.fetch_add(true_pos, Ordering::Relaxed);
            self.inner.qrs_false_positive.fetch_add(false_pos, Ordering::Relaxed);
            self.inner.qrs_false_negative.fetch_add(false_neg, Ordering::Relaxed);
        }
    }

    /// Accumulated `(true positives, false positives, false negatives)`
    /// from [`TelemetryRegistry::record_qrs_score`].
    pub fn qrs_confusion(&self) -> (u64, u64, u64) {
        (
            self.inner.qrs_true_positive.load(Ordering::Relaxed),
            self.inner.qrs_false_positive.load(Ordering::Relaxed),
            self.inner.qrs_false_negative.load(Ordering::Relaxed),
        )
    }

    /// A point-in-time copy of every aggregate the registry holds — what
    /// the exporters render.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (qrs_tp, qrs_fp, qrs_fn) = self.qrs_confusion();
        TelemetrySnapshot {
            uptime: self.uptime(),
            unix_time_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0.0, |d| d.as_secs_f64()),
            stages: Stage::ALL.map(|s| (s, self.stage(s).snapshot())),
            worker_packets: self.worker_packets(MAX_WORKERS),
            faults: FaultKind::ALL.map(|k| (k, self.fault_count(k))),
            archive_ops: ArchiveOp::ALL.map(|o| (o, self.archive_count(o))),
            batch_occupancy: self.inner.batch_occupancy.snapshot(),
            solver_iterations: SolverMode::ALL
                .map(|m| (m, self.inner.solver_iterations[m.index()].snapshot())),
            journal_len: self.inner.journal.len(),
            journal_pushed: self.inner.journal.pushed(),
            journal_dropped: self.inner.journal.dropped(),
            e2e: self
                .inner
                .e2e
                .iter()
                .enumerate()
                .filter(|(_, h)| h.count() > 0)
                .map(|(p, h)| (p, h.snapshot()))
                .collect(),
            slo: self.slo_snapshot(),
            scrapes: ScrapeEndpoint::ALL.map(|e| (e, self.scrape_count(e))),
            render_ns: self.inner.render.snapshot(),
            ingest_sessions: IngestState::ALL.map(|s| (s, self.ingest_sessions(s))),
            ingest_accepted: self.ingest_accepted_total(),
            ingest_shed: self.ingest_shed_total(),
            ingest_disconnects: IngestDisconnect::ALL
                .map(|r| (r, self.ingest_disconnect_count(r))),
            ingest_frames: self.ingest_frames_total(),
            ingest_bytes: self.ingest_bytes_total(),
            alarms: AlarmKind::ALL.map(|k| {
                (
                    k,
                    AlarmCounts {
                        raised: self.alarm_raised_count(k),
                        cleared: self.alarm_cleared_count(k),
                        active: self.alarm_active_count(k),
                    },
                )
            }),
            alarms_suppressed: self.alarm_suppressed_total(),
            beats: BeatClass::ALL.map(|c| (c, self.beat_count(c))),
            qrs_true_positive: qrs_tp,
            qrs_false_positive: qrs_fp,
            qrs_false_negative: qrs_fn,
        }
    }
}

/// A point-in-time copy of the registry's aggregates.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Time since registry creation.
    pub uptime: Duration,
    /// Absolute wall-clock seconds since the Unix epoch at snapshot
    /// time (0.0 if the system clock predates the epoch).
    pub unix_time_s: f64,
    /// Per-stage latency histograms, in [`Stage::ALL`] order.
    pub stages: [(Stage, HistogramSnapshot); Stage::COUNT],
    /// Packets decoded per worker slot (length [`MAX_WORKERS`]).
    pub worker_packets: Vec<u64>,
    /// Per-kind fault counts, in [`FaultKind::ALL`] order.
    pub faults: [(FaultKind, u64); FaultKind::COUNT],
    /// Per-op archive counts, in [`ArchiveOp::ALL`] order.
    pub archive_ops: [(ArchiveOp, u64); ArchiveOp::COUNT],
    /// Batched-solve lane-occupancy distribution (raw widths).
    pub batch_occupancy: HistogramSnapshot,
    /// Per-mode solver iteration distributions (raw iteration counts), in
    /// [`SolverMode::ALL`] order.
    pub solver_iterations: [(SolverMode, HistogramSnapshot); SolverMode::COUNT],
    /// Traces currently buffered in the journal.
    pub journal_len: usize,
    /// Traces ever offered to the journal.
    pub journal_pushed: u64,
    /// Traces lost to overflow or contention.
    pub journal_dropped: u64,
    /// Per-patient end-to-end latency histograms, active slots only.
    pub e2e: Vec<(usize, HistogramSnapshot)>,
    /// Derived per-patient SLO state at snapshot time.
    pub slo: SloSnapshot,
    /// Per-endpoint HTTP scrape counts, in [`ScrapeEndpoint::ALL`] order.
    pub scrapes: [(ScrapeEndpoint, u64); ScrapeEndpoint::COUNT],
    /// Exporter render-time distribution (self-observation; lags the
    /// current render by one scrape).
    pub render_ns: HistogramSnapshot,
    /// Live ingest-session counts per lifecycle state, in
    /// [`IngestState::ALL`] order.
    pub ingest_sessions: [(IngestState, u64); IngestState::COUNT],
    /// Sessions ever admitted to handshaking.
    pub ingest_accepted: u64,
    /// Sessions refused by the admission controller.
    pub ingest_shed: u64,
    /// Terminal session disconnects by reason, in
    /// [`IngestDisconnect::ALL`] order.
    pub ingest_disconnects: [(IngestDisconnect, u64); IngestDisconnect::COUNT],
    /// Frames accepted off ingest sockets.
    pub ingest_frames: u64,
    /// Wire bytes accepted off ingest sockets.
    pub ingest_bytes: u64,
    /// Per-kind alarm accounting, in [`AlarmKind::ALL`] order.
    pub alarms: [(AlarmKind, AlarmCounts); AlarmKind::COUNT],
    /// Alarm evaluations suppressed on concealed windows.
    pub alarms_suppressed: u64,
    /// Classified beats per class, in [`BeatClass::ALL`] order.
    pub beats: [(BeatClass, u64); BeatClass::COUNT],
    /// QRS detections matching an annotated beat.
    pub qrs_true_positive: u64,
    /// QRS detections matching no annotated beat.
    pub qrs_false_positive: u64,
    /// Annotated beats no detection matched.
    pub qrs_false_negative: u64,
}

/// Alarm totals and the live gauge for one [`AlarmKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlarmCounts {
    /// Episodes ever entering `Warning`-or-worse.
    pub raised: u64,
    /// Episodes ever returning to `Normal`.
    pub cleared: u64,
    /// Patients currently in `Warning`-or-worse.
    pub active: u64,
}

impl TelemetrySnapshot {
    /// The snapshot histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()].1
    }

    /// The snapshot count for one fault kind.
    pub fn fault(&self, kind: FaultKind) -> u64 {
        self.faults[kind.index()].1
    }

    /// The snapshot count for one archive operation.
    pub fn archive(&self, op: ArchiveOp) -> u64 {
        self.archive_ops[op.index()].1
    }

    /// The snapshot alarm accounting for one kind.
    pub fn alarm(&self, kind: AlarmKind) -> AlarmCounts {
        self.alarms[kind.index()].1
    }

    /// The snapshot beat count for one class.
    pub fn beat(&self, class: BeatClass) -> u64 {
        self.beats[class.index()].1
    }

    /// QRS sensitivity `tp / (tp + fn)`, or `None` before any annotated
    /// beat has been scored.
    pub fn qrs_sensitivity(&self) -> Option<f64> {
        let denom = self.qrs_true_positive + self.qrs_false_negative;
        (denom > 0).then(|| self.qrs_true_positive as f64 / denom as f64)
    }

    /// QRS positive predictivity `tp / (tp + fp)`, or `None` before any
    /// detection has been scored.
    pub fn qrs_ppv(&self) -> Option<f64> {
        let denom = self.qrs_true_positive + self.qrs_false_positive;
        (denom > 0).then(|| self.qrs_true_positive as f64 / denom as f64)
    }
}

/// RAII guard timing one stage execution; see
/// [`TelemetryRegistry::span`].
///
/// When the owning registry is disabled at entry the guard holds no
/// timestamp and its drop is a no-op — the whole span costs one relaxed
/// atomic load.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a TelemetryRegistry,
    stage: Stage,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Enters a span over `stage` against `registry`.
    #[inline]
    pub fn enter(registry: &'a TelemetryRegistry, stage: Stage) -> Self {
        let start = registry.is_enabled().then(Instant::now);
        Span { registry, stage, start }
    }

    /// The stage being timed.
    pub fn stage(&self) -> Stage {
        self.stage
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Bypass the enabled re-check: the decision was made at entry
            // so a mid-span disable cannot strand a half-recorded pair.
            self.registry.inner.stages[self.stage.index()].record_ns(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_stage_histogram() {
        let reg = TelemetryRegistry::new();
        for _ in 0..3 {
            let _span = reg.span(Stage::HuffmanEncode);
        }
        assert_eq!(reg.stage(Stage::HuffmanEncode).count(), 3);
        assert_eq!(reg.stage(Stage::FistaSolve).count(), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = TelemetryRegistry::new();
        reg.set_enabled(false);
        drop(reg.span(Stage::FistaSolve));
        reg.record_worker_packet(0);
        reg.record_solve(SolveTrace::default());
        reg.record_stage_ns(Stage::FistaSolve, 99);
        assert_eq!(reg.stage(Stage::FistaSolve).count(), 0);
        assert_eq!(reg.worker_packets(1), vec![0]);
        assert_eq!(reg.journal().pushed(), 0);
    }

    #[test]
    fn disabled_singleton_is_shared_and_off() {
        let a = TelemetryRegistry::disabled();
        let b = TelemetryRegistry::disabled();
        assert!(!a.is_enabled());
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn worker_ids_fold_modulo_capacity() {
        let reg = TelemetryRegistry::new();
        reg.record_worker_packet(1);
        reg.record_worker_packet(1 + MAX_WORKERS);
        assert_eq!(reg.worker_packets(2), vec![0, 2]);
    }

    #[test]
    fn fault_counters_count_and_snapshot() {
        let reg = TelemetryRegistry::new();
        reg.record_fault(FaultKind::ConcealedLoss);
        reg.record_fault(FaultKind::ConcealedLoss);
        reg.record_fault(FaultKind::WorkerRestart);
        assert_eq!(reg.fault_count(FaultKind::ConcealedLoss), 2);
        assert_eq!(reg.fault_count(FaultKind::Quarantined), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.fault(FaultKind::ConcealedLoss), 2);
        assert_eq!(snap.fault(FaultKind::WorkerRestart), 1);

        let off = TelemetryRegistry::new();
        off.set_enabled(false);
        off.record_fault(FaultKind::Duplicate);
        assert_eq!(off.fault_count(FaultKind::Duplicate), 0);
    }

    #[test]
    fn batch_occupancy_records_raw_widths() {
        let reg = TelemetryRegistry::new();
        reg.record_batch_occupancy(4);
        reg.record_batch_occupancy(8);
        assert_eq!(reg.batch_occupancy().count(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.batch_occupancy.count(), 2);
        assert_eq!(snap.batch_occupancy.sum_ns(), 12);

        let off = TelemetryRegistry::new();
        off.set_enabled(false);
        off.record_batch_occupancy(4);
        assert_eq!(off.batch_occupancy().count(), 0);
    }

    #[test]
    fn record_emit_measures_e2e_and_feeds_the_slo() {
        let reg = TelemetryRegistry::with_slo_config(SloConfig {
            deadline: Duration::from_millis(5),
            ..SloConfig::default()
        });
        let ctx = TraceContext::new(3, 1, 7, reg.now_ns());
        let rec = reg.record_emit(&ctx).expect("enabled registry records");
        assert!(!rec.deadline_missed, "fresh emit is inside a 5 ms budget");
        assert_eq!(reg.e2e(3).count(), 1);

        // A capture stamp from the registry's birth, emitted after the
        // budget has elapsed, busts the deadline.
        std::thread::sleep(Duration::from_millis(10));
        let stale = TraceContext::new(3, 1, 8, 0);
        let rec = reg.record_emit(&stale).unwrap();
        assert!(rec.deadline_missed);
        assert!(rec.e2e_ns >= 5_000_000);

        let snap = reg.snapshot();
        assert_eq!(snap.e2e.len(), 1);
        assert_eq!(snap.e2e[0].0, 3);
        assert_eq!(snap.e2e[0].1.count(), 2);
        assert_eq!(snap.slo.patients.len(), 1);
        assert_eq!(snap.slo.patients[0].deadline_misses, 1);
        assert_eq!(snap.slo.patients[0].lanes[0].newest_seq, 8);
    }

    #[test]
    fn disabled_registry_ignores_emits_and_scrapes() {
        let reg = TelemetryRegistry::new();
        reg.set_enabled(false);
        let ctx = TraceContext::new(0, 0, 0, 0);
        assert!(reg.record_emit(&ctx).is_none());
        reg.record_scrape(ScrapeEndpoint::Metrics);
        reg.record_render_ns(55);
        assert_eq!(reg.e2e(0).count(), 0);
        assert_eq!(reg.scrape_count(ScrapeEndpoint::Metrics), 0);
        assert_eq!(reg.render_times().count(), 0);
        assert!(reg.slo_snapshot().patients.is_empty());
    }

    #[test]
    fn snapshot_stamps_wall_clock_time() {
        let snap = TelemetryRegistry::new().snapshot();
        // Any plausible current date is far past 2020-01-01.
        assert!(snap.unix_time_s > 1_577_836_800.0, "{}", snap.unix_time_s);
    }

    #[test]
    fn custom_slo_config_is_honored() {
        let reg = TelemetryRegistry::with_slo_config(SloConfig {
            deadline: Duration::ZERO,
            ..SloConfig::default()
        });
        let ctx = TraceContext::new(0, 0, 0, reg.now_ns());
        let rec = reg.record_emit(&ctx).unwrap();
        assert!(rec.deadline_missed, "a zero budget makes every emit late");
        assert_eq!(reg.slo_config().deadline, Duration::ZERO);
    }

    #[test]
    fn alarm_counters_pair_and_gauge() {
        let reg = TelemetryRegistry::new();
        reg.record_alarm_raised(AlarmKind::Tachycardia);
        reg.record_alarm_raised(AlarmKind::Tachycardia);
        reg.record_alarm_cleared(AlarmKind::Tachycardia);
        reg.record_alarm_suppressed();
        reg.record_beat(BeatClass::Pvc);
        reg.record_beat(BeatClass::Normal);
        reg.record_qrs_score(19, 1, 1);
        let snap = reg.snapshot();
        let tachy = snap.alarm(AlarmKind::Tachycardia);
        assert_eq!(tachy.raised, 2);
        assert_eq!(tachy.cleared, 1);
        assert_eq!(tachy.active, 1);
        assert_eq!(snap.alarm(AlarmKind::Asystole), AlarmCounts::default());
        assert_eq!(snap.alarms_suppressed, 1);
        assert_eq!(snap.beat(BeatClass::Pvc), 1);
        assert_eq!(snap.beat(BeatClass::Apc), 0);
        assert!((snap.qrs_sensitivity().unwrap() - 0.95).abs() < 1e-12);
        assert!((snap.qrs_ppv().unwrap() - 0.95).abs() < 1e-12);

        // An unpaired clear clamps the gauge instead of wrapping it.
        reg.record_alarm_cleared(AlarmKind::Tachycardia);
        reg.record_alarm_cleared(AlarmKind::Tachycardia);
        assert_eq!(reg.alarm_active_count(AlarmKind::Tachycardia), 0);

        let off = TelemetryRegistry::new();
        off.set_enabled(false);
        off.record_alarm_raised(AlarmKind::Asystole);
        off.record_beat(BeatClass::Apc);
        off.record_qrs_score(1, 0, 0);
        assert_eq!(off.alarm_raised_count(AlarmKind::Asystole), 0);
        assert_eq!(off.beat_count(BeatClass::Apc), 0);
        assert!(off.snapshot().qrs_sensitivity().is_none());
        assert!(off.snapshot().qrs_ppv().is_none());
    }

    #[test]
    fn snapshot_carries_journal_accounting() {
        let reg = TelemetryRegistry::with_journal_capacity(2);
        for seq in 0..3 {
            reg.record_solve(SolveTrace { seq, ..SolveTrace::default() });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.journal_pushed, 3);
        assert_eq!(snap.journal_dropped, 1);
        assert_eq!(snap.journal_len, 2);
    }
}
