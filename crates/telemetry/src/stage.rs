//! The pipeline stage taxonomy.
//!
//! One label per distinct unit of work in the encode → transport → decode
//! path (Fig. 1 of the paper plus the fleet collector). The set is closed
//! and small on purpose: per-stage storage in the registry is a fixed
//! array indexed by [`Stage::index`], so adding a stage is a one-line
//! change here and costs one histogram.

/// A pipeline stage, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Mote: the sparse binary CS projection `y = Φx` (integer
    /// gather-add).
    SensingProjection,
    /// Mote: inter-packet redundancy removal (DPCM differencing and the
    /// adaptive gain shift).
    DiffEncode,
    /// Mote: entropy coding of the difference symbols (Huffman) or the
    /// raw reference write.
    HuffmanEncode,
    /// Mote: wire assembly — header, payload finalization, lane tagging
    /// and frame windowing.
    Packetize,
    /// Coordinator: entropy decode of the payload back into symbols.
    HuffmanDecode,
    /// Coordinator: redundancy reinsertion (DPCM accumulation back to the
    /// measurement vector).
    DiffDecode,
    /// Coordinator: the FISTA solve of Eq. (3) — the dominant cost; its
    /// per-solve iteration count and final residual additionally land in
    /// the event journal.
    FistaSolve,
    /// Coordinator: one K-wide batched (MMV) FISTA solve amortizing the
    /// operator's index walks across grouped lanes; the batch width
    /// additionally lands in the `cs_batch_occupancy` histogram.
    BatchSolve,
    /// Coordinator: the inverse wavelet transform `x̂ = Ψᵀα` back to
    /// samples.
    WaveletSynthesis,
    /// Collector: per-stream in-order reassembly and delivery in the
    /// fleet engine.
    Reassembly,
    /// Ingest: frame validation (magic/version/CRC/kind) before any
    /// payload byte is interpreted.
    IngestValidate,
    /// Coordinator: re-synthesizing a lost window from the previous
    /// window's retained wavelet coefficients.
    Concealment,
    /// Archive: appending one wire frame to the durable segmented store
    /// (write-before-decode, so the span sits ahead of IngestValidate on
    /// the archived path).
    ArchiveAppend,
    /// Archive: reading frames back out of the store for decode-on-read
    /// replay (recovery scan, index seek and record iteration).
    ArchiveReplay,
    /// Fleet: time a job spent parked in the bounded worker queue between
    /// packetize/ingest and the moment a worker dequeued it — queue
    /// pressure, as distinct from solver cost.
    QueueWait,
    /// Fleet: time a staged lane waited for batchmates under the bounded
    /// partial-batch linger before the fused MMV solve fired (zero on the
    /// sequential path).
    BatchLinger,
    /// Collector: time between a worker finishing a packet and the
    /// in-order collector delivering it to the consumer — reorder-buffer
    /// dwell plus collector queueing.
    EmitDeliver,
}

impl Stage {
    /// Number of stages (the registry's per-stage array length).
    pub const COUNT: usize = 17;

    /// Every stage, in wire order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::SensingProjection,
        Stage::DiffEncode,
        Stage::HuffmanEncode,
        Stage::Packetize,
        Stage::HuffmanDecode,
        Stage::DiffDecode,
        Stage::FistaSolve,
        Stage::BatchSolve,
        Stage::WaveletSynthesis,
        Stage::Reassembly,
        Stage::IngestValidate,
        Stage::Concealment,
        Stage::ArchiveAppend,
        Stage::ArchiveReplay,
        Stage::QueueWait,
        Stage::BatchLinger,
        Stage::EmitDeliver,
    ];

    /// Dense index into per-stage arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus `stage` label and
    /// the JSON-Lines `stage` field.
    pub fn name(self) -> &'static str {
        match self {
            Stage::SensingProjection => "sensing_projection",
            Stage::DiffEncode => "diff_encode",
            Stage::HuffmanEncode => "huffman_encode",
            Stage::Packetize => "packetize",
            Stage::HuffmanDecode => "huffman_decode",
            Stage::DiffDecode => "diff_decode",
            Stage::FistaSolve => "fista_solve",
            Stage::BatchSolve => "batch_solve",
            Stage::WaveletSynthesis => "wavelet_synthesis",
            Stage::Reassembly => "reassembly",
            Stage::IngestValidate => "ingest_validate",
            Stage::Concealment => "concealment",
            Stage::ArchiveAppend => "archive_append",
            Stage::ArchiveReplay => "archive_replay",
            Stage::QueueWait => "queue_wait",
            Stage::BatchLinger => "batch_linger",
            Stage::EmitDeliver => "emit_deliver",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
