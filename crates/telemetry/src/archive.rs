//! The archive operation taxonomy.
//!
//! One label per distinct durable-store operation, mirroring the shape of
//! [`crate::FaultKind`]: a closed, small set whose per-op storage in the
//! registry is a fixed atomic-counter array indexed by
//! [`ArchiveOp::index`], so counting an operation is one relaxed
//! increment and the exporters can always emit the full family
//! (`cs_archive_total{op=…}`).

/// A durable-store operation, in lifecycle order (write → seal → recover
/// → read → retire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchiveOp {
    /// One wire frame appended to a segment.
    Append,
    /// One segment sealed (footer + sparse index written) at rotation or
    /// close.
    Seal,
    /// One segment recovery-scanned at open (the unsealed-tail path).
    Recover,
    /// One torn tail record truncated during a recovery scan.
    TornTail,
    /// One frame yielded by a replay iterator.
    Replay,
    /// One segment deleted by retention compaction.
    Compact,
}

impl ArchiveOp {
    /// Number of operations (the registry's counter-array length).
    pub const COUNT: usize = 6;

    /// Every op, in lifecycle order.
    pub const ALL: [ArchiveOp; ArchiveOp::COUNT] = [
        ArchiveOp::Append,
        ArchiveOp::Seal,
        ArchiveOp::Recover,
        ArchiveOp::TornTail,
        ArchiveOp::Replay,
        ArchiveOp::Compact,
    ];

    /// Dense index into per-op arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the Prometheus `op` label and the
    /// JSON-Lines key.
    pub fn name(self) -> &'static str {
        match self {
            ArchiveOp::Append => "append",
            ArchiveOp::Seal => "seal",
            ArchiveOp::Recover => "recover",
            ArchiveOp::TornTail => "torn_tail",
            ArchiveOp::Replay => "replay",
            ArchiveOp::Compact => "compact",
        }
    }
}

impl std::fmt::Display for ArchiveOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, op) in ArchiveOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        assert_eq!(ArchiveOp::ALL.len(), ArchiveOp::COUNT);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut names: Vec<&str> = ArchiveOp::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ArchiveOp::COUNT);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
