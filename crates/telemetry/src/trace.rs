//! Per-packet trace context: identity plus a capture timestamp.
//!
//! End-to-end latency cannot be reconstructed from per-stage histograms —
//! queue dwell between stages is invisible to spans that only bracket
//! work. The [`TraceContext`] closes the gap: a packetize-time monotonic
//! timestamp rides alongside the packet identity through every queue,
//! reorder buffer, and batch scheduler, and the collector turns it into
//! one `cs_e2e_latency_seconds` observation at emit time via
//! [`TelemetryRegistry::record_emit`](crate::TelemetryRegistry::record_emit).
//!
//! The context is 24 bytes of `Copy` data — cheap enough to embed in
//! every job and channel message unconditionally. When telemetry is
//! disabled the capture timestamp is simply 0 and nothing downstream
//! reads it.

use crate::journal::SolveTrace;
use std::fmt::Write as _;

/// Identity and capture time of one packet in flight.
///
/// `captured_ns` is nanoseconds on the owning registry's monotonic clock
/// ([`TelemetryRegistry::now_ns`](crate::TelemetryRegistry::now_ns)) at
/// packetize/ingest time — the instant the encoded frame entered the
/// decode system. Timestamps from different registries are not
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Fleet stream (patient) index.
    pub stream: u32,
    /// Lead/lane index within the stream.
    pub lane: u8,
    /// Packet sequence index within the stream.
    pub seq: u64,
    /// Monotonic capture timestamp in registry nanoseconds (0 when the
    /// registry was disabled at capture).
    pub captured_ns: u64,
}

impl TraceContext {
    /// A context for `stream`/`lane`/`seq` captured at `captured_ns`.
    pub fn new(stream: u32, lane: u8, seq: u64, captured_ns: u64) -> Self {
        TraceContext { stream, lane, seq, captured_ns }
    }
}

/// What [`TelemetryRegistry::record_emit`](crate::TelemetryRegistry::record_emit)
/// measured for one delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitRecord {
    /// Capture-to-emit latency in nanoseconds.
    pub e2e_ns: u64,
    /// Whether the latency exceeded the configured deadline budget.
    pub deadline_missed: bool,
}

/// Maximum traces rendered by [`tracez_json`]; older traces are elided.
pub const TRACEZ_LIMIT: usize = 256;

/// Renders recent journal traces as a JSON document for `GET /tracez`.
///
/// Output shape: `{"traces":[{"stream":…,"lane":…,"seq":…,
/// "iterations":…,"residual":…,"solve_ns":…,"warm_started":…,
/// "converged":…},…],"total":N}` — newest-last, at most
/// [`TRACEZ_LIMIT`] entries, `total` counting everything offered.
pub fn tracez_json(traces: &[SolveTrace]) -> String {
    let start = traces.len().saturating_sub(TRACEZ_LIMIT);
    let mut out = String::from("{\"traces\":[");
    for (i, t) in traces[start..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stream\":{},\"lane\":{},\"seq\":{},\"iterations\":{},\"residual\":{:.6e},\"solve_ns\":{},\"warm_started\":{},\"converged\":{}}}",
            t.stream, t.channel, t.seq, t.iterations, t.residual, t.solve_ns, t.warm_started, t.converged
        );
    }
    let _ = write!(out, "],\"total\":{}}}", traces.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_copy_and_small() {
        let ctx = TraceContext::new(3, 1, 42, 1_000);
        let copied = ctx;
        assert_eq!(ctx, copied);
        assert!(std::mem::size_of::<TraceContext>() <= 24);
    }

    #[test]
    fn tracez_renders_traces_and_total() {
        let traces = vec![
            SolveTrace { stream: 1, channel: 0, seq: 7, iterations: 12, ..SolveTrace::default() },
            SolveTrace { stream: 2, channel: 1, seq: 8, converged: true, ..SolveTrace::default() },
        ];
        let json = tracez_json(&traces);
        assert!(json.starts_with("{\"traces\":["));
        assert!(json.contains("\"stream\":1,\"lane\":0,\"seq\":7,\"iterations\":12"));
        assert!(json.contains("\"converged\":true"));
        assert!(json.ends_with("\"total\":2}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn tracez_caps_at_limit_keeping_newest() {
        let traces: Vec<SolveTrace> = (0..TRACEZ_LIMIT as u64 + 10)
            .map(|seq| SolveTrace { seq, ..SolveTrace::default() })
            .collect();
        let json = tracez_json(&traces);
        assert!(!json.contains("\"seq\":9,"), "oldest traces elided");
        assert!(json.contains(&format!("\"seq\":{}", TRACEZ_LIMIT + 9)));
        assert!(json.ends_with(&format!("\"total\":{}}}", TRACEZ_LIMIT + 10)));
    }

    #[test]
    fn tracez_empty_is_well_formed() {
        assert_eq!(tracez_json(&[]), "{\"traces\":[],\"total\":0}");
    }
}
