//! A minimal abstraction over IEEE-754 floating-point types.
//!
//! The reconstruction side of the CS-ECG system runs in 32-bit floats on the
//! coordinator (the paper's iPhone decoder) while the reference design runs
//! in 64-bit (the paper's Matlab implementation, Fig. 6). Every numeric
//! routine in this workspace that participates in that comparison is generic
//! over [`Real`] so the *same* code path can be instantiated at both
//! precisions.
//!
//! The trait is deliberately small: it contains exactly the operations the
//! wavelet transforms, FIR filters and sparse-recovery solvers need, and
//! nothing else. It is sealed — only `f32` and `f64` implement it.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// An IEEE-754 floating-point scalar (`f32` or `f64`).
///
/// # Examples
///
/// ```
/// use cs_dsp::Real;
///
/// fn norm<T: Real>(v: &[T]) -> T {
///     v.iter().map(|&x| x * x).sum::<T>().sqrt()
/// }
///
/// assert_eq!(norm(&[3.0_f64, 4.0]), 5.0);
/// assert_eq!(norm(&[3.0_f32, 4.0]), 5.0);
/// ```
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
    + sealed::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The value 2.
    const TWO: Self;
    /// One half.
    const HALF: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Positive infinity.
    const INFINITY: Self;
    /// Archimedes' constant.
    const PI: Self;

    /// Converts from `f64`, rounding to the target precision.
    fn from_f64(v: f64) -> Self;
    /// Converts from `usize` exactly when representable.
    fn from_usize(v: usize) -> Self;
    /// Widens to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Base-10 logarithm.
    fn log10(self) -> Self;
    /// Raises `self` to a floating-point power.
    fn powf(self, e: Self) -> Self;
    /// Raises `self` to an integer power.
    fn powi(self, e: i32) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Four-quadrant arctangent of `self / other`.
    fn atan2(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// Returns `true` if the value is finite.
    fn is_finite(self) -> bool;
    /// Returns `true` if the value is NaN.
    fn is_nan(self) -> bool;
    /// Rounds half away from zero.
    fn round(self) -> Self;
    /// Largest integer value not greater than `self`.
    fn floor(self) -> Self;
    /// Returns a number composed of the magnitude of `self` and the sign of `sign`.
    fn copysign(self, sign: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const EPSILON: Self = <$t>::EPSILON;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const INFINITY: Self = <$t>::INFINITY;
            const PI: Self = std::f64::consts::PI as $t;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn log10(self) -> Self {
                <$t>::log10(self)
            }
            #[inline]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }
            #[inline]
            fn powi(self, e: i32) -> Self {
                <$t>::powi(self, e)
            }
            #[inline]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline]
            fn atan2(self, other: Self) -> Self {
                <$t>::atan2(self, other)
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline]
            fn round(self) -> Self {
                <$t>::round(self)
            }
            #[inline]
            fn floor(self) -> Self {
                <$t>::floor(self)
            }
            #[inline]
            fn copysign(self, sign: Self) -> Self {
                <$t>::copysign(self, sign)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

/// Euclidean (ℓ2) norm of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(cs_dsp::l2_norm(&[3.0_f64, 4.0]), 5.0);
/// ```
#[inline]
pub fn l2_norm<T: Real>(v: &[T]) -> T {
    v.iter().map(|&x| x * x).sum::<T>().sqrt()
}

/// ℓ1 norm (sum of absolute values) of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(cs_dsp::l1_norm(&[-1.0_f64, 2.0, -3.0]), 6.0);
/// ```
#[inline]
pub fn l1_norm<T: Real>(v: &[T]) -> T {
    v.iter().map(|&x| x.abs()).sum()
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(cs_dsp::dot(&[1.0_f64, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(<f64 as Real>::PI, std::f64::consts::PI);
        assert_eq!(<f32 as Real>::PI, std::f32::consts::PI);
        assert_eq!(<f64 as Real>::EPSILON, f64::EPSILON);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 1.5_f64;
        assert_eq!(<f32 as Real>::from_f64(x).to_f64(), 1.5);
        assert_eq!(<f64 as Real>::from_usize(7), 7.0);
    }

    #[test]
    fn norms() {
        assert!((l2_norm(&[1.0_f64, 2.0, 2.0]) - 3.0).abs() < 1e-12);
        assert_eq!(l1_norm(&[0.0_f32; 4]), 0.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0_f64], &[1.0, 2.0]);
    }

    #[test]
    fn generic_instantiation_both_precisions() {
        fn soft<T: Real>(x: T, t: T) -> T {
            (x.abs() - t).max(T::ZERO).copysign(x)
        }
        assert_eq!(soft(3.0_f64, 1.0), 2.0);
        assert_eq!(soft(-3.0_f32, 1.0), -2.0);
        assert_eq!(soft(0.5_f64, 1.0), 0.0);
    }
}
