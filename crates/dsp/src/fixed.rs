//! Q15 fixed-point arithmetic for the mote-side encoder model.
//!
//! The ShimmerTM mote's MSP430F1611 has a 16-bit ALU, a hardware multiplier
//! and **no FPU** (paper §IV-A1), so everything the encoder computes must be
//! integer or fixed-point. [`Q15`] models the signed 1.15 format the
//! MSP430's hardware multiplier natively supports, with saturating
//! arithmetic — the behaviour embedded DSP code relies on to avoid wraparound
//! glitches in the ECG stream.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A signed fixed-point number in Q1.15 format (range `[−1, 1 − 2⁻¹⁵]`).
///
/// All arithmetic saturates instead of wrapping.
///
/// # Examples
///
/// ```
/// use cs_dsp::fixed::Q15;
///
/// let a = Q15::from_f64(0.5);
/// let b = Q15::from_f64(0.25);
/// assert!((Q15::to_f64(a * b) - 0.125).abs() < 1e-4);
/// assert_eq!(Q15::MAX + Q15::MAX, Q15::MAX); // saturation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q15(i16);

impl Q15 {
    /// The most positive representable value, `1 − 2⁻¹⁵`.
    pub const MAX: Q15 = Q15(i16::MAX);
    /// The most negative representable value, `−1`.
    pub const MIN: Q15 = Q15(i16::MIN);
    /// Zero.
    pub const ZERO: Q15 = Q15(0);
    /// The scaling factor `2¹⁵`.
    pub const SCALE: f64 = 32768.0;

    /// Creates a value from its raw two's-complement bits.
    pub const fn from_bits(bits: i16) -> Self {
        Q15(bits)
    }

    /// The raw two's-complement bits.
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f64`, saturating to the representable range and
    /// rounding to nearest.
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * Self::SCALE).round();
        if scaled >= i16::MAX as f64 {
            Q15::MAX
        } else if scaled <= i16::MIN as f64 {
            Q15::MIN
        } else {
            Q15(scaled as i16)
        }
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE
    }

    /// Saturating fixed-point multiply-accumulate `self + a·b`, the MSP430
    /// hardware-multiplier primitive the sparse-sensing inner loop uses.
    pub fn mac(self, a: Q15, b: Q15) -> Q15 {
        let prod = (a.0 as i32 * b.0 as i32) >> 15;
        saturate(self.0 as i32 + prod)
    }

    /// Absolute value, saturating (`|MIN|` clamps to `MAX`).
    pub fn abs(self) -> Q15 {
        if self.0 == i16::MIN {
            Q15::MAX
        } else {
            Q15(self.0.abs())
        }
    }
}

fn saturate(v: i32) -> Q15 {
    if v > i16::MAX as i32 {
        Q15::MAX
    } else if v < i16::MIN as i32 {
        Q15::MIN
    } else {
        Q15(v as i16)
    }
}

impl Add for Q15 {
    type Output = Q15;
    fn add(self, o: Q15) -> Q15 {
        saturate(self.0 as i32 + o.0 as i32)
    }
}

impl Sub for Q15 {
    type Output = Q15;
    fn sub(self, o: Q15) -> Q15 {
        saturate(self.0 as i32 - o.0 as i32)
    }
}

impl Mul for Q15 {
    type Output = Q15;
    fn mul(self, o: Q15) -> Q15 {
        saturate((self.0 as i32 * o.0 as i32) >> 15)
    }
}

impl Neg for Q15 {
    type Output = Q15;
    fn neg(self) -> Q15 {
        saturate(-(self.0 as i32))
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

impl From<Q15> for f64 {
    fn from(v: Q15) -> f64 {
        v.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_representable_values() {
        for bits in [-32768_i16, -1, 0, 1, 12345, 32767] {
            let q = Q15::from_bits(bits);
            assert_eq!(Q15::from_f64(q.to_f64()), q);
        }
    }

    #[test]
    fn saturating_add_sub() {
        assert_eq!(Q15::MAX + Q15::from_f64(0.5), Q15::MAX);
        assert_eq!(Q15::MIN - Q15::from_f64(0.5), Q15::MIN);
        assert_eq!(-Q15::MIN, Q15::MAX); // |−1| saturates to 1−2⁻¹⁵
    }

    #[test]
    fn multiply_shrinks_magnitude() {
        let half = Q15::from_f64(0.5);
        let q = half * half;
        assert!((q.to_f64() - 0.25).abs() < 1e-4);
    }

    #[test]
    fn mac_matches_mul_then_add() {
        let acc = Q15::from_f64(0.1);
        let a = Q15::from_f64(0.3);
        let b = Q15::from_f64(-0.7);
        let via_mac = acc.mac(a, b);
        let via_ops = acc + a * b;
        assert!((via_mac.to_f64() - via_ops.to_f64()).abs() < 2.0 / Q15::SCALE);
    }

    #[test]
    fn display_format() {
        assert_eq!(Q15::from_f64(0.5).to_string(), "0.50000");
    }

    proptest! {
        #[test]
        fn prop_from_f64_saturates(v in -4.0_f64..4.0) {
            let q = Q15::from_f64(v).to_f64();
            prop_assert!((-1.0..=1.0).contains(&q));
            if (-0.999..0.999).contains(&v) {
                prop_assert!((q - v).abs() <= 0.5 / Q15::SCALE + 1e-12);
            }
        }

        #[test]
        fn prop_add_close_to_real_add(a in -0.4_f64..0.4, b in -0.4_f64..0.4) {
            let q = Q15::from_f64(a) + Q15::from_f64(b);
            prop_assert!((q.to_f64() - (a + b)).abs() < 2.0 / Q15::SCALE);
        }

        #[test]
        fn prop_mul_close_to_real_mul(a in -1.0_f64..1.0, b in -1.0_f64..1.0) {
            let q = Q15::from_f64(a) * Q15::from_f64(b);
            // Truncating multiply: error bounded by ~2 ULP.
            prop_assert!((q.to_f64() - a * b).abs() < 3.0 / Q15::SCALE);
        }
    }
}
