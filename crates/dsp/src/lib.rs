//! # cs-dsp — DSP substrate for the CS-ECG monitoring system
//!
//! This crate implements, from scratch, every signal-processing primitive
//! the DATE 2011 compressed-sensing ECG monitor needs:
//!
//! * [`wavelet`] — orthonormal wavelet filter banks (Daubechies, Symlets)
//!   built by spectral factorization, plus a periodized, matrix-free,
//!   exactly-orthonormal multi-level DWT ([`wavelet::Dwt`]). This is the
//!   sparsifying basis Ψ of the paper's reconstruction problem.
//! * [`fir`] — linear convolution, streaming FIR filters and windowed-sinc
//!   low-pass design, used by the rational resampler that feeds the mote
//!   256 Hz samples.
//! * [`window`] — Hann/Hamming/Blackman/Kaiser windows for FIR design.
//! * [`fixed`] — saturating Q1.15 arithmetic modeling the MSP430's 16-bit,
//!   FPU-less encoder environment.
//! * [`Real`] — a sealed `f32`/`f64` abstraction so the whole decode path
//!   can be instantiated at both precisions (the paper's Fig. 6 comparison
//!   of the 64-bit Matlab reference against the 32-bit iPhone port).
//!
//! ## Example: sparsifying an ECG-like signal
//!
//! ```
//! use cs_dsp::wavelet::{Dwt, Wavelet};
//!
//! // A quasi-periodic signal with sharp spikes, like an ECG.
//! let x: Vec<f64> = (0..512)
//!     .map(|i| {
//!         let phase = (i % 128) as f64 / 128.0;
//!         (-((phase - 0.3) * 30.0).powi(2)).exp()
//!     })
//!     .collect();
//!
//! let dwt: Dwt<f64> = Dwt::new(&Wavelet::daubechies(4)?, 512, 5)?;
//! let coeffs = dwt.analyze(&x);
//!
//! // Most energy concentrates in a few coefficients.
//! let total: f64 = coeffs.iter().map(|c| c * c).sum();
//! let mut mags: Vec<f64> = coeffs.iter().map(|c| c * c).collect();
//! mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
//! let top64: f64 = mags[..64].iter().sum();
//! assert!(top64 / total > 0.99);
//! # Ok::<(), cs_dsp::DspError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod fir;
pub mod fixed;
mod real;
pub mod spectrum;
pub mod wavelet;
pub mod window;

pub use error::DspError;
pub use real::{dot, l1_norm, l2_norm, Real};
