//! Spectral estimation utilities.
//!
//! Small, allocation-light tools used across the workspace: the Goertzel
//! single-bin DFT (checking mains contamination, resampler stop-bands)
//! and a direct-form power spectrum for test assertions and examples.
//! These favor clarity over asymptotics — the workspace's signals are a
//! few hundred samples, where direct evaluation is plenty fast and
//! avoids an FFT dependency.

use crate::real::Real;

/// Power of a single frequency bin via the Goertzel algorithm.
///
/// `frequency_hz` is evaluated against `sample_rate_hz`; the result is the
/// squared magnitude of the DFT at that (possibly non-integer) bin,
/// normalized by the signal length.
///
/// # Panics
///
/// Panics if the signal is empty or the sample rate is not positive.
///
/// # Examples
///
/// ```
/// use cs_dsp::spectrum::goertzel_power;
///
/// let fs = 360.0;
/// let x: Vec<f64> = (0..720)
///     .map(|i| (2.0 * std::f64::consts::PI * 60.0 * i as f64 / fs).sin())
///     .collect();
/// let at_60 = goertzel_power(&x, 60.0, fs);
/// let at_30 = goertzel_power(&x, 30.0, fs);
/// assert!(at_60 > 1000.0 * at_30);
/// ```
pub fn goertzel_power<T: Real>(signal: &[T], frequency_hz: f64, sample_rate_hz: f64) -> f64 {
    assert!(!signal.is_empty(), "goertzel_power: empty signal");
    assert!(sample_rate_hz > 0.0, "goertzel_power: bad sample rate");
    let omega = 2.0 * std::f64::consts::PI * frequency_hz / sample_rate_hz;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0_f64;
    let mut s_prev2 = 0.0_f64;
    for &x in signal {
        let s = x.to_f64() + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
    power / signal.len() as f64
}

/// Direct-form one-sided power spectrum: `bins` equally spaced bins over
/// `(0, sample_rate/2)`, each the Goertzel power at that frequency.
///
/// The signal is Hann-windowed internally — without a window, tones that
/// fall between bin centers leak sinc² tails across the whole spectrum
/// and band-energy comparisons become meaningless.
///
/// # Panics
///
/// Panics if the signal is empty, the sample rate is not positive, or
/// `bins` is zero.
pub fn power_spectrum<T: Real>(signal: &[T], sample_rate_hz: f64, bins: usize) -> Vec<(f64, f64)> {
    assert!(bins > 0, "power_spectrum: zero bins");
    assert!(!signal.is_empty(), "power_spectrum: empty signal");
    let window = crate::window::hann(signal.len());
    let tapered: Vec<f64> = signal
        .iter()
        .zip(&window)
        .map(|(&x, &w)| x.to_f64() * w)
        .collect();
    (0..bins)
        .map(|k| {
            let f = sample_rate_hz / 2.0 * (k as f64 + 0.5) / bins as f64;
            (f, goertzel_power(&tapered, f, sample_rate_hz))
        })
        .collect()
}

/// The frequency (Hz) of the strongest bin of [`power_spectrum`].
///
/// # Panics
///
/// Same conditions as [`power_spectrum`].
pub fn dominant_frequency<T: Real>(signal: &[T], sample_rate_hz: f64, bins: usize) -> f64 {
    power_spectrum(signal, sample_rate_hz, bins)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite powers"))
        .map(|(f, _)| f)
        .expect("bins > 0")
}

/// In-band vs out-of-band energy ratio in dB: energy inside
/// `[band_lo, band_hi]` Hz against everything else, estimated over `bins`
/// spectrum bins. Useful for asserting filter/resampler behaviour.
///
/// # Panics
///
/// Panics if the band is empty or outside `(0, fs/2)`.
pub fn band_selectivity_db<T: Real>(
    signal: &[T],
    sample_rate_hz: f64,
    band_lo: f64,
    band_hi: f64,
    bins: usize,
) -> f64 {
    assert!(
        band_lo < band_hi && band_lo >= 0.0 && band_hi <= sample_rate_hz / 2.0,
        "band_selectivity_db: invalid band"
    );
    let spec = power_spectrum(signal, sample_rate_hz, bins);
    let mut inside = 0.0;
    let mut outside = 0.0;
    for (f, p) in spec {
        if f >= band_lo && f <= band_hi {
            inside += p;
        } else {
            outside += p;
        }
    }
    10.0 * (inside / outside.max(1e-300)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn goertzel_matches_analytic_tone_power() {
        // A unit sine has power 1/2, i.e. |DFT|²/N ≈ N/4 at the bin.
        let n = 3600;
        let x = tone(50.0, 360.0, n);
        let p = goertzel_power(&x, 50.0, 360.0);
        assert!((p / (n as f64 / 4.0) - 1.0).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn dominant_frequency_found() {
        let x = tone(17.0, 256.0, 2048);
        let f = dominant_frequency(&x, 256.0, 256);
        assert!((f - 17.0).abs() < 1.0, "found {f}");
    }

    #[test]
    fn mixed_tones_rank_correctly() {
        let fs = 256.0;
        let a = tone(10.0, fs, 1024);
        let b = tone(40.0, fs, 1024);
        let mixed: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 3.0 * x + y).collect();
        let p10 = goertzel_power(&mixed, 10.0, fs);
        let p40 = goertzel_power(&mixed, 40.0, fs);
        assert!((p10 / p40 - 9.0).abs() < 0.5, "ratio {}", p10 / p40);
    }

    #[test]
    fn band_selectivity_of_a_tone() {
        let x = tone(20.0, 256.0, 2048);
        let db = band_selectivity_db(&x, 256.0, 15.0, 25.0, 128);
        assert!(db > 10.0, "selectivity {db} dB");
        let db_wrong = band_selectivity_db(&x, 256.0, 50.0, 60.0, 128);
        assert!(db_wrong < -10.0);
    }

    #[test]
    fn works_for_f32() {
        let x: Vec<f32> = tone(30.0, 256.0, 512).iter().map(|&v| v as f32).collect();
        assert!(goertzel_power(&x, 30.0, 256.0) > 10.0);
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_signal_panics() {
        let _ = goertzel_power::<f64>(&[], 10.0, 100.0);
    }
}
