//! Orthonormal wavelet bases and the periodized discrete wavelet transform.
//!
//! This module supplies the sparsifying dictionary Ψ of the CS-ECG system:
//!
//! * [`Wavelet`] / [`WaveletFamily`] — filter banks (Haar, Daubechies,
//!   Symlet) constructed by spectral factorization rather than coefficient
//!   tables, and
//! * [`Dwt`] — a planned, matrix-free, exactly-orthonormal multi-level
//!   transform with both analysis (`Ψᴴx`) and synthesis (`Ψα`) directions.

mod family;
mod fixed_point;
mod poly;
mod transform;

pub use family::{Wavelet, WaveletFamily};
pub use fixed_point::FixedDwt;
pub use transform::{dwt_single, idwt_single, Dwt};
