//! Minimal complex arithmetic and polynomial root finding.
//!
//! The Daubechies/Symlet filter construction in [`super::family`] needs the
//! roots of a small real polynomial (degree ≤ 9) and products of complex
//! monomials. Rather than pull in a numerics dependency we implement a tiny
//! complex type and the Durand–Kerner (Weierstrass) simultaneous-iteration
//! root finder, which is robust for the low-degree, well-conditioned
//! polynomials that arise here.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    pub fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Complex::ZERO;
        }
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt().copysign(self.im);
        Complex::new(re, im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Evaluates a polynomial with real coefficients (ascending powers) at a
/// complex point using Horner's rule.
pub(crate) fn horner(coeffs: &[f64], z: Complex) -> Complex {
    let mut acc = Complex::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * z + Complex::from_re(c);
    }
    acc
}

/// Finds all roots of a real polynomial (coefficients in ascending powers,
/// leading coefficient nonzero) with the Durand–Kerner iteration.
///
/// Returns `degree` complex roots. Intended for the small (degree ≤ ~16)
/// polynomials in the wavelet construction; convergence to ~1e-13 residual
/// is verified by the caller's orthonormality tests.
pub(crate) fn roots(coeffs: &[f64]) -> Vec<Complex> {
    let n = coeffs.len() - 1;
    assert!(n >= 1, "roots: polynomial must have degree >= 1");
    let lead = coeffs[n];
    assert!(lead != 0.0, "roots: leading coefficient must be nonzero");
    // Monic normalization improves the iteration's conditioning.
    let monic: Vec<f64> = coeffs.iter().map(|&c| c / lead).collect();

    // Initial guesses on a circle of radius related to the coefficient
    // magnitudes (Cauchy bound), with an irrational angle offset so no guess
    // starts on a symmetry axis.
    let bound = 1.0
        + monic[..n]
            .iter()
            .fold(0.0_f64, |m, &c| m.max(c.abs()));
    let mut z: Vec<Complex> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) / (n as f64) + 0.35;
            Complex::new(
                0.7 * bound * theta.cos(),
                0.7 * bound * theta.sin(),
            )
        })
        .collect();

    for _ in 0..500 {
        let mut max_step = 0.0_f64;
        for i in 0..n {
            let p = horner(&monic, z[i]);
            let mut denom = Complex::ONE;
            for j in 0..n {
                if i != j {
                    denom = denom * (z[i] - z[j]);
                }
            }
            let step = p / denom;
            z[i] = z[i] - step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-15 {
            break;
        }
    }
    z
}

/// Multiplies a complex polynomial (ascending powers) by the monomial
/// `(x - r)`, in place semantics via a returned vector.
pub(crate) fn mul_monomial(poly: &[Complex], r: Complex) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; poly.len() + 1];
    for (i, &c) in poly.iter().enumerate() {
        out[i + 1] = out[i + 1] + c;
        out[i] = out[i] - c * r;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_by_re(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        v
    }

    #[test]
    fn complex_field_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let prod = a * b;
        assert!((prod.re - 5.0).abs() < 1e-15 && (prod.im - 5.0).abs() < 1e-15);
        let q = prod / b;
        assert!((q.re - a.re).abs() < 1e-14 && (q.im - a.im).abs() < 1e-14);
        let s = Complex::new(-4.0, 0.0).sqrt();
        assert!(s.re.abs() < 1e-15 && (s.im.abs() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn quadratic_roots() {
        // x^2 - 3x + 2 = (x-1)(x-2)
        let r = sort_by_re(roots(&[2.0, -3.0, 1.0]));
        assert!((r[0].re - 1.0).abs() < 1e-10 && r[0].im.abs() < 1e-10);
        assert!((r[1].re - 2.0).abs() < 1e-10 && r[1].im.abs() < 1e-10);
    }

    #[test]
    fn complex_conjugate_roots() {
        // x^2 + 1 = (x-i)(x+i)
        let r = roots(&[1.0, 0.0, 1.0]);
        for z in &r {
            assert!(z.re.abs() < 1e-10);
            assert!((z.im.abs() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn degree_nine_residuals_small() {
        // (x-1)(x-2)...(x-9) expanded via repeated monomial multiplication.
        let mut p = vec![Complex::ONE];
        for k in 1..=9 {
            p = mul_monomial(&p, Complex::from_re(k as f64));
        }
        let coeffs: Vec<f64> = p.iter().map(|c| c.re).collect();
        let r = roots(&coeffs);
        for z in r {
            assert!(horner(&coeffs, z).abs() < 1e-5, "residual too large at {z:?}");
        }
    }

    #[test]
    fn mul_monomial_expands() {
        // (x - 2)(x - 3) = x^2 - 5x + 6
        let p = mul_monomial(&[Complex::ONE], Complex::from_re(2.0));
        let p = mul_monomial(&p, Complex::from_re(3.0));
        assert!((p[0].re - 6.0).abs() < 1e-15);
        assert!((p[1].re + 5.0).abs() < 1e-15);
        assert!((p[2].re - 1.0).abs() < 1e-15);
    }
}
