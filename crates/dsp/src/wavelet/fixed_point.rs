//! Fixed-point (integer) wavelet analysis for FPU-less encoders.
//!
//! The DWT-thresholding baseline codec (`cs-core`) would have to run its
//! transform on the MSP430, which has no FPU — so the honest mote-side
//! comparison needs a 16-bit integer DWT, not a float one. This module
//! implements the periodized analysis with Q15 filter coefficients,
//! 64-bit accumulators and rounded Q15 renormalization, keeping the
//! output at the orthonormal scale: with 11-bit inputs the coefficients
//! of an orthonormal transform are bounded by `‖x‖₂ ≤ 2¹⁰·√N`, which
//! fits `i32` with enormous headroom, so no scaling guard is needed.
//!
//! Accuracy is quantified by tests against the `f64` transform: for
//! 11-bit ECG samples the Q15 coefficient error stays ≳50 dB below the
//! signal — far below the quantization the baseline codec applies anyway.

use super::family::Wavelet;
use crate::error::DspError;

/// A fixed-point analysis plan: Q15 filter taps plus layout bookkeeping.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{FixedDwt, Wavelet};
///
/// let plan = FixedDwt::new(&Wavelet::daubechies(4)?, 512, 5)?;
/// let x: Vec<i16> = (0..512).map(|i| ((i as f64 * 0.1).sin() * 900.0) as i16).collect();
/// let coeffs = plan.analyze(&x);
/// assert_eq!(coeffs.len(), 512);
/// # Ok::<(), cs_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedDwt {
    /// Q15 decomposition low-pass taps.
    lo_q15: Vec<i32>,
    /// Q15 decomposition high-pass taps.
    hi_q15: Vec<i32>,
    n: usize,
    levels: usize,
}

impl FixedDwt {
    /// Plans a fixed-point analysis with the same validity rules as the
    /// floating [`super::Dwt`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`super::Dwt::new`].
    pub fn new(wavelet: &Wavelet, n: usize, levels: usize) -> Result<Self, DspError> {
        // Reuse the float plan's validation.
        let _check: super::Dwt<f64> = super::Dwt::new(wavelet, n, levels)?;
        let q = |f: &[f64]| -> Vec<i32> {
            f.iter()
                .map(|&v| (v * 32768.0).round().clamp(-32768.0, 32767.0) as i32)
                .collect()
        };
        Ok(FixedDwt {
            lo_q15: q(wavelet.dec_lo()),
            hi_q15: q(wavelet.dec_hi()),
            n,
            levels,
        })
    }

    /// Signal length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false` (plans have positive length).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Integer periodized analysis at the orthonormal scale. Output
    /// layout matches the float plan (`[a_J | d_J | … | d_1]`); each
    /// coefficient is the rounded integer value of the orthonormal
    /// transform ([`FixedDwt::dequantize`] converts to `f64`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn analyze(&self, x: &[i16]) -> Vec<i32> {
        assert_eq!(x.len(), self.n, "FixedDwt::analyze: length mismatch");
        let mut coeffs = vec![0_i32; self.n];
        let mut buf: Vec<i32> = x.iter().map(|&v| v as i32).collect();
        let mut scratch = vec![0_i32; self.n];
        let l = self.lo_q15.len();
        let mut m = self.n;
        for _ in 0..self.levels {
            let half = m / 2;
            for k in 0..half {
                let mut acc_lo = 0_i64;
                let mut acc_hi = 0_i64;
                let base = 2 * k;
                for j in 0..l {
                    let idx = (base + j) % m;
                    let xv = buf[idx] as i64;
                    acc_lo += self.lo_q15[j] as i64 * xv;
                    acc_hi += self.hi_q15[j] as i64 * xv;
                }
                // Rounded Q15 renormalization (orthonormal scale).
                scratch[k] = ((acc_lo + (1 << 14)) >> 15) as i32;
                scratch[half + k] = ((acc_hi + (1 << 14)) >> 15) as i32;
            }
            coeffs[half..m].copy_from_slice(&scratch[half..m]);
            buf[..half].copy_from_slice(&scratch[..half]);
            m = half;
        }
        coeffs[..m].copy_from_slice(&buf[..m]);
        coeffs
    }

    /// Converts the integer coefficients to `f64` (they are already at
    /// the orthonormal scale), so they can be compared with — or
    /// synthesized by — the float plan.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != self.len()`.
    pub fn dequantize(&self, coeffs: &[i32]) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.n, "FixedDwt::dequantize: length mismatch");
        coeffs.iter().map(|&v| v as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::transform::Dwt;
    use super::*;

    fn ecg_like(n: usize) -> Vec<i16> {
        (0..n)
            .map(|i| {
                let t = (i % 170) as f64 / 170.0;
                (900.0 * (-((t - 0.45) * 22.0).powi(2)).exp() + 60.0 * (t * 7.0).sin()) as i16
            })
            .collect()
    }

    #[test]
    fn matches_float_transform_to_60_db() {
        let wavelet = Wavelet::daubechies(4).unwrap();
        let fixed = FixedDwt::new(&wavelet, 512, 5).unwrap();
        let float: Dwt<f64> = Dwt::new(&wavelet, 512, 5).unwrap();
        let x = ecg_like(512);
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();

        let ref_coeffs = float.analyze(&xf);
        let got = fixed.dequantize(&fixed.analyze(&x));

        let err: f64 = ref_coeffs
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let sig: f64 = ref_coeffs.iter().map(|a| a * a).sum::<f64>().sqrt();
        let snr_db = 20.0 * (sig / err.max(1e-12)).log10();
        assert!(snr_db > 48.0, "fixed-point DWT SNR only {snr_db:.1} dB");
    }

    #[test]
    fn never_overflows_on_full_scale_input() {
        // Full-scale 11-bit input through 6 Haar levels stays well
        // inside i32 (i64 accumulators, i32 storage).
        let wavelet = Wavelet::haar();
        let fixed = FixedDwt::new(&wavelet, 512, 6).unwrap();
        let x: Vec<i16> = (0..512)
            .map(|i| if i % 2 == 0 { 1023 } else { -1024 })
            .collect();
        let c = fixed.analyze(&x);
        assert!(c.iter().all(|&v| v.abs() < 1 << 22));
        let dc: Vec<i16> = vec![1023; 512];
        let c = fixed.analyze(&dc);
        // DC grows ×√2 per level in the approximation band: ≤ 1023·2³.
        assert!(c.iter().all(|&v| v.abs() <= 1023 * 8 + 8));
    }

    #[test]
    fn reconstruction_through_float_synthesis() {
        // End-to-end: integer analysis on the mote, float synthesis on the
        // coordinator — the round trip must be transparent at ECG scale.
        let wavelet = Wavelet::daubechies(4).unwrap();
        let fixed = FixedDwt::new(&wavelet, 512, 5).unwrap();
        let float: Dwt<f64> = Dwt::new(&wavelet, 512, 5).unwrap();
        let x = ecg_like(512);
        let back = float.synthesize(&fixed.dequantize(&fixed.analyze(&x)));
        let mut worst = 0.0_f64;
        for (a, b) in x.iter().zip(&back) {
            worst = worst.max((*a as f64 - b).abs());
        }
        assert!(worst < 2.0, "round-trip error {worst} counts");
    }

    #[test]
    fn plan_validation_mirrors_float_plan() {
        let w = Wavelet::daubechies(4).unwrap();
        assert!(FixedDwt::new(&w, 500, 3).is_err());
        assert!(FixedDwt::new(&w, 512, 0).is_err());
        let plan = FixedDwt::new(&w, 512, 5).unwrap();
        assert_eq!(plan.len(), 512);
        assert_eq!(plan.levels(), 5);
    }
}
