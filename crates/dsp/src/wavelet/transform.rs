//! Periodized multi-level orthonormal discrete wavelet transform.
//!
//! The transform here is the sparsifying basis Ψ of the CS-ECG system: the
//! analysis direction maps a 2-second ECG packet `x ∈ ℝᴺ` to its wavelet
//! coefficient vector `α = Ψᴴx`, and the synthesis direction is the exact
//! inverse (and, because the basis is orthonormal, also the adjoint). Both
//! are computed matrix-free in `O(N·L)` per level — never as a dense `N×N`
//! product — which is what makes the paper's matrix-free FISTA operator
//! practical (contribution 1 of the paper).
//!
//! Periodization (circular convolution) keeps the transform square and
//! exactly orthonormal for any signal length divisible by `2^levels` whose
//! per-level input stays at least one filter length long.

use super::family::Wavelet;
use crate::error::DspError;
use crate::real::Real;
use std::ops::Range;

/// A planned periodized DWT for a fixed signal length, wavelet and depth.
///
/// The plan pre-converts the filter bank to the target precision `T` so the
/// hot loops contain no `f64 → f32` conversions (mirroring the paper's
/// all-`float` iPhone decoder).
///
/// Coefficient layout produced by [`Dwt::analyze`] (standard pyramid order):
/// `[ a_J | d_J | d_{J-1} | … | d_1 ]` where `a_J` has `n / 2^J` entries and
/// `d_ℓ` has `n / 2^ℓ` entries.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{Dwt, Wavelet};
///
/// let wavelet = Wavelet::daubechies(4)?;
/// let dwt: Dwt<f64> = Dwt::new(&wavelet, 512, 5)?;
/// let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.1).sin()).collect();
/// let coeffs = dwt.analyze(&x);
/// let back = dwt.synthesize(&coeffs);
/// let err: f64 = x.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
/// assert!(err < 1e-10);
/// # Ok::<(), cs_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dwt<T: Real> {
    dec_lo: Vec<T>,
    dec_hi: Vec<T>,
    n: usize,
    levels: usize,
}

impl<T: Real> Dwt<T> {
    /// Plans a transform of depth `levels` for signals of length `n`.
    ///
    /// # Errors
    ///
    /// * [`DspError::InvalidLength`] if `n` is zero or not divisible by
    ///   `2^levels`.
    /// * [`DspError::InvalidLevel`] if `levels` is zero or any level's input
    ///   would be shorter than the wavelet filter (which would break exact
    ///   orthonormality of the periodized transform).
    pub fn new(wavelet: &Wavelet, n: usize, levels: usize) -> Result<Self, DspError> {
        if levels == 0 {
            return Err(DspError::InvalidLevel {
                requested: levels,
                max: wavelet.max_level(n),
            });
        }
        if n == 0 || !n.is_multiple_of(1 << levels) {
            return Err(DspError::InvalidLength {
                len: n,
                requirement: format!("divisible by 2^{levels}"),
            });
        }
        if levels > wavelet.max_level(n) {
            return Err(DspError::InvalidLevel {
                requested: levels,
                max: wavelet.max_level(n),
            });
        }
        let conv = |f: &[f64]| f.iter().map(|&v| T::from_f64(v)).collect();
        Ok(Dwt {
            dec_lo: conv(wavelet.dec_lo()),
            dec_hi: conv(wavelet.dec_hi()),
            n,
            levels,
        })
    }

    /// Signal length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; a plan has positive length by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The index ranges of each subband in the coefficient vector, coarsest
    /// first: `[a_J, d_J, d_{J-1}, …, d_1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cs_dsp::wavelet::{Dwt, Wavelet};
    /// let dwt: Dwt<f64> = Dwt::new(&Wavelet::haar(), 16, 2)?;
    /// let bands = dwt.subband_ranges();
    /// assert_eq!(bands, vec![0..4, 4..8, 8..16]);
    /// # Ok::<(), cs_dsp::DspError>(())
    /// ```
    pub fn subband_ranges(&self) -> Vec<Range<usize>> {
        let mut out = Vec::with_capacity(self.levels + 1);
        let coarsest = self.n >> self.levels;
        out.push(0..coarsest);
        let mut lo = coarsest;
        for level in (1..=self.levels).rev() {
            let width = self.n >> level;
            out.push(lo..lo + width);
            lo += width;
        }
        out
    }

    /// Analysis transform `α = Ψᴴ x` into a caller-provided buffer, using
    /// caller-provided scratch — the allocation-free hot-path variant.
    /// `scratch` must be at least `self.len()` long; its contents on entry
    /// are irrelevant and on exit are unspecified. One scratch buffer can
    /// serve every analysis and synthesis of a whole solve.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `coeffs` is not exactly `self.len()` long, or
    /// `scratch` is shorter.
    pub fn analyze_scratch(&self, x: &[T], coeffs: &mut [T], scratch: &mut [T]) {
        assert_eq!(x.len(), self.n, "analyze_scratch: input length mismatch");
        assert_eq!(coeffs.len(), self.n, "analyze_scratch: output length mismatch");
        assert!(scratch.len() >= self.n, "analyze_scratch: scratch too short");
        let mut m = self.n;
        scratch[..m].copy_from_slice(x);
        for level in 0..self.levels {
            // Detail lands at its final position in `coeffs`; the approx
            // half cascades back through `scratch`.
            forward_level(&scratch[..m], &mut coeffs[..m], &self.dec_lo, &self.dec_hi);
            m /= 2;
            if level + 1 < self.levels {
                scratch[..m].copy_from_slice(&coeffs[..m]);
            }
        }
    }

    /// Analysis transform `α = Ψᴴ x` into a caller-provided buffer.
    ///
    /// Allocates one internal scratch buffer; use
    /// [`Dwt::analyze_scratch`] to reuse scratch across calls.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `coeffs` is not exactly `self.len()` long.
    pub fn analyze_into(&self, x: &[T], coeffs: &mut [T]) {
        let mut scratch = vec![T::ZERO; self.n];
        self.analyze_scratch(x, coeffs, &mut scratch);
    }

    /// Analysis transform `α = Ψᴴ x`, allocating the output.
    pub fn analyze(&self, x: &[T]) -> Vec<T> {
        let mut out = vec![T::ZERO; self.n];
        self.analyze_into(x, &mut out);
        out
    }

    /// Synthesis transform `x = Ψ α` into a caller-provided buffer, using
    /// caller-provided scratch — the allocation-free hot-path variant.
    /// `scratch` must be at least `self.len()` long; its contents on entry
    /// are irrelevant and on exit are unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` or `x` is not exactly `self.len()` long, or
    /// `scratch` is shorter.
    pub fn synthesize_scratch(&self, coeffs: &[T], x: &mut [T], scratch: &mut [T]) {
        assert_eq!(coeffs.len(), self.n, "synthesize_scratch: input length mismatch");
        assert_eq!(x.len(), self.n, "synthesize_scratch: output length mismatch");
        assert!(scratch.len() >= self.n, "synthesize_scratch: scratch too short");
        let coarsest = self.n >> self.levels;
        // The output buffer doubles as the cascade buffer: the growing
        // approximation lives in `x[..m/2]` and each level expands it
        // through `scratch` back into `x[..m]`.
        x[..coarsest].copy_from_slice(&coeffs[..coarsest]);
        let mut m = coarsest * 2;
        while m <= self.n {
            // The inverse of an orthonormal analysis step is its transpose,
            // which scatters with the same (decomposition) filters.
            inverse_level(
                &x[..m / 2],
                &coeffs[m / 2..m],
                &mut scratch[..m],
                &self.dec_lo,
                &self.dec_hi,
            );
            x[..m].copy_from_slice(&scratch[..m]);
            m *= 2;
        }
    }

    /// Synthesis transform `x = Ψ α` into a caller-provided buffer. Because
    /// Ψ is orthonormal this is simultaneously the inverse and the adjoint
    /// of [`Dwt::analyze_into`].
    ///
    /// Allocates one internal scratch buffer; use
    /// [`Dwt::synthesize_scratch`] to reuse scratch across calls.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` or `x` is not exactly `self.len()` long.
    pub fn synthesize_into(&self, coeffs: &[T], x: &mut [T]) {
        let mut scratch = vec![T::ZERO; self.n];
        self.synthesize_scratch(coeffs, x, &mut scratch);
    }

    /// Synthesis transform `x = Ψ α`, allocating the output.
    pub fn synthesize(&self, coeffs: &[T]) -> Vec<T> {
        let mut out = vec![T::ZERO; self.n];
        self.synthesize_into(coeffs, &mut out);
        out
    }
}

/// One analysis level: `out[..m/2] = approx`, `out[m/2..] = detail`.
///
/// `a[k] = Σ_j lo[j] · x[(2k + j) mod m]`, and likewise with `hi` for the
/// detail channel. The circular index keeps the transform square.
fn forward_level<T: Real>(x: &[T], out: &mut [T], lo: &[T], hi: &[T]) {
    // Dispatch on the filter length so the inner loops run over a
    // compile-time bound: the common Daubechies lengths fully unroll and
    // vectorize, where the dynamic-length loop stays scalar. Operation
    // order is identical, so results are bitwise-equal to the fallback.
    match lo.len() {
        2 => forward_level_fixed::<T, 2>(x, out, lo, hi),
        4 => forward_level_fixed::<T, 4>(x, out, lo, hi),
        6 => forward_level_fixed::<T, 6>(x, out, lo, hi),
        8 => forward_level_fixed::<T, 8>(x, out, lo, hi),
        10 => forward_level_fixed::<T, 10>(x, out, lo, hi),
        _ => forward_level_dyn(x, out, lo, hi),
    }
}

#[inline]
fn forward_level_fixed<T: Real, const L: usize>(x: &[T], out: &mut [T], lo: &[T], hi: &[T]) {
    let m = x.len();
    debug_assert!(m.is_multiple_of(2));
    let half = m / 2;
    let lo: &[T; L] = lo.try_into().expect("filter length mismatch");
    let hi: &[T; L] = hi.try_into().expect("filter length mismatch");
    for k in 0..half {
        let mut a = T::ZERO;
        let mut d = T::ZERO;
        let base = 2 * k;
        if base + L <= m {
            // Fast path: no wraparound.
            for (j, &xv) in x[base..base + L].iter().enumerate() {
                a += lo[j] * xv;
                d += hi[j] * xv;
            }
        } else {
            for j in 0..L {
                let idx = (base + j) % m;
                let xv = x[idx];
                a += lo[j] * xv;
                d += hi[j] * xv;
            }
        }
        out[k] = a;
        out[half + k] = d;
    }
}

fn forward_level_dyn<T: Real>(x: &[T], out: &mut [T], lo: &[T], hi: &[T]) {
    let m = x.len();
    debug_assert!(m.is_multiple_of(2));
    let half = m / 2;
    let l = lo.len();
    for k in 0..half {
        let mut a = T::ZERO;
        let mut d = T::ZERO;
        let base = 2 * k;
        if base + l <= m {
            // Fast path: no wraparound.
            for j in 0..l {
                let xv = x[base + j];
                a += lo[j] * xv;
                d += hi[j] * xv;
            }
        } else {
            for j in 0..l {
                let idx = (base + j) % m;
                let xv = x[idx];
                a += lo[j] * xv;
                d += hi[j] * xv;
            }
        }
        out[k] = a;
        out[half + k] = d;
    }
}

/// One synthesis level — the exact transpose of [`forward_level`]:
/// `x[(2k + j) mod m] += a[k]·lo[j] + d[k]·hi[j]`.
fn inverse_level<T: Real>(approx: &[T], detail: &[T], out: &mut [T], lo: &[T], hi: &[T]) {
    // Even-length filters (every Daubechies family member) take the
    // polyphase gather path with a compile-time tap count; anything else
    // falls back to the direct scatter form.
    match lo.len() {
        2 => inverse_level_fixed::<T, 1>(approx, detail, out, lo, hi),
        4 => inverse_level_fixed::<T, 2>(approx, detail, out, lo, hi),
        6 => inverse_level_fixed::<T, 3>(approx, detail, out, lo, hi),
        8 => inverse_level_fixed::<T, 4>(approx, detail, out, lo, hi),
        10 => inverse_level_fixed::<T, 5>(approx, detail, out, lo, hi),
        _ => inverse_level_dyn(approx, detail, out, lo, hi),
    }
}

/// Polyphase synthesis with `P = L/2` taps per output phase.
///
/// The scatter form (`out[(2k+j) mod m] += a[k]·lo[j] + d[k]·hi[j]`)
/// makes every iteration read-modify-write a window overlapping the
/// previous store, which serializes on store-to-load forwarding. Grouping
/// by output parity instead — `out[2t]` gathers the even taps,
/// `out[2t+1]` the odd taps, both from `a[t-p]`/`d[t-p]` — writes each
/// output exactly once and needs no zeroing pass:
/// with `j = 2p + (i mod 2)`, `(2k + j) mod m = i  ⇔  k = (t − p) mod h`.
#[inline]
fn inverse_level_fixed<T: Real, const P: usize>(
    approx: &[T],
    detail: &[T],
    out: &mut [T],
    lo: &[T],
    hi: &[T],
) {
    let half = approx.len();
    debug_assert_eq!(detail.len(), half);
    debug_assert_eq!(out.len(), half * 2);
    debug_assert_eq!(lo.len(), 2 * P);
    debug_assert_eq!(hi.len(), 2 * P);
    let mut even = [T::ZERO; P];
    let mut odd = [T::ZERO; P];
    for p in 0..P {
        even[p] = lo[2 * p];
        odd[p] = lo[2 * p + 1];
    }
    let mut heven = [T::ZERO; P];
    let mut hodd = [T::ZERO; P];
    for p in 0..P {
        heven[p] = hi[2 * p];
        hodd[p] = hi[2 * p + 1];
    }
    for (t, pair) in out.chunks_exact_mut(2).enumerate() {
        let mut e = T::ZERO;
        let mut o = T::ZERO;
        if t + 1 >= P {
            // Interior: k = t − p stays in range; a/d reads are contiguous.
            for p in 0..P {
                let k = t - p;
                let a = approx[k];
                let d = detail[k];
                e += a * even[p] + d * heven[p];
                o += a * odd[p] + d * hodd[p];
            }
        } else {
            for p in 0..P {
                let k = (t + half - p) % half;
                let a = approx[k];
                let d = detail[k];
                e += a * even[p] + d * heven[p];
                o += a * odd[p] + d * hodd[p];
            }
        }
        pair[0] = e;
        pair[1] = o;
    }
}

fn inverse_level_dyn<T: Real>(approx: &[T], detail: &[T], out: &mut [T], lo: &[T], hi: &[T]) {
    let half = approx.len();
    let m = half * 2;
    debug_assert_eq!(detail.len(), half);
    debug_assert_eq!(out.len(), m);
    let l = lo.len();
    for v in out.iter_mut() {
        *v = T::ZERO;
    }
    for k in 0..half {
        let a = approx[k];
        let d = detail[k];
        let base = 2 * k;
        if base + l <= m {
            for j in 0..l {
                out[base + j] += a * lo[j] + d * hi[j];
            }
        } else {
            for j in 0..l {
                let idx = (base + j) % m;
                out[idx] += a * lo[j] + d * hi[j];
            }
        }
    }
}

/// Single-level periodized DWT of `x`, returning `(approx, detail)`.
///
/// This is the building block [`Dwt`] cascades; it is exposed for tests and
/// for callers that want manual control of the decomposition.
///
/// # Panics
///
/// Panics if `x.len()` is odd or zero.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{dwt_single, Wavelet};
/// let (a, d) = dwt_single(&[1.0_f64, 1.0, 1.0, 1.0], &Wavelet::haar());
/// assert!(d.iter().all(|&v: &f64| v.abs() < 1e-12)); // constant ⇒ no detail
/// assert!(a.iter().all(|&v| (v - std::f64::consts::SQRT_2).abs() < 1e-12));
/// ```
pub fn dwt_single<T: Real>(x: &[T], wavelet: &Wavelet) -> (Vec<T>, Vec<T>) {
    assert!(!x.is_empty() && x.len().is_multiple_of(2), "dwt_single: length must be even and nonzero");
    let m = x.len();
    let lo: Vec<T> = wavelet.dec_lo().iter().map(|&v| T::from_f64(v)).collect();
    let hi: Vec<T> = wavelet.dec_hi().iter().map(|&v| T::from_f64(v)).collect();
    let mut out = vec![T::ZERO; m];
    forward_level(x, &mut out, &lo, &hi);
    let detail = out.split_off(m / 2);
    (out, detail)
}

/// Single-level inverse of [`dwt_single`].
///
/// # Panics
///
/// Panics if `approx` and `detail` differ in length or are empty.
pub fn idwt_single<T: Real>(approx: &[T], detail: &[T], wavelet: &Wavelet) -> Vec<T> {
    assert_eq!(approx.len(), detail.len(), "idwt_single: channel length mismatch");
    assert!(!approx.is_empty(), "idwt_single: empty input");
    let lo: Vec<T> = wavelet.dec_lo().iter().map(|&v| T::from_f64(v)).collect();
    let hi: Vec<T> = wavelet.dec_hi().iter().map(|&v| T::from_f64(v)).collect();
    let mut out = vec![T::ZERO; approx.len() * 2];
    inverse_level(approx, detail, &mut out, &lo, &hi);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::l2_norm;
    use proptest::prelude::*;

    fn plan(n: usize, levels: usize) -> Dwt<f64> {
        Dwt::new(&Wavelet::daubechies(4).unwrap(), n, levels).unwrap()
    }

    #[test]
    fn perfect_reconstruction_db4() {
        let dwt = plan(512, 5);
        let x: Vec<f64> = (0..512)
            .map(|i| (i as f64 * 0.05).sin() + 0.3 * (i as f64 * 0.31).cos())
            .collect();
        let c = dwt.analyze(&x);
        let y = dwt.synthesize(&c);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let dwt = plan(256, 4);
        let x: Vec<f64> = (0..256).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let c = dwt.analyze(&x);
        assert!((l2_norm(&x) - l2_norm(&c)).abs() < 1e-9);
    }

    #[test]
    fn adjoint_identity_holds() {
        // ⟨Ψᴴx, z⟩ = ⟨x, Ψz⟩ for arbitrary x, z.
        let dwt = plan(128, 3);
        let x: Vec<f64> = (0..128).map(|i| (i as f64).cos()).collect();
        let z: Vec<f64> = (0..128).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let ax = dwt.analyze(&x);
        let sz = dwt.synthesize(&z);
        let lhs: f64 = ax.iter().zip(&z).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&sz).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn polynomial_signals_compress() {
        // db4 has 4 vanishing moments: cubic signals produce (near-)zero
        // interior detail coefficients. Periodization introduces boundary
        // effects, so check that MOST of the finest band is ~0.
        let dwt = plan(512, 1);
        let x: Vec<f64> = (0..512)
            .map(|i| {
                let t = i as f64 / 512.0;
                1.0 + 2.0 * t + 3.0 * t * t - t * t * t
            })
            .collect();
        let c = dwt.analyze(&x);
        let detail = &c[256..];
        let small = detail.iter().filter(|v| v.abs() < 1e-8).count();
        assert!(small > 240, "only {small}/256 detail coeffs are ~0");
    }

    #[test]
    fn scratch_variants_bitwise_match_allocating() {
        let dwt = plan(512, 5);
        let x: Vec<f64> = (0..512)
            .map(|i| (i as f64 * 0.07).sin() + 0.2 * ((i * i) as f64 * 0.003).cos())
            .collect();
        let mut scratch = vec![7.5_f64; 512]; // garbage on entry is fine
        let mut coeffs = vec![0.0; 512];
        dwt.analyze_scratch(&x, &mut coeffs, &mut scratch);
        assert_eq!(coeffs, dwt.analyze(&x), "analyze_scratch diverged");
        let mut back = vec![0.0; 512];
        dwt.synthesize_scratch(&coeffs, &mut back, &mut scratch);
        assert_eq!(back, dwt.synthesize(&coeffs), "synthesize_scratch diverged");
    }

    #[test]
    #[should_panic(expected = "scratch too short")]
    fn short_scratch_panics() {
        let dwt = plan(64, 2);
        let x = vec![0.0_f64; 64];
        let mut coeffs = vec![0.0; 64];
        let mut scratch = vec![0.0; 63];
        dwt.analyze_scratch(&x, &mut coeffs, &mut scratch);
    }

    #[test]
    fn subband_ranges_partition() {
        let dwt = plan(512, 5);
        let bands = dwt.subband_ranges();
        assert_eq!(bands.len(), 6);
        assert_eq!(bands[0], 0..16);
        assert_eq!(bands[1], 16..32);
        assert_eq!(bands.last().unwrap().clone(), 256..512);
        // Contiguous cover of 0..512.
        let mut cursor = 0;
        for b in &bands {
            assert_eq!(b.start, cursor);
            cursor = b.end;
        }
        assert_eq!(cursor, 512);
    }

    #[test]
    fn f32_plan_reconstructs() {
        let dwt: Dwt<f32> = Dwt::new(&Wavelet::daubechies(4).unwrap(), 512, 5).unwrap();
        let x: Vec<f32> = (0..512).map(|i| (i as f32 * 0.1).sin()).collect();
        let y = dwt.synthesize(&dwt.analyze(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn invalid_plans_rejected() {
        let w = Wavelet::daubechies(4).unwrap();
        assert!(matches!(
            Dwt::<f64>::new(&w, 500, 3),
            Err(DspError::InvalidLength { .. })
        ));
        assert!(matches!(
            Dwt::<f64>::new(&w, 512, 0),
            Err(DspError::InvalidLevel { .. })
        ));
        assert!(matches!(
            Dwt::<f64>::new(&w, 512, 8),
            Err(DspError::InvalidLevel { .. })
        ));
    }

    #[test]
    fn single_level_round_trip() {
        let w = Wavelet::symlet(4).unwrap();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let (a, d) = dwt_single(&x, &w);
        assert_eq!(a.len(), 32);
        let y = idwt_single(&a, &d, &w);
        for (u, v) in x.iter().zip(&y) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    proptest! {
        #[test]
        fn prop_perfect_reconstruction(
            seed in any::<u64>(),
            levels in 1_usize..6,
        ) {
            let n = 256;
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 4.0 - 2.0
            };
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let dwt = plan(n, levels);
            let y = dwt.synthesize(&dwt.analyze(&x));
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_linearity(scale in -3.0_f64..3.0) {
            let n = 128;
            let dwt = plan(n, 3);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let scaled: Vec<f64> = x.iter().map(|v| v * scale).collect();
            let cx = dwt.analyze(&x);
            let cs = dwt.analyze(&scaled);
            for (a, b) in cx.iter().zip(&cs) {
                prop_assert!((a * scale - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_parseval_all_wavelets(order in 1_usize..=10) {
            let w = Wavelet::daubechies(order).unwrap();
            let n = 256;
            let levels = w.max_level(n).min(3);
            let dwt: Dwt<f64> = Dwt::new(&w, n, levels).unwrap();
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin()).collect();
            let c = dwt.analyze(&x);
            prop_assert!((l2_norm(&x) - l2_norm(&c)).abs() < 1e-8);
        }
    }
}
