//! Orthonormal wavelet families and their filter banks.
//!
//! The CS-ECG decoder represents a 2-second ECG packet in an orthonormal
//! wavelet basis Ψ (paper §II-A). This module constructs the underlying
//! quadrature-mirror filter banks *from first principles*: Daubechies
//! extremal-phase filters via spectral factorization of the half-band
//! product filter, and Symlets by selecting the spectral-factor root set
//! that minimizes phase nonlinearity. No coefficient tables are copied in;
//! correctness is enforced by orthonormality and vanishing-moment tests.

use super::poly::{horner, mul_monomial, roots, Complex};
use crate::error::DspError;

/// An orthonormal wavelet family selector.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{Wavelet, WaveletFamily};
///
/// let w = Wavelet::new(WaveletFamily::Daubechies(4))?;
/// assert_eq!(w.filter_len(), 8);
/// # Ok::<(), cs_dsp::DspError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WaveletFamily {
    /// The Haar wavelet (equivalent to Daubechies order 1).
    Haar,
    /// Daubechies extremal-phase wavelet with the given number of vanishing
    /// moments (1..=10 supported). `Daubechies(4)` is the workspace default
    /// for ECG, giving an 8-tap filter.
    Daubechies(usize),
    /// Least-asymmetric Daubechies ("Symlet") with the given number of
    /// vanishing moments (2..=10 supported).
    Symlet(usize),
}

impl WaveletFamily {
    /// Number of vanishing moments of the analysis high-pass filter.
    pub fn vanishing_moments(self) -> usize {
        match self {
            WaveletFamily::Haar => 1,
            WaveletFamily::Daubechies(p) | WaveletFamily::Symlet(p) => p,
        }
    }

    /// Canonical short name, e.g. `db4` or `sym5`.
    pub fn name(self) -> String {
        match self {
            WaveletFamily::Haar => "haar".to_owned(),
            WaveletFamily::Daubechies(p) => format!("db{p}"),
            WaveletFamily::Symlet(p) => format!("sym{p}"),
        }
    }
}

impl std::fmt::Display for WaveletFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A concrete orthonormal wavelet: the four filters of its two-channel
/// perfect-reconstruction filter bank, stored at `f64` precision.
///
/// Filter conventions (matching the common `pywt` layout):
/// * `rec_lo` is the scaling filter `h` with `Σh = √2`,
/// * `rec_hi[n] = (−1)ⁿ · h[L−1−n]` (alternating flip),
/// * `dec_lo`/`dec_hi` are the time-reversed reconstruction filters.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::Wavelet;
///
/// let w = Wavelet::daubechies(4)?;
/// let sum: f64 = w.rec_lo().iter().sum();
/// assert!((sum - std::f64::consts::SQRT_2).abs() < 1e-12);
/// # Ok::<(), cs_dsp::DspError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Wavelet {
    family: WaveletFamily,
    dec_lo: Vec<f64>,
    dec_hi: Vec<f64>,
    rec_lo: Vec<f64>,
    rec_hi: Vec<f64>,
}

impl Wavelet {
    /// Builds the filter bank for `family`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::UnsupportedWavelet`] if the order is outside the
    /// supported range (Daubechies 1..=10, Symlet 2..=10).
    pub fn new(family: WaveletFamily) -> Result<Self, DspError> {
        let h = match family {
            WaveletFamily::Haar => scaling_filter_daubechies(1),
            WaveletFamily::Daubechies(p) => {
                if !(1..=10).contains(&p) {
                    return Err(DspError::UnsupportedWavelet(family.name()));
                }
                scaling_filter_daubechies(p)
            }
            WaveletFamily::Symlet(p) => {
                if !(2..=10).contains(&p) {
                    return Err(DspError::UnsupportedWavelet(family.name()));
                }
                scaling_filter_symlet(p)
            }
        };
        Ok(Self::from_scaling_filter(family, h))
    }

    /// Convenience constructor for [`WaveletFamily::Daubechies`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::UnsupportedWavelet`] for orders outside 1..=10.
    pub fn daubechies(order: usize) -> Result<Self, DspError> {
        Self::new(WaveletFamily::Daubechies(order))
    }

    /// Convenience constructor for [`WaveletFamily::Symlet`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::UnsupportedWavelet`] for orders outside 2..=10.
    pub fn symlet(order: usize) -> Result<Self, DspError> {
        Self::new(WaveletFamily::Symlet(order))
    }

    /// Convenience constructor for the Haar wavelet.
    pub fn haar() -> Self {
        Self::new(WaveletFamily::Haar).expect("haar is always supported")
    }

    fn from_scaling_filter(family: WaveletFamily, h: Vec<f64>) -> Self {
        let l = h.len();
        debug_assert!(l.is_multiple_of(2), "orthonormal scaling filters have even length");
        let rec_lo = h;
        let rec_hi: Vec<f64> = (0..l)
            .map(|n| {
                let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
                sign * rec_lo[l - 1 - n]
            })
            .collect();
        let dec_lo: Vec<f64> = rec_lo.iter().rev().copied().collect();
        let dec_hi: Vec<f64> = rec_hi.iter().rev().copied().collect();
        Wavelet {
            family,
            dec_lo,
            dec_hi,
            rec_lo,
            rec_hi,
        }
    }

    /// The family this filter bank was built from.
    pub fn family(&self) -> WaveletFamily {
        self.family
    }

    /// Filter length `L = 2p`.
    pub fn filter_len(&self) -> usize {
        self.rec_lo.len()
    }

    /// Analysis (decomposition) low-pass filter.
    pub fn dec_lo(&self) -> &[f64] {
        &self.dec_lo
    }

    /// Analysis (decomposition) high-pass filter.
    pub fn dec_hi(&self) -> &[f64] {
        &self.dec_hi
    }

    /// Synthesis (reconstruction) low-pass filter — the scaling filter `h`.
    pub fn rec_lo(&self) -> &[f64] {
        &self.rec_lo
    }

    /// Synthesis (reconstruction) high-pass filter.
    pub fn rec_hi(&self) -> &[f64] {
        &self.rec_hi
    }

    /// Maximum decomposition depth for a periodized transform of length `n`
    /// that keeps every level's input at least one filter length long (the
    /// condition under which the periodized transform stays exactly
    /// orthonormal).
    ///
    /// # Examples
    ///
    /// ```
    /// use cs_dsp::wavelet::Wavelet;
    /// let w = Wavelet::daubechies(4)?; // 8-tap
    /// assert_eq!(w.max_level(512), 7); // every level input ≥ 8 samples
    /// # Ok::<(), cs_dsp::DspError>(())
    /// ```
    pub fn max_level(&self, n: usize) -> usize {
        let l = self.filter_len();
        let mut level = 0;
        let mut cur = n;
        while cur >= l && cur.is_multiple_of(2) && cur >= 2 {
            level += 1;
            cur /= 2;
            if cur < l {
                break;
            }
        }
        level
    }
}

/// Binomial coefficient as `f64` (exact for the small arguments used here).
fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc = acc * ((n - i) as f64) / ((i + 1) as f64);
    }
    acc
}

/// The z-domain roots of the non-trivial factor of the Daubechies product
/// filter, grouped so a spectral factor can be chosen per group.
///
/// Each root `y` of `P(y) = Σ_{k<p} C(p−1+k, k) yᵏ` yields a reciprocal pair
/// `{z, 1/z}` via `y = (2 − z − z⁻¹)/4`. Complex `y` roots come in conjugate
/// pairs which we merge into a single group `{z, z̄}` vs `{1/z, 1/z̄}` so
/// every selection yields a real filter.
struct RootGroup {
    /// Roots to multiply in when choosing the "inside the unit circle" branch.
    inside: Vec<Complex>,
    /// Roots for the reciprocal ("outside") branch.
    outside: Vec<Complex>,
}

fn product_filter_root_groups(p: usize) -> Vec<RootGroup> {
    if p == 1 {
        return Vec::new();
    }
    // P(y) = Σ_{k=0}^{p-1} C(p-1+k, k) y^k
    let coeffs: Vec<f64> = (0..p).map(|k| binomial(p - 1 + k, k)).collect();
    let y_roots = roots(&coeffs);

    // Partition the y-roots: real roots stand alone, complex roots pair with
    // their conjugate (keep the Im > 0 representative).
    let tol = 1e-9;
    let mut groups = Vec::new();
    for &y in &y_roots {
        if y.im.abs() < tol {
            let (zi, zo) = z_pair(Complex::from_re(y.re));
            groups.push(RootGroup {
                inside: vec![zi],
                outside: vec![zo],
            });
        } else if y.im > 0.0 {
            let (zi, zo) = z_pair(y);
            groups.push(RootGroup {
                inside: vec![zi, zi.conj()],
                outside: vec![zo, zo.conj()],
            });
        }
    }
    groups
}

/// Solves `y = (2 − z − z⁻¹)/4` for `z`, returning `(inside, outside)` where
/// `|inside| ≤ 1 ≤ |outside|` and `inside · outside = 1`.
fn z_pair(y: Complex) -> (Complex, Complex) {
    // z² − (2 − 4y) z + 1 = 0
    let b = Complex::from_re(2.0) - Complex::from_re(4.0) * y;
    let disc = (b * b - Complex::from_re(4.0)).sqrt();
    let two = Complex::from_re(2.0);
    let z1 = (b + disc) / two;
    let z2 = (b - disc) / two;
    if z1.abs() <= z2.abs() {
        (z1, z2)
    } else {
        (z2, z1)
    }
}

/// Builds the length-2p scaling filter from a selection of spectral-factor
/// roots: `h(z) = c (1+z)^p Π (z − z_k)`, normalized to `Σh = √2`.
fn scaling_filter_from_roots(p: usize, selected: &[Complex]) -> Vec<f64> {
    let mut poly = vec![Complex::ONE];
    for &z in selected {
        poly = mul_monomial(&poly, z);
    }
    for _ in 0..p {
        poly = mul_monomial(&poly, Complex::from_re(-1.0)); // (z + 1) factor
    }
    let mut h: Vec<f64> = poly.iter().map(|c| c.re).collect();
    debug_assert_eq!(h.len(), 2 * p);
    let sum: f64 = h.iter().sum();
    let target = std::f64::consts::SQRT_2;
    let scale = target / sum;
    for v in &mut h {
        *v *= scale;
    }
    h
}

/// Daubechies extremal-phase scaling filter: always take the roots inside the
/// unit circle (the minimum-phase spectral factor).
fn scaling_filter_daubechies(p: usize) -> Vec<f64> {
    let groups = product_filter_root_groups(p);
    let selected: Vec<Complex> = groups.iter().flat_map(|g| g.inside.clone()).collect();
    scaling_filter_from_roots(p, &selected)
}

/// Symlet (least-asymmetric) scaling filter: search over the `2^G` spectral
/// factor selections and keep the one whose frequency response deviates least
/// from linear phase.
fn scaling_filter_symlet(p: usize) -> Vec<f64> {
    let groups = product_filter_root_groups(p);
    let g = groups.len();
    let mut best: Option<(f64, Vec<f64>)> = None;
    for mask in 0..(1_u32 << g) {
        let mut selected = Vec::new();
        for (i, grp) in groups.iter().enumerate() {
            if mask & (1 << i) == 0 {
                selected.extend_from_slice(&grp.inside);
            } else {
                selected.extend_from_slice(&grp.outside);
            }
        }
        let h = scaling_filter_from_roots(p, &selected);
        let score = phase_nonlinearity(&h);
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, h));
        }
    }
    best.expect("at least one selection exists").1
}

/// Sum-of-squares deviation of the unwrapped phase of `H(e^{iω})` from its
/// least-squares linear fit, sampled on a frequency grid.
fn phase_nonlinearity(h: &[f64]) -> f64 {
    const K: usize = 128;
    let mut phases = Vec::with_capacity(K);
    let mut prev = 0.0_f64;
    let mut offset = 0.0_f64;
    for k in 0..K {
        // Stay away from ω = π where H of an orthonormal low-pass vanishes.
        let w = std::f64::consts::PI * (k as f64 + 0.5) / (K as f64 + 4.0);
        let z = Complex::new(w.cos(), -w.sin());
        let hw = horner(h, z);
        let mut ph = hw.im.atan2(hw.re) + offset;
        // Unwrap.
        while ph - prev > std::f64::consts::PI {
            ph -= 2.0 * std::f64::consts::PI;
            offset -= 2.0 * std::f64::consts::PI;
        }
        while ph - prev < -std::f64::consts::PI {
            ph += 2.0 * std::f64::consts::PI;
            offset += 2.0 * std::f64::consts::PI;
        }
        prev = ph;
        phases.push((w, ph));
    }
    // Least-squares linear fit phase ≈ a·ω + b.
    let n = K as f64;
    let sw: f64 = phases.iter().map(|(w, _)| w).sum();
    let sp: f64 = phases.iter().map(|(_, p)| p).sum();
    let sww: f64 = phases.iter().map(|(w, _)| w * w).sum();
    let swp: f64 = phases.iter().map(|(w, p)| w * p).sum();
    let denom = n * sww - sw * sw;
    let a = (n * swp - sw * sp) / denom;
    let b = (sp - a * sw) / n;
    phases
        .iter()
        .map(|(w, p)| {
            let d = p - (a * w + b);
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Even-lag autocorrelation must be δ₀ for an orthonormal scaling filter.
    fn assert_orthonormal(h: &[f64], tol: f64) {
        let l = h.len();
        for j in 0..l / 2 {
            let acc: f64 = (0..l - 2 * j).map(|n| h[n] * h[n + 2 * j]).sum();
            let expect = if j == 0 { 1.0 } else { 0.0 };
            assert!(
                (acc - expect).abs() < tol,
                "autocorr lag {} = {} (len {})",
                2 * j,
                acc,
                l
            );
        }
    }

    #[test]
    fn haar_is_exact() {
        let w = Wavelet::haar();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((w.rec_lo()[0] - s).abs() < 1e-15);
        assert!((w.rec_lo()[1] - s).abs() < 1e-15);
        assert_eq!(w.filter_len(), 2);
    }

    #[test]
    fn daubechies_orthonormal_all_orders() {
        for p in 1..=10 {
            let w = Wavelet::daubechies(p).unwrap();
            assert_eq!(w.filter_len(), 2 * p);
            assert_orthonormal(w.rec_lo(), 1e-8);
            let sum: f64 = w.rec_lo().iter().sum();
            assert!((sum - std::f64::consts::SQRT_2).abs() < 1e-10, "db{p} sum {sum}");
        }
    }

    #[test]
    fn symlet_orthonormal_all_orders() {
        for p in 2..=10 {
            let w = Wavelet::symlet(p).unwrap();
            assert_eq!(w.filter_len(), 2 * p);
            assert_orthonormal(w.rec_lo(), 1e-8);
        }
    }

    #[test]
    fn vanishing_moments() {
        // Σ nᵐ g[n] = 0 for m < p, where g = rec_hi.
        for family in [
            WaveletFamily::Daubechies(2),
            WaveletFamily::Daubechies(4),
            WaveletFamily::Daubechies(7),
            WaveletFamily::Symlet(4),
            WaveletFamily::Symlet(8),
        ] {
            let w = Wavelet::new(family).unwrap();
            let p = family.vanishing_moments();
            for m in 0..p {
                let s: f64 = w
                    .rec_hi()
                    .iter()
                    .enumerate()
                    .map(|(n, &g)| (n as f64).powi(m as i32) * g)
                    .sum();
                assert!(
                    s.abs() < 1e-6,
                    "{family}: moment {m} = {s:e}"
                );
            }
        }
    }

    #[test]
    fn db4_matches_published_coefficients() {
        // Cross-check the spectral factorization against the widely published
        // db4 scaling filter (ascending, extremal phase, as in pywt rec_lo).
        let expect = [
            0.230_377_813_308_855_2,
            0.714_846_570_552_541_5,
            0.630_880_767_929_590_4,
            -0.027_983_769_416_983_85,
            -0.187_034_811_718_881_14,
            0.030_841_381_835_986_965,
            0.032_883_011_666_982_945,
            -0.010_597_401_784_997_278,
        ];
        let w = Wavelet::daubechies(4).unwrap();
        let h = w.rec_lo();
        // Accept either time orientation (both are valid extremal-phase
        // factors); match whichever end is closer.
        let direct: f64 = h.iter().zip(expect).map(|(a, b)| (a - b).abs()).sum();
        let rev: f64 = h
            .iter()
            .rev()
            .zip(expect)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            direct.min(rev) < 1e-7,
            "db4 mismatch: {h:?} (direct {direct:e}, reversed {rev:e})"
        );
    }

    #[test]
    fn symlet_is_more_symmetric_than_daubechies() {
        for p in [4, 6, 8] {
            let db = Wavelet::daubechies(p).unwrap();
            let sym = Wavelet::symlet(p).unwrap();
            let ndb = phase_nonlinearity(db.rec_lo());
            let nsym = phase_nonlinearity(sym.rec_lo());
            assert!(
                nsym <= ndb + 1e-12,
                "sym{p} nonlinearity {nsym} > db{p} {ndb}"
            );
        }
    }

    #[test]
    fn qmf_relations_hold() {
        let w = Wavelet::daubechies(5).unwrap();
        let l = w.filter_len();
        for n in 0..l {
            let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert!((w.rec_hi()[n] - sign * w.rec_lo()[l - 1 - n]).abs() < 1e-15);
            assert_eq!(w.dec_lo()[n], w.rec_lo()[l - 1 - n]);
            assert_eq!(w.dec_hi()[n], w.rec_hi()[l - 1 - n]);
        }
    }

    #[test]
    fn unsupported_orders_error() {
        assert!(Wavelet::daubechies(0).is_err());
        assert!(Wavelet::daubechies(11).is_err());
        assert!(Wavelet::symlet(1).is_err());
        assert!(Wavelet::symlet(11).is_err());
    }

    #[test]
    fn max_level_accounts_for_filter_length() {
        let db4 = Wavelet::daubechies(4).unwrap(); // 8 taps
        assert_eq!(db4.max_level(512), 7); // 512 → 4, every input ≥ 8
        assert_eq!(db4.max_level(8), 1); // one level (input 8 ≥ 8 taps)
        assert_eq!(db4.max_level(4), 0); // input shorter than the filter
        let haar = Wavelet::haar();
        assert_eq!(haar.max_level(8), 3);
        assert_eq!(haar.max_level(7), 0);
    }

    #[test]
    fn family_display_names() {
        assert_eq!(WaveletFamily::Haar.name(), "haar");
        assert_eq!(WaveletFamily::Daubechies(4).to_string(), "db4");
        assert_eq!(WaveletFamily::Symlet(8).to_string(), "sym8");
    }
}
