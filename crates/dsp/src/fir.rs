//! FIR filtering and convolution.
//!
//! Used by the ECG substrate's rational resampler (360 Hz MIT-BIH-style
//! records → the 256 Hz stream the paper feeds the mote) and by the noise
//! shaping in the synthetic database. The streaming [`FirFilter`] mirrors the
//! multi-band filtering loops the paper vectorizes on the iPhone (§IV-B2b).

use crate::error::DspError;
use crate::real::Real;

/// How much of the full convolution to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvMode {
    /// All `n + l − 1` samples of the linear convolution.
    Full,
    /// The central `n` samples (aligned with the input; default).
    #[default]
    Same,
    /// Only the `n − l + 1` samples where the kernel fully overlaps.
    Valid,
}

/// Linear convolution of `x` with `kernel`.
///
/// # Panics
///
/// Panics if `kernel` is empty, or if `mode` is [`ConvMode::Valid`] and the
/// kernel is longer than the signal.
///
/// # Examples
///
/// ```
/// use cs_dsp::fir::{convolve, ConvMode};
/// let y = convolve(&[1.0_f64, 2.0, 3.0], &[1.0, 1.0], ConvMode::Full);
/// assert_eq!(y, vec![1.0, 3.0, 5.0, 3.0]);
/// ```
pub fn convolve<T: Real>(x: &[T], kernel: &[T], mode: ConvMode) -> Vec<T> {
    assert!(!kernel.is_empty(), "convolve: empty kernel");
    let n = x.len();
    let l = kernel.len();
    if n == 0 {
        return Vec::new();
    }
    let full_len = n + l - 1;
    let mut full = vec![T::ZERO; full_len];
    for (i, &xi) in x.iter().enumerate() {
        if xi == T::ZERO {
            continue;
        }
        for (j, &kj) in kernel.iter().enumerate() {
            full[i + j] += xi * kj;
        }
    }
    match mode {
        ConvMode::Full => full,
        ConvMode::Same => {
            let start = (l - 1) / 2;
            full[start..start + n].to_vec()
        }
        ConvMode::Valid => {
            assert!(l <= n, "convolve: kernel longer than signal in Valid mode");
            full[l - 1..n].to_vec()
        }
    }
}

/// A streaming FIR filter with persistent state, suitable for processing a
/// long ECG record in chunks without boundary artifacts between chunks.
///
/// # Examples
///
/// ```
/// use cs_dsp::fir::FirFilter;
///
/// let mut f = FirFilter::new(vec![0.5_f64, 0.5])?; // 2-tap moving average
/// let a = f.process(&[1.0, 1.0]);
/// let b = f.process(&[1.0, 1.0]);
/// assert_eq!(a, vec![0.5, 1.0]); // warm-up then steady state
/// assert_eq!(b, vec![1.0, 1.0]);
/// # Ok::<(), cs_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FirFilter<T: Real> {
    taps: Vec<T>,
    /// Delay line, most recent sample last; always `taps.len() − 1` long.
    state: Vec<T>,
}

impl<T: Real> FirFilter<T> {
    /// Creates a filter from its impulse response.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFilter`] if `taps` is empty or contains a
    /// non-finite value.
    pub fn new(taps: Vec<T>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::InvalidFilter("empty tap vector".into()));
        }
        if taps.iter().any(|t| !t.is_finite()) {
            return Err(DspError::InvalidFilter("non-finite tap".into()));
        }
        let state = vec![T::ZERO; taps.len() - 1];
        Ok(FirFilter { taps, state })
    }

    /// The filter's impulse response.
    pub fn taps(&self) -> &[T] {
        &self.taps
    }

    /// Filters a chunk, advancing the internal delay line.
    pub fn process(&mut self, chunk: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(chunk.len());
        let l = self.taps.len();
        for &sample in chunk {
            // y[n] = Σ taps[j] · x[n − j]; delay line holds x[n−1], …
            let mut acc = self.taps[0] * sample;
            for j in 1..l {
                acc += self.taps[j] * self.state[self.state.len() - j];
            }
            out.push(acc);
            if !self.state.is_empty() {
                self.state.rotate_left(1);
                let last = self.state.len() - 1;
                self.state[last] = sample;
            }
        }
        out
    }

    /// Resets the delay line to silence.
    pub fn reset(&mut self) {
        for v in &mut self.state {
            *v = T::ZERO;
        }
    }
}

/// Designs a windowed-sinc low-pass FIR prototype.
///
/// `cutoff` is the normalized cutoff in cycles/sample (`0 < cutoff < 0.5`);
/// `taps` is the filter length. The window is supplied by the caller (see
/// [`crate::window`]); the result is gain-normalized to unity at DC.
///
/// # Panics
///
/// Panics if `cutoff` is outside `(0, 0.5)` or `window.len() != taps`.
///
/// # Examples
///
/// ```
/// use cs_dsp::fir::lowpass_sinc;
/// use cs_dsp::window::hann;
///
/// let h = lowpass_sinc::<f64>(0.25, &hann(31));
/// let dc: f64 = h.iter().sum();
/// assert!((dc - 1.0).abs() < 1e-12);
/// ```
pub fn lowpass_sinc<T: Real>(cutoff: f64, window: &[f64]) -> Vec<T> {
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "lowpass_sinc: cutoff must be in (0, 0.5)"
    );
    let taps = window.len();
    assert!(taps >= 1, "lowpass_sinc: need at least one tap");
    let mid = (taps - 1) as f64 / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - mid;
            let sinc = if t.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * std::f64::consts::PI * cutoff * t).sin() / (std::f64::consts::PI * t)
            };
            sinc * window[i]
        })
        .collect();
    let dc: f64 = h.iter().sum();
    for v in &mut h {
        *v /= dc;
    }
    h.into_iter().map(T::from_f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn convolve_modes_lengths() {
        let x = [1.0_f64, 2.0, 3.0, 4.0, 5.0];
        let k = [1.0, 0.0, -1.0];
        assert_eq!(convolve(&x, &k, ConvMode::Full).len(), 7);
        assert_eq!(convolve(&x, &k, ConvMode::Same).len(), 5);
        assert_eq!(convolve(&x, &k, ConvMode::Valid).len(), 3);
    }

    #[test]
    fn convolve_identity_kernel() {
        let x = [1.0_f64, -2.0, 3.5];
        assert_eq!(convolve(&x, &[1.0], ConvMode::Same), x.to_vec());
    }

    #[test]
    fn convolve_matches_manual() {
        // valid part of [1,2,3] * [1,-1] (differencing)
        let y = convolve(&[1.0_f64, 2.0, 3.0], &[1.0, -1.0], ConvMode::Valid);
        assert_eq!(y, vec![1.0, 1.0]); // x[n] - x[n-1] ... kernel [1,-1]: y[n]=x[n]*1+x[n-1]*(-1)? full=[1,1,1,-3]
    }

    #[test]
    fn streaming_equals_batch() {
        let taps = vec![0.25_f64, 0.5, 0.25, -0.1];
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut f = FirFilter::new(taps.clone()).unwrap();
        let mut streamed = Vec::new();
        for chunk in x.chunks(7) {
            streamed.extend(f.process(chunk));
        }
        // Batch reference: causal filtering = full conv truncated to n.
        let full = convolve(&x, &taps, ConvMode::Full);
        for (a, b) in streamed.iter().zip(full.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fir_reset_clears_state() {
        let mut f = FirFilter::new(vec![0.0_f64, 1.0]).unwrap(); // unit delay
        let _ = f.process(&[5.0]);
        f.reset();
        assert_eq!(f.process(&[1.0]), vec![0.0]); // no leftover 5.0
    }

    #[test]
    fn invalid_filters_rejected() {
        assert!(FirFilter::<f64>::new(vec![]).is_err());
        assert!(FirFilter::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn lowpass_rejects_high_frequency() {
        let h = lowpass_sinc::<f64>(0.1, &crate::window::hamming(63));
        // Respond to DC, reject 0.4 cycles/sample.
        let n = 512;
        let hi: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 0.4 * i as f64).sin())
            .collect();
        let y = convolve(&hi, &h, ConvMode::Valid);
        let energy_in: f64 = hi.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let energy_out: f64 = y.iter().map(|v| v * v).sum::<f64>() / y.len() as f64;
        assert!(energy_out < energy_in * 1e-4, "stopband leak: {energy_out}");
    }

    proptest! {
        #[test]
        fn prop_convolution_is_linear(a in -2.0_f64..2.0, b in -2.0_f64..2.0) {
            let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).cos()).collect();
            let z: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
            let k = [0.2_f64, -0.4, 0.6];
            let mixed: Vec<f64> = x.iter().zip(&z).map(|(u, v)| a * u + b * v).collect();
            let lhs = convolve(&mixed, &k, ConvMode::Full);
            let cx = convolve(&x, &k, ConvMode::Full);
            let cz = convolve(&z, &k, ConvMode::Full);
            for i in 0..lhs.len() {
                prop_assert!((lhs[i] - (a * cx[i] + b * cz[i])).abs() < 1e-10);
            }
        }

        #[test]
        fn prop_convolution_commutes(n in 1_usize..20, l in 1_usize..20) {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.5).collect();
            let k: Vec<f64> = (0..l).map(|i| (i as f64 - 2.0) * 0.25).collect();
            let a = convolve(&x, &k, ConvMode::Full);
            let b = convolve(&k, &x, ConvMode::Full);
            for (u, v) in a.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-10);
            }
        }
    }
}
