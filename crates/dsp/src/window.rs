//! Window functions for FIR design.
//!
//! These feed [`crate::fir::lowpass_sinc`], which in turn builds the
//! anti-aliasing prototype of the 360 Hz → 256 Hz rational resampler in
//! `cs-ecg-data`.

/// Symmetric Hann window of length `n`.
///
/// # Examples
///
/// ```
/// let w = cs_dsp::window::hann(5);
/// assert!((w[2] - 1.0).abs() < 1e-12); // peak at the center
/// assert!(w[0].abs() < 1e-12);
/// ```
pub fn hann(n: usize) -> Vec<f64> {
    cosine_window(n, &[0.5, -0.5])
}

/// Symmetric Hamming window of length `n`.
pub fn hamming(n: usize) -> Vec<f64> {
    cosine_window(n, &[0.54, -0.46])
}

/// Symmetric Blackman window of length `n`.
pub fn blackman(n: usize) -> Vec<f64> {
    cosine_window(n, &[0.42, -0.5, 0.08])
}

/// Kaiser window of length `n` with shape parameter `beta`.
///
/// Larger `beta` trades main-lobe width for side-lobe suppression; `beta ≈ 8.6`
/// gives ~90 dB stop-band attenuation, ample for 11-bit ECG samples.
///
/// # Examples
///
/// ```
/// let w = cs_dsp::window::kaiser(33, 8.6);
/// assert!((w[16] - 1.0).abs() < 1e-12);
/// assert!(w[0] < 0.01);
/// ```
pub fn kaiser(n: usize, beta: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let denom = bessel_i0(beta);
    let mid = (n - 1) as f64 / 2.0;
    (0..n)
        .map(|i| {
            let r = (i as f64 - mid) / mid;
            bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / denom
        })
        .collect()
}

/// Generalized cosine window: `w[i] = Σ_k a_k cos(2πki/(n−1))`.
fn cosine_window(n: usize, coeffs: &[f64]) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![coeffs.iter().sum()];
    }
    (0..n)
        .map(|i| {
            let x = 2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64;
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &a)| a * (k as f64 * x).cos())
                .sum()
        })
        .collect()
}

/// Modified Bessel function of the first kind, order zero, by power series.
///
/// Converges rapidly for the `|x| ≲ 20` arguments used in Kaiser windows.
fn bessel_i0(x: f64) -> f64 {
    let half_x = x / 2.0;
    let mut term = 1.0_f64;
    let mut sum = 1.0_f64;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_symmetric(w: &[f64]) {
        for i in 0..w.len() / 2 {
            assert!(
                (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                "asymmetry at {i}"
            );
        }
    }

    #[test]
    fn windows_are_symmetric_and_peaked() {
        for w in [hann(17), hamming(17), blackman(17), kaiser(17, 6.0)] {
            assert_symmetric(&w);
            let peak = w.iter().cloned().fold(f64::MIN, f64::max);
            assert!((peak - w[8]).abs() < 1e-12, "peak not centered");
            assert!(w.iter().all(|&v| v <= 1.0 + 1e-12));
        }
    }

    #[test]
    fn hann_endpoints_zero() {
        let w = hann(9);
        assert!(w[0].abs() < 1e-12 && w[8].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_nonzero() {
        let w = hamming(9);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(hann(0).is_empty());
        assert_eq!(hann(1), vec![0.0]); // 0.5 - 0.5
        assert_eq!(hamming(1).len(), 1);
        assert_eq!(kaiser(1, 5.0), vec![1.0]);
        assert!(kaiser(0, 5.0).is_empty());
    }

    #[test]
    fn bessel_i0_known_values() {
        // I0(0) = 1; I0(1) ≈ 1.2660658777520084; I0(5) ≈ 27.239871823604442
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.266_065_877_752_008_4).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239_871_823_604_44).abs() < 1e-9);
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let w = kaiser(8, 0.0);
        assert!(w.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }
}
