//! Error types for the DSP substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by the DSP substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// A signal length did not satisfy a structural requirement (e.g. not
    /// divisible by `2^levels` for a periodized DWT).
    InvalidLength {
        /// The offending length.
        len: usize,
        /// Human-readable statement of the requirement that failed.
        requirement: String,
    },
    /// A wavelet decomposition depth was zero or exceeded the maximum depth
    /// supported for the signal length and filter.
    InvalidLevel {
        /// The requested depth.
        requested: usize,
        /// The maximum valid depth for this signal/wavelet combination.
        max: usize,
    },
    /// The requested wavelet family/order is not implemented.
    UnsupportedWavelet(String),
    /// A filter specification was structurally invalid (e.g. empty taps).
    InvalidFilter(String),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidLength { len, requirement } => {
                write!(f, "invalid signal length {len}: must be {requirement}")
            }
            DspError::InvalidLevel { requested, max } => {
                write!(
                    f,
                    "invalid decomposition depth {requested}: valid range is 1..={max}"
                )
            }
            DspError::UnsupportedWavelet(name) => {
                write!(f, "unsupported wavelet `{name}`")
            }
            DspError::InvalidFilter(msg) => write!(f, "invalid filter: {msg}"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DspError::InvalidLength {
            len: 7,
            requirement: "even".into(),
        };
        assert_eq!(e.to_string(), "invalid signal length 7: must be even");
        let e = DspError::InvalidLevel {
            requested: 9,
            max: 5,
        };
        assert!(e.to_string().contains("1..=5"));
        assert!(DspError::UnsupportedWavelet("db42".into())
            .to_string()
            .contains("db42"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<DspError>();
    }
}
