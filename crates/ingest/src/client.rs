//! The mote side of the ingest protocol.
//!
//! Used by the load generator, the soak harness, and the integration
//! tests; a firmware port would follow the same shape. The client owns
//! the hello/accept exchange, length-prefixes outgoing frames, keeps a
//! bounded **replay tail** of recently sent records, and surfaces server
//! control records (drain announcements, goodbyes) as they arrive.
//!
//! Resume after a torn connection is deliberately dumb: reconnect under
//! the same patient id and [`replay`](IngestClient::replay) the saved
//! tail. The server maps the patient to the same fleet slot, and the
//! engine's reassembler drops every frame it already emitted — counted
//! as duplicates, never double-emitted — so the client needs no ack
//! tracking beyond "keep the last few records".

use crate::deframe::encode_record;
use crate::proto::{
    encode_hello, parse_control, Control, ControlCode, Hello, LaneResume, CONTROL_BYTES,
};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Outcome of a connection attempt.
#[derive(Debug)]
pub enum Connect {
    /// Admitted; stream frames through the returned client.
    Accepted(IngestClient),
    /// The server answered with a NACK (shed, draining, bad handshake);
    /// the control record carries the `Retry-After` hint.
    Refused(Control),
}

/// One live ingest session, client side.
#[derive(Debug)]
pub struct IngestClient {
    stream: TcpStream,
    record_buf: Vec<u8>,
    tail: VecDeque<Vec<u8>>,
    tail_cap: usize,
    ctrl_buf: [u8; CONTROL_BYTES],
    ctrl_filled: usize,
    /// Frames written this session (replays included).
    pub frames_sent: u64,
}

impl IngestClient {
    /// Connects, sends the hello, and waits up to `timeout` for the
    /// server's verdict. `tail_cap` bounds the replay tail (records).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations surface as `io::Error`;
    /// typed refusals come back as [`Connect::Refused`].
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        patient: u32,
        lanes: &[LaneResume],
        tail_cap: usize,
        timeout: Duration,
    ) -> std::io::Result<Connect> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(timeout))?;
        let hello = Hello { patient, lanes: lanes.to_vec() };
        stream.write_all(&encode_hello(&hello))?;
        let control = read_control_blocking(&mut stream, timeout)?;
        if control.code != ControlCode::Accept {
            return Ok(Connect::Refused(control));
        }
        Ok(Connect::Accepted(IngestClient {
            stream,
            record_buf: Vec::with_capacity(crate::deframe::MAX_FRAME_BYTES + 2),
            tail: VecDeque::new(),
            tail_cap,
            ctrl_buf: [0u8; CONTROL_BYTES],
            ctrl_filled: 0,
            frames_sent: 0,
        }))
    }

    /// Sends one wire frame as a length-prefixed record and remembers it
    /// in the replay tail.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (a torn session; keep the tail
    /// via [`into_tail`](Self::into_tail) and reconnect).
    pub fn send_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.record_buf.clear();
        encode_record(frame, &mut self.record_buf);
        self.stream.write_all(&self.record_buf)?;
        self.frames_sent += 1;
        if self.tail_cap > 0 {
            if self.tail.len() == self.tail_cap {
                self.tail.pop_front();
            }
            self.tail.push_back(self.record_buf.clone());
        }
        Ok(())
    }

    /// Writes raw bytes with no record framing — a chaos/test helper
    /// for producing partial prefixes, trickles, and boundary garbage a
    /// real mote would never send.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Replays a saved tail (already length-prefixed records) from a
    /// previous session, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn replay(&mut self, tail: &VecDeque<Vec<u8>>) -> std::io::Result<()> {
        for record in tail {
            self.stream.write_all(record)?;
            self.frames_sent += 1;
        }
        Ok(())
    }

    /// Consumes the client, keeping the replay tail for a reconnect.
    pub fn into_tail(self) -> VecDeque<Vec<u8>> {
        self.tail
    }

    /// Non-blocking check for a server control record (e.g. a drain
    /// announcement mid-stream). Partial reads accumulate across calls.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed control records.
    pub fn poll_control(&mut self) -> std::io::Result<Option<Control>> {
        self.stream.set_read_timeout(Some(Duration::from_millis(1)))?;
        match self.stream.read(&mut self.ctrl_buf[self.ctrl_filled..]) {
            Ok(0) => return Ok(None),
            Ok(n) => self.ctrl_filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
        if self.ctrl_filled == CONTROL_BYTES {
            self.ctrl_filled = 0;
            let control = parse_control(&self.ctrl_buf)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
            return Ok(Some(control));
        }
        Ok(None)
    }

    /// Finishes the session cleanly: close the write side, then read
    /// control records until the server's goodbye (skipping a drain
    /// announcement if one is in flight).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; times out with `TimedOut` if no
    /// goodbye arrives.
    pub fn finish(mut self, timeout: Duration) -> std::io::Result<Control> {
        self.stream.shutdown(Shutdown::Write)?;
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::Error::new(ErrorKind::TimedOut, "no goodbye"));
            }
            let mut control_bytes = [0u8; CONTROL_BYTES];
            control_bytes[..self.ctrl_filled].copy_from_slice(&self.ctrl_buf[..self.ctrl_filled]);
            let mut filled = self.ctrl_filled;
            self.ctrl_filled = 0;
            while filled < CONTROL_BYTES {
                let now = Instant::now();
                if now >= deadline {
                    return Err(std::io::Error::new(ErrorKind::TimedOut, "no goodbye"));
                }
                self.stream.set_read_timeout(Some(deadline - now))?;
                match self.stream.read(&mut control_bytes[filled..]) {
                    Ok(0) => {
                        return Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "closed before goodbye",
                        ))
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            let control = parse_control(&control_bytes)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
            match control.code {
                ControlCode::Draining => continue,
                _ => return Ok(control),
            }
        }
    }
}

/// Blocking read of exactly one control record under a deadline.
fn read_control_blocking(stream: &mut TcpStream, timeout: Duration) -> std::io::Result<Control> {
    let deadline = Instant::now() + timeout;
    let mut buf = [0u8; CONTROL_BYTES];
    let mut filled = 0usize;
    while filled < CONTROL_BYTES {
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(ErrorKind::TimedOut, "no control record"));
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "closed before control record",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    parse_control(&buf).map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))
}
