//! One ingest session: admission → handshake → streaming → goodbye.
//!
//! Runs on its own thread (spawned by the accept loop) and owns the
//! connection end to end. Every exit path records exactly one
//! [`IngestDisconnect`] reason and keeps the
//! [`cs_ingest_sessions`](cs_telemetry::TelemetryRegistry::ingest_sessions)
//! gauge balanced, so the live session table is always reconstructible
//! from telemetry alone.
//!
//! Deadlines are enforced with short poll-quantum read timeouts rather
//! than one long blocking read: a blocked session wakes every
//! [`IngestConfig::poll`](crate::IngestConfig) to recheck the handshake
//! deadline, the idle clock, the read-rate floor, and the server drain
//! flag — so no client, however hostile, can hold a thread past its
//! budgets.

use crate::deframe::Deframer;
use crate::proto::{
    self, Control, ControlCode, Hello, CONTROL_BYTES, MAX_HELLO_BYTES,
};
use crate::server::Shared;
use cs_core::WireFrame;
use cs_telemetry::{IngestDisconnect, IngestState};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Serializes and sends one control record with a bounded write.
fn send_control(stream: &mut TcpStream, code: ControlCode, retry_after: Duration, count: u64) {
    let mut buf = [0u8; CONTROL_BYTES];
    proto::encode_control(
        Control {
            code,
            retry_after_secs: retry_after.as_secs().min(u16::MAX as u64) as u16,
            count: count.min(u32::MAX as u64) as u32,
        },
        &mut buf,
    );
    let _ = stream.write_all(&buf);
}

enum HandshakeFail {
    Timeout,
    Malformed,
    Closed,
    Io,
}

/// Reads the hello under the handshake deadline, polling so the budget
/// is enforced even against one-byte-at-a-time senders.
fn read_hello(stream: &mut TcpStream, shared: &Shared) -> Result<Hello, HandshakeFail> {
    let deadline = Instant::now() + shared.config.handshake_deadline;
    let mut buf = [0u8; MAX_HELLO_BYTES];
    let mut filled = 0usize;
    loop {
        if let Some(len) = proto::hello_len(&buf[..filled]) {
            if len > MAX_HELLO_BYTES {
                return Err(HandshakeFail::Malformed);
            }
            if filled >= len {
                return proto::parse_hello(&buf[..len]).map_err(|_| HandshakeFail::Malformed);
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(HandshakeFail::Timeout);
        }
        let timeout = (deadline - now).min(shared.config.poll);
        if stream.set_read_timeout(Some(timeout)).is_err() {
            return Err(HandshakeFail::Io);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(HandshakeFail::Closed),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(HandshakeFail::Io),
        }
    }
}

/// Runs one connection to completion. Never panics on wire input; every
/// return path has already sent whatever control record the peer is
/// owed and recorded its disconnect reason.
pub(crate) fn run(mut stream: TcpStream, shared: &Shared) {
    let telemetry = &shared.telemetry;
    let config = shared.config;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));

    if !shared.admission.try_admit(shared.feed.len()) {
        telemetry.record_ingest_shed();
        telemetry.record_ingest_disconnect(IngestDisconnect::Shed);
        send_control(&mut stream, ControlCode::Shed, config.retry_after, 0);
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    shared.sessions_served.fetch_add(1, Ordering::Relaxed);
    telemetry.ingest_session_enter(IngestState::Handshaking);

    let hello = match read_hello(&mut stream, shared) {
        Ok(hello) => hello,
        Err(fail) => {
            let reason = match fail {
                HandshakeFail::Timeout => IngestDisconnect::HandshakeTimeout,
                HandshakeFail::Malformed => {
                    send_control(&mut stream, ControlCode::BadHandshake, Duration::ZERO, 0);
                    IngestDisconnect::BadHandshake
                }
                HandshakeFail::Closed => IngestDisconnect::ClientClosed,
                HandshakeFail::Io => IngestDisconnect::IoError,
            };
            telemetry.ingest_session_exit(IngestState::Handshaking);
            telemetry.record_ingest_disconnect(reason);
            shared.admission.release();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };

    let slot = shared.slot(hello.patient);
    send_control(&mut stream, ControlCode::Accept, Duration::ZERO, hello.lanes.len() as u64);
    telemetry.ingest_session_exit(IngestState::Handshaking);
    telemetry.ingest_session_enter(IngestState::Streaming);

    let (state, reason, frames) = stream_frames(&mut stream, shared, slot);
    let goodbye = match reason {
        IngestDisconnect::IdleTimeout | IngestDisconnect::SlowLoris => ControlCode::Evicted,
        _ => ControlCode::Goodbye,
    };
    send_control(&mut stream, goodbye, Duration::ZERO, frames);
    telemetry.ingest_session_exit(state);
    telemetry.record_ingest_disconnect(reason);
    shared.admission.release();
    let _ = stream.shutdown(Shutdown::Both);
}

/// The streaming phase: deframe, forward, enforce budgets. Returns the
/// gauge state the session ended in, the disconnect reason, and the
/// frame count for the goodbye record.
fn stream_frames(
    stream: &mut TcpStream,
    shared: &Shared,
    slot: usize,
) -> (IngestState, IngestDisconnect, u64) {
    let telemetry = &shared.telemetry;
    let config = shared.config;
    let mut deframer = Deframer::new();
    let mut frames: u64 = 0;
    let mut state = IngestState::Streaming;
    let mut last_data = Instant::now();
    let mut window_start = Instant::now();
    let mut window_bytes: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;
    if stream.set_read_timeout(Some(config.poll)).is_err() {
        return (state, IngestDisconnect::IoError, frames);
    }

    loop {
        if state != IngestState::Draining && shared.drain.load(Ordering::SeqCst) {
            // Announce the drain; the client finishes its sends and
            // closes, and we keep ingesting until EOF or the grace cap.
            send_control(stream, ControlCode::Draining, config.retry_after, frames);
            telemetry.ingest_session_exit(IngestState::Streaming);
            telemetry.ingest_session_enter(IngestState::Draining);
            state = IngestState::Draining;
            drain_deadline = Some(Instant::now() + config.drain_grace);
        }
        if let Some(deadline) = drain_deadline {
            if Instant::now() >= deadline {
                return (state, IngestDisconnect::Drained, frames);
            }
        }

        match stream.read(deframer.spare()) {
            Ok(0) => {
                let reason = if state == IngestState::Draining {
                    IngestDisconnect::Drained
                } else {
                    IngestDisconnect::ClientClosed
                };
                return (state, reason, frames);
            }
            Ok(n) => {
                deframer.commit(n);
                last_data = Instant::now();
                window_bytes += n as u64;
                let mut batch_frames: u64 = 0;
                let mut batch_bytes: u64 = 0;
                while let Some(record) = deframer.next_frame() {
                    batch_frames += 1;
                    batch_bytes += record.len() as u64;
                    let frame = WireFrame { stream: slot, bytes: record.to_vec() };
                    // Blocking send: decode backpressure slows this
                    // socket instead of dropping diagnostic data. New
                    // sessions shed at admission when this backs up.
                    if shared.feed.send(frame).is_err() {
                        return (state, IngestDisconnect::IoError, frames + batch_frames);
                    }
                }
                if batch_frames > 0 {
                    frames += batch_frames;
                    shared.frames.fetch_add(batch_frames, Ordering::Relaxed);
                    shared.bytes.fetch_add(batch_bytes, Ordering::Relaxed);
                    telemetry.record_ingest_frames(batch_frames, batch_bytes);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state != IngestState::Draining && last_data.elapsed() >= config.idle_timeout {
                    return (state, IngestDisconnect::IdleTimeout, frames);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return (state, IngestDisconnect::IoError, frames),
        }

        if state != IngestState::Draining
            && config.floor_bytes > 0
            && window_start.elapsed() >= config.floor_window
        {
            // A trickle below the floor is a slow-loris; full silence is
            // the idle timeout's call.
            if window_bytes > 0 && window_bytes < config.floor_bytes {
                return (state, IngestDisconnect::SlowLoris, frames);
            }
            window_start = Instant::now();
            window_bytes = 0;
        }
    }
}
