//! Incremental record deframing over a TCP byte stream.
//!
//! TCP deliberately destroys message boundaries: one `write` can arrive
//! as many reads, many writes as one read, and a hostile link can split
//! at every byte. The record layer restores boundaries with a `u16`
//! little-endian length prefix in front of each wire frame
//! ([`cs_core::parse_frame`] format), and [`Deframer`] reassembles
//! records from arbitrary read chunks without allocating: the caller
//! reads straight into [`Deframer::spare`], commits what arrived, and
//! drains complete records with [`Deframer::next`].
//!
//! Damage policy mirrors the fleet engine's: a record whose *frame* is
//! corrupt is still yielded — the engine's CRC check counts and
//! quarantines it, keeping fault accounting exact. Only when the length
//! prefix itself is implausible (out of `[MIN_FRAME_BYTES,
//! MAX_FRAME_BYTES]`, or the byte where the frame should start is not
//! the frame magic) does the deframer **resync**: scan forward for the
//! next plausible boundary, counting every skipped byte. A bit flip in a
//! length prefix therefore costs one garbage record (rejected
//! downstream) plus a counted resync, never a desynced-forever session
//! and never a disconnect.

use cs_core::{FRAME_MAGIC, HEADER_BYTES, TRAILER_BYTES};

/// Length-prefix size in front of every framed record.
pub const RECORD_PREFIX_BYTES: usize = 2;
/// Smallest frame a record may carry (header + CRC, empty payload).
pub const MIN_FRAME_BYTES: usize = HEADER_BYTES + TRAILER_BYTES;
/// Largest frame a record may carry. The paper's geometry emits ~1 kB
/// frames; 4 kB leaves headroom for fatter configs while keeping an
/// implausible prefix detectable.
pub const MAX_FRAME_BYTES: usize = 4096;

/// Internal buffer size: one maximal in-progress record plus a socket
/// read's worth of slack, so [`Deframer::spare`] is never empty after a
/// compaction.
const BUFFER_BYTES: usize = 4 * (RECORD_PREFIX_BYTES + MAX_FRAME_BYTES);

/// Reassembly accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeframeStats {
    /// Complete records yielded (including frames the engine will reject).
    pub records: u64,
    /// Boundary-recovery events after an implausible length prefix.
    pub resyncs: u64,
    /// Bytes discarded while hunting for a plausible boundary.
    pub skipped_bytes: u64,
}

/// Allocation-free incremental record reassembler.
///
/// ```
/// use cs_ingest::{Deframer, RECORD_PREFIX_BYTES};
///
/// let frame = vec![0xC5; 13]; // not a valid frame, but a valid record
/// let mut wire = (frame.len() as u16).to_le_bytes().to_vec();
/// wire.extend_from_slice(&frame);
///
/// let mut deframer = Deframer::new();
/// for byte in wire {
///     deframer.spare()[0] = byte; // worst-case: one byte per read
///     deframer.commit(1);
/// }
/// assert_eq!(deframer.next_frame(), Some(frame.as_slice()));
/// assert_eq!(deframer.next_frame(), None);
/// ```
#[derive(Debug)]
pub struct Deframer {
    buf: Box<[u8]>,
    start: usize,
    end: usize,
    stats: DeframeStats,
}

impl Default for Deframer {
    fn default() -> Self {
        Deframer::new()
    }
}

impl Deframer {
    /// A fresh deframer; the single buffer allocation happens here, at
    /// session setup, never per frame.
    pub fn new() -> Self {
        Deframer {
            buf: vec![0u8; BUFFER_BYTES].into_boxed_slice(),
            start: 0,
            end: 0,
            stats: DeframeStats::default(),
        }
    }

    /// Writable tail to read socket bytes into. Compacts pending bytes
    /// to the buffer front first, so after draining [`next`](Self::next)
    /// the spare is always at least a maximal record wide.
    pub fn spare(&mut self) -> &mut [u8] {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        &mut self.buf[self.end..]
    }

    /// Declares that `n` bytes were read into [`spare`](Self::spare).
    pub fn commit(&mut self, n: usize) {
        debug_assert!(self.end + n <= self.buf.len());
        self.end += n;
    }

    /// Bytes buffered but not yet yielded as records.
    pub fn pending(&self) -> usize {
        self.end - self.start
    }

    /// Reassembly accounting so far.
    pub fn stats(&self) -> DeframeStats {
        self.stats
    }

    /// Next complete record's frame bytes, if one is buffered.
    ///
    /// Resyncs past implausible boundaries as a side effect; returns
    /// `None` when the buffered tail holds no complete record yet.
    pub fn next_frame(&mut self) -> Option<&[u8]> {
        loop {
            if self.pending() < RECORD_PREFIX_BYTES {
                return None;
            }
            let len = u16::from_le_bytes([self.buf[self.start], self.buf[self.start + 1]]) as usize;
            let plausible = (MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&len)
                && (self.pending() < 3 || self.buf[self.start + 2] == FRAME_MAGIC);
            if !plausible {
                self.resync();
                continue;
            }
            if self.pending() < RECORD_PREFIX_BYTES + len {
                return None;
            }
            let frame_start = self.start + RECORD_PREFIX_BYTES;
            self.start = frame_start + len;
            self.stats.records += 1;
            return Some(&self.buf[frame_start..frame_start + len]);
        }
    }

    /// Scans forward from one byte past the current (implausible)
    /// boundary for the next position that could start a record: a
    /// plausible length whose frame byte — when already buffered — is
    /// the frame magic. Trailing bytes too short to judge are kept for
    /// the next read.
    fn resync(&mut self) {
        self.stats.resyncs += 1;
        let mut pos = self.start + 1;
        while pos + RECORD_PREFIX_BYTES <= self.end {
            let len = u16::from_le_bytes([self.buf[pos], self.buf[pos + 1]]) as usize;
            if (MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&len)
                && (pos + 2 >= self.end || self.buf[pos + 2] == FRAME_MAGIC)
            {
                break;
            }
            pos += 1;
        }
        // Keep the last prefix-1 bytes: they may be the head of a
        // boundary whose tail has not arrived.
        let pos = pos.min(self.end.saturating_sub(RECORD_PREFIX_BYTES - 1)).max(self.start + 1);
        self.stats.skipped_bytes += (pos - self.start) as u64;
        self.start = pos;
    }
}

/// Frames `frame` as one record: length prefix followed by the bytes.
/// Client-side helper; the server never builds records.
pub fn encode_record(frame: &[u8], out: &mut Vec<u8>) {
    debug_assert!(frame.len() >= MIN_FRAME_BYTES && frame.len() <= MAX_FRAME_BYTES);
    out.extend_from_slice(&(frame.len() as u16).to_le_bytes());
    out.extend_from_slice(frame);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(fill: u8, len: usize) -> Vec<u8> {
        let mut f = vec![fill; len];
        f[0] = FRAME_MAGIC;
        f
    }

    fn wire(frames: &[Vec<u8>]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            encode_record(f, &mut out);
        }
        out
    }

    #[test]
    fn coalesced_and_split_reads_yield_identical_records() {
        let frames = vec![frame(1, 13), frame(2, 500), frame(3, MAX_FRAME_BYTES)];
        let bytes = wire(&frames);
        for chunk in [1usize, 2, 3, 7, 4096, bytes.len()] {
            let mut deframer = Deframer::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk) {
                let spare = deframer.spare();
                spare[..piece.len()].copy_from_slice(piece);
                deframer.commit(piece.len());
                while let Some(record) = deframer.next_frame() {
                    got.push(record.to_vec());
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert_eq!(deframer.stats().resyncs, 0);
            assert_eq!(deframer.pending(), 0);
        }
    }

    #[test]
    fn implausible_prefix_resyncs_and_counts_skipped_bytes() {
        let tail = vec![frame(7, 40), frame(8, 41)];
        let mut bytes = vec![0x00, 0x00, 0xAA, 0xBB]; // len 0: implausible
        bytes.extend_from_slice(&wire(&tail));
        let mut deframer = Deframer::new();
        let spare = deframer.spare();
        spare[..bytes.len()].copy_from_slice(&bytes);
        deframer.commit(bytes.len());
        let mut got = Vec::new();
        while let Some(record) = deframer.next_frame() {
            got.push(record.to_vec());
        }
        assert_eq!(got, tail, "records after the junk must survive");
        let stats = deframer.stats();
        assert!(stats.resyncs >= 1);
        assert_eq!(stats.skipped_bytes, 4);
    }

    #[test]
    fn corrupt_length_prefix_costs_one_garbage_record_not_the_session() {
        let frames = vec![frame(1, 60), frame(2, 60), frame(3, 60)];
        let mut bytes = wire(&frames);
        bytes[0] ^= 0x04; // first record claims the wrong (plausible) length
        let mut deframer = Deframer::new();
        let spare = deframer.spare();
        spare[..bytes.len()].copy_from_slice(&bytes);
        deframer.commit(bytes.len());
        let mut got = Vec::new();
        while let Some(record) = deframer.next_frame() {
            got.push(record.to_vec());
        }
        // The last frame must come through intact; earlier bytes may be
        // regrouped arbitrarily but every byte is accounted for.
        assert_eq!(got.last().unwrap(), &frames[2]);
        let stats = deframer.stats();
        let yielded: usize = got.iter().map(|r| r.len() + RECORD_PREFIX_BYTES).sum();
        assert_eq!(
            yielded as u64 + stats.skipped_bytes + deframer.pending() as u64,
            bytes.len() as u64,
            "every byte is yielded, skipped, or pending"
        );
    }

    #[test]
    fn spare_is_always_wide_enough_for_a_maximal_record() {
        let mut deframer = Deframer::new();
        // Leave a partial maximal record pending, then demand spare.
        let header = (MAX_FRAME_BYTES as u16).to_le_bytes();
        deframer.spare()[..2].copy_from_slice(&header);
        deframer.commit(2);
        deframer.spare()[0] = FRAME_MAGIC;
        deframer.commit(1);
        assert!(deframer.next_frame().is_none());
        assert!(deframer.spare().len() >= RECORD_PREFIX_BYTES + MAX_FRAME_BYTES);
    }
}
