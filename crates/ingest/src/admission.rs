//! Backpressure-aware admission control.
//!
//! The ingest service protects the decode fleet, not the other way
//! around: when the shared feed queue backs up (workers are saturated)
//! or the session table is full, *new* connections are refused with a
//! typed NACK and a `Retry-After` hint instead of being accepted into a
//! queue that can only grow. Established sessions are never shed by the
//! controller — their backpressure is the blocking feed send, which
//! slows the socket instead of dropping diagnostic data.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Session-count and backlog gates for new connections.
#[derive(Debug)]
pub struct AdmissionController {
    max_sessions: usize,
    shed_backlog: usize,
    active: AtomicUsize,
    shed: AtomicU64,
}

impl AdmissionController {
    /// A controller admitting up to `max_sessions` concurrent sessions
    /// while the feed backlog stays below `shed_backlog` frames.
    pub fn new(max_sessions: usize, shed_backlog: usize) -> Self {
        AdmissionController {
            max_sessions,
            shed_backlog,
            active: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Tries to admit one session given the current feed backlog (frames
    /// queued toward the decode fleet). On success the session is
    /// counted until [`release`](Self::release).
    pub fn try_admit(&self, backlog: usize) -> bool {
        if backlog >= self.shed_backlog {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= self.max_sessions {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Returns an admitted session's slot.
    pub fn release(&self) {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "release without admit");
    }

    /// Currently admitted sessions.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Connections refused so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_to_capacity_then_sheds_then_recovers() {
        let ctl = AdmissionController::new(2, 100);
        assert!(ctl.try_admit(0));
        assert!(ctl.try_admit(0));
        assert!(!ctl.try_admit(0), "third session must shed");
        assert_eq!(ctl.shed_total(), 1);
        ctl.release();
        assert!(ctl.try_admit(0), "capacity freed by release");
        assert_eq!(ctl.active(), 2);
    }

    #[test]
    fn backlog_sheds_even_with_session_capacity() {
        let ctl = AdmissionController::new(8, 10);
        assert!(ctl.try_admit(9));
        assert!(!ctl.try_admit(10));
        assert_eq!(ctl.active(), 1);
        assert_eq!(ctl.shed_total(), 1);
    }
}
