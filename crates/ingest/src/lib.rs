//! # cs-ingest — the socket-fed front door of the CS-ECG fleet
//!
//! Everything between a mote's TCP socket and
//! [`cs_core::run_fleet_wire_stream`]: a supervised listener
//! ([`IngestServer`]), per-connection sessions with a versioned
//! handshake and hard lifecycle budgets, an allocation-free incremental
//! record deframer ([`Deframer`]) that survives arbitrary read splits
//! and boundary corruption, and backpressure-aware admission control
//! that sheds *new* connections — with a typed NACK and a `Retry-After`
//! hint — when the decode fleet backs up, instead of queueing without
//! bound.
//!
//! The crate is transport only: it never interprets a frame beyond its
//! record boundary. Corrupt frames travel on to the engine, whose CRC
//! check counts and quarantines them, so the fleet's exact fault
//! accounting (`frames == rejects + duplicates + late + decoded +
//! concealed + quarantined`) holds across the network hop.
//!
//! ## Wiring it up
//!
//! ```no_run
//! use cs_core::{run_fleet_wire_stream, uniform_codebook, FleetConfig, SolverPolicy,
//!               SystemConfig, WireFrame};
//! use cs_ingest::{IngestConfig, IngestServer};
//! use cs_telemetry::TelemetryRegistry;
//! use std::sync::Arc;
//!
//! let config = SystemConfig::paper_default();
//! let codebook = Arc::new(uniform_codebook(config.alphabet())?);
//! let telemetry = TelemetryRegistry::new();
//! let (feed, source) = crossbeam::channel::bounded::<WireFrame>(256);
//!
//! let engine = {
//!     let (config, codebook, telemetry) = (config.clone(), Arc::clone(&codebook), telemetry.clone());
//!     std::thread::spawn(move || {
//!         run_fleet_wire_stream::<f32, _>(
//!             &config, codebook, source, SolverPolicy::default(),
//!             &FleetConfig::default(), &telemetry, |_packet| {},
//!         )
//!     })
//! };
//!
//! let server = IngestServer::bind("127.0.0.1:0", IngestConfig::default(), telemetry, feed)?;
//! // ... serve ...
//! let summary = server.drain(); // graceful: flush sessions, close feed
//! let report = engine.join().expect("engine thread")?;
//! assert_eq!(summary.frames, report.faults.frames);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod client;
pub mod deframe;
pub mod proto;
mod server;
mod session;

pub use admission::AdmissionController;
pub use client::{Connect, IngestClient};
pub use deframe::{
    encode_record, DeframeStats, Deframer, MAX_FRAME_BYTES, MIN_FRAME_BYTES, RECORD_PREFIX_BYTES,
};
pub use proto::{
    encode_control, encode_hello, hello_len, parse_control, parse_hello, Control, ControlCode,
    Hello, LaneResume, ProtoError, CONTROL_BYTES, HELLO_FIXED_BYTES, HELLO_LANE_BYTES,
    INGEST_VERSION, MAX_HELLO_BYTES, MAX_HELLO_LANES,
};
pub use server::{DrainSummary, IngestConfig, IngestServer};
