//! cs-ingestd — the socket ingest service in front of a live decode fleet.
//!
//! Binds the ingest listener, spins up the streaming wire engine
//! ([`run_fleet_wire_stream`]) with a worker pool, and serves telemetry
//! (`/metrics`, `/healthz`, `/tracez`) next door. Runs until stdin
//! closes or a line reading `drain` arrives, then drains gracefully:
//! stop accepting, see every session out, flush the engine's staged
//! windows, and print final accounting as one JSON object.
//!
//! ```text
//! cargo run --release -p cs-ingest --bin cs-ingestd -- \
//!     [--listen 127.0.0.1:7411] [--metrics 127.0.0.1:9464] \
//!     [--workers 0] [--feed-capacity 256] [--max-sessions 1024] \
//!     [--shed-backlog 256] [--handshake-ms 2000] [--idle-ms 30000] \
//!     [--archive DIR]
//! ```
//!
//! With `--archive DIR` every accepted wire frame is also appended to a
//! durable [`ArchiveSink`] under `DIR` before decode, so an operator can
//! replay the exact ingested traffic later (`archive_replay`). The sink
//! is flushed and sealed during drain; a sink failure fails the daemon
//! rather than silently dropping history.

use cs_archive::{ArchiveConfig, ArchiveSink};
use cs_core::{
    run_fleet_wire_stream, run_fleet_wire_stream_archived, uniform_codebook, FleetConfig,
    SolverPolicy, SystemConfig, WireFrame,
};
use cs_ingest::{IngestConfig, IngestServer};
use cs_telemetry::{MetricsServer, TelemetryRegistry};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Settings {
    listen: String,
    metrics: String,
    workers: usize,
    feed_capacity: usize,
    archive: Option<std::path::PathBuf>,
    ingest: IngestConfig,
}

impl Settings {
    fn from_args() -> Settings {
        let mut s = Settings {
            listen: "127.0.0.1:7411".to_string(),
            metrics: "127.0.0.1:9464".to_string(),
            workers: 0,
            feed_capacity: 256,
            archive: None,
            ingest: IngestConfig::default(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--listen" => s.listen = value("--listen"),
                "--metrics" => s.metrics = value("--metrics"),
                "--workers" => s.workers = value("--workers").parse().expect("--workers"),
                "--feed-capacity" => {
                    s.feed_capacity = value("--feed-capacity").parse().expect("--feed-capacity")
                }
                "--archive" => s.archive = Some(value("--archive").into()),
                "--max-sessions" => {
                    s.ingest.max_sessions = value("--max-sessions").parse().expect("--max-sessions")
                }
                "--shed-backlog" => {
                    s.ingest.shed_backlog = value("--shed-backlog").parse().expect("--shed-backlog")
                }
                "--handshake-ms" => {
                    s.ingest.handshake_deadline =
                        Duration::from_millis(value("--handshake-ms").parse().expect("--handshake-ms"))
                }
                "--idle-ms" => {
                    s.ingest.idle_timeout =
                        Duration::from_millis(value("--idle-ms").parse().expect("--idle-ms"))
                }
                other => panic!("unknown flag {other}; see the module doc for usage"),
            }
        }
        s
    }
}

fn main() -> ExitCode {
    let settings = Settings::from_args();
    let config = SystemConfig::paper_default();
    let codebook = match uniform_codebook(config.alphabet()) {
        Ok(cb) => Arc::new(cb),
        Err(e) => {
            eprintln!("cs-ingestd: codebook construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let telemetry = TelemetryRegistry::new();
    let (feed, source) = crossbeam::channel::bounded::<WireFrame>(settings.feed_capacity);

    // The archive tap, when requested, sits between deframe and decode:
    // every accepted frame is persisted before any solver touches it.
    let sink = match &settings.archive {
        Some(root) => match ArchiveSink::create(root, ArchiveConfig::default()) {
            Ok(sink) => Some(Arc::new(Mutex::new(sink))),
            Err(e) => {
                eprintln!("cs-ingestd: archive sink {} failed: {e}", root.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let engine = {
        let config = config.clone();
        let codebook = Arc::clone(&codebook);
        let telemetry = telemetry.clone();
        let fleet = FleetConfig { workers: settings.workers, ..FleetConfig::default() };
        let sink = sink.clone();
        std::thread::spawn(move || match &sink {
            Some(sink) => run_fleet_wire_stream_archived::<f32, _>(
                &config,
                codebook,
                source,
                SolverPolicy::default(),
                &fleet,
                &telemetry,
                &**sink,
                |_packet| {},
            ),
            None => run_fleet_wire_stream::<f32, _>(
                &config,
                codebook,
                source,
                SolverPolicy::default(),
                &fleet,
                &telemetry,
                |_packet| {},
            ),
        })
    };

    let metrics = match MetricsServer::bind(settings.metrics.as_str(), telemetry.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cs-ingestd: metrics bind {} failed: {e}", settings.metrics);
            return ExitCode::FAILURE;
        }
    };
    let server = match IngestServer::bind(
        settings.listen.as_str(),
        settings.ingest,
        telemetry.clone(),
        feed,
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cs-ingestd: ingest bind {} failed: {e}", settings.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "cs-ingestd: ingest on {}, metrics on {}; send \"drain\" or close stdin to stop",
        server.local_addr(),
        metrics.local_addr()
    );
    if let Some(root) = &settings.archive {
        eprintln!("cs-ingestd: archiving accepted frames under {}", root.display());
    }

    // Block on stdin: EOF or a "drain" line starts the graceful drain.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "drain" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    let summary = server.drain();
    let report = match engine.join() {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => {
            eprintln!("cs-ingestd: engine failed: {e}");
            return ExitCode::FAILURE;
        }
        Err(_) => {
            eprintln!("cs-ingestd: engine thread panicked");
            return ExitCode::FAILURE;
        }
    };
    // Seal the archive only after the engine has returned: the engine
    // owns the last writes, and a seal failure means lost history.
    if let Some(sink) = sink {
        let sink = Arc::into_inner(sink)
            .expect("engine joined, so the archive sink has one owner")
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = sink.finish() {
            eprintln!("cs-ingestd: archive seal failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let faults = &report.faults;
    println!(
        "{{\"sessions\":{},\"patients\":{},\"frames\":{},\"bytes\":{},\"sheds\":{},\
         \"decoded\":{},\"concealed\":{},\"quarantined\":{},\"rejected\":{},\
         \"duplicates\":{},\"late\":{},\"windows\":{}}}",
        summary.sessions,
        summary.patients,
        summary.frames,
        summary.bytes,
        summary.sheds,
        faults.decoded,
        faults.concealed(),
        faults.quarantined,
        faults.frame_rejects,
        faults.duplicates,
        faults.late,
        report.packets_decoded,
    );
    ExitCode::SUCCESS
}
