//! The supervised TCP listener feeding the decode fleet.
//!
//! One [`IngestServer`] owns the accept loop and the shared state every
//! session thread leans on: the admission controller, the patient→slot
//! directory, the drain flag, and the cloneable feed sender into
//! [`cs_core::run_fleet_wire_stream`]. Sessions are one thread per
//! connection (the [`cs_telemetry::MetricsServer`] pattern scaled up
//! with supervision): each is tracked from accept to join, so a
//! [`drain`](IngestServer::drain) can stop the listener, let every
//! session flush and say goodbye, and only then close the feed channel —
//! which is exactly the signal the streaming engine treats as
//! end-of-run, flushing staged reassembly tails into the final report.

use crate::admission::AdmissionController;
use crate::session;
use cs_core::WireFrame;
use cs_telemetry::TelemetryRegistry;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Session-lifecycle and admission policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Budget for the complete hello, first byte to last. A connection
    /// that cannot state its identity this fast is cut loose before it
    /// can hold a session slot hostage.
    pub handshake_deadline: Duration,
    /// Eviction threshold for a streaming session that sends nothing.
    pub idle_timeout: Duration,
    /// Read-rate floor accounting window.
    pub floor_window: Duration,
    /// Minimum bytes per [`floor_window`](Self::floor_window) once a
    /// session has started trickling; below it the session is evicted as
    /// a slow-loris. `0` disables the floor. A fully silent window is
    /// the idle timeout's business, not the floor's.
    pub floor_bytes: u64,
    /// Concurrent session ceiling (handshaking sessions included).
    pub max_sessions: usize,
    /// Feed-queue depth (frames staged toward the decode fleet) above
    /// which new connections are shed.
    pub shed_backlog: usize,
    /// Reconnect hint carried in `Shed` and `Draining` NACKs.
    pub retry_after: Duration,
    /// Read poll quantum: how often a blocked session rechecks deadlines
    /// and the drain flag.
    pub poll: Duration,
    /// How long a draining session waits for its client to finish
    /// sending and close before the server closes anyway.
    pub drain_grace: Duration,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            handshake_deadline: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            floor_window: Duration::from_secs(5),
            floor_bytes: 64,
            max_sessions: 1024,
            shed_backlog: 256,
            retry_after: Duration::from_secs(2),
            poll: Duration::from_millis(100),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// State every session thread shares with the listener.
pub(crate) struct Shared {
    pub config: IngestConfig,
    pub telemetry: TelemetryRegistry,
    pub feed: crossbeam::channel::Sender<WireFrame>,
    pub drain: AtomicBool,
    pub admission: AdmissionController,
    /// Patient id → dense fleet slot. Stable across reconnects: the same
    /// patient lands on the same slot, so the engine's per-stream
    /// reassembler dedups a resumed client's replayed tail.
    pub slots: Mutex<HashMap<u32, usize>>,
    pub sessions_served: AtomicU64,
    pub frames: AtomicU64,
    pub bytes: AtomicU64,
}

impl Shared {
    /// Dense slot for a patient, allocating the next one on first sight.
    pub fn slot(&self, patient: u32) -> usize {
        let mut slots = self.slots.lock().expect("slot directory lock");
        let next = slots.len();
        *slots.entry(patient).or_insert(next)
    }
}

/// Final accounting returned by [`IngestServer::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainSummary {
    /// Sessions that passed admission (including ones later evicted).
    pub sessions: u64,
    /// Distinct patients seen (the fleet's stream count).
    pub patients: u64,
    /// Frames forwarded to the decode fleet.
    pub frames: u64,
    /// Frame bytes forwarded.
    pub bytes: u64,
    /// Connections refused by admission control.
    pub sheds: u64,
}

/// A running ingest listener. Dropping it stops the accept loop;
/// [`drain`](Self::drain) is the graceful path that also sees every
/// session out and closes the engine feed.
pub struct IngestServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl IngestServer {
    /// Binds `listen` (e.g. `"127.0.0.1:0"`) and starts accepting
    /// sessions, forwarding every deframed wire frame into `feed`.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind<A: ToSocketAddrs>(
        listen: A,
        config: IngestConfig,
        telemetry: TelemetryRegistry,
        feed: crossbeam::channel::Sender<WireFrame>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            admission: AdmissionController::new(config.max_sessions, config.shed_backlog),
            config,
            telemetry,
            feed,
            drain: AtomicBool::new(false),
            slots: Mutex::new(HashMap::new()),
            sessions_served: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions);
        let accept = std::thread::Builder::new()
            .name("cs-ingest-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_stop, accept_sessions))?;
        Ok(IngestServer { addr, shared, stop, accept: Some(accept), sessions })
    }

    /// The listening address (clients connect here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames currently staged toward the decode fleet (the admission
    /// controller's backlog signal).
    pub fn backlog(&self) -> usize {
        self.shared.feed.len()
    }

    /// Currently admitted sessions.
    pub fn active_sessions(&self) -> usize {
        self.shared.admission.active()
    }

    /// Gracefully drains: stop accepting, announce `Draining` to every
    /// live session, wait for each to flush and close, then drop the
    /// feed sender so the streaming engine flushes its tails and
    /// returns. Blocks until every session thread has exited.
    pub fn drain(mut self) -> DrainSummary {
        self.shared.drain.store(true, Ordering::SeqCst);
        self.stop_accept();
        // The accept thread is joined, so no new handles can appear.
        let handles = {
            let mut sessions = self.sessions.lock().expect("session table lock");
            std::mem::take(&mut *sessions)
        };
        for handle in handles {
            let _ = handle.join();
        }
        let shared = &self.shared;
        DrainSummary {
            sessions: shared.sessions_served.load(Ordering::Relaxed),
            patients: shared.slots.lock().expect("slot directory lock").len() as u64,
            frames: shared.frames.load(Ordering::Relaxed),
            bytes: shared.bytes.load(Ordering::Relaxed),
            sheds: shared.admission.shed_total(),
        }
        // `self` drops here: the last feed sender goes with it, which is
        // the streaming engine's end-of-run signal.
    }

    fn stop_accept(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        // Non-graceful teardown still stops the listener; live sessions
        // exit on their own when their sockets or the feed close.
        self.shared.drain.store(true, Ordering::SeqCst);
        self.stop_accept();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let session_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cs-ingest-session".into())
            .spawn(move || session::run(stream, &session_shared));
        match handle {
            Ok(handle) => sessions.lock().expect("session table lock").push(handle),
            Err(_) => continue, // spawn failure: the connection just closes
        }
    }
}
