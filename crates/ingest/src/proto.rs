//! The ingest session protocol: hello and control records.
//!
//! A session opens with exactly one client **hello** — magic, record
//! type, protocol version, patient id, and the lane set with per-lane
//! resume positions — and the server answers every admission decision
//! with a fixed-size **control** record carrying a typed code, a
//! `Retry-After` hint, and a count whose meaning depends on the code
//! (accepted lanes, frames ingested at goodbye). Both records end in the
//! same CRC-16/CCITT-FALSE the data frames use ([`cs_core::crc16`]), so
//! one checksum implementation covers the whole wire.
//!
//! Wire layouts (all multi-byte integers little-endian):
//!
//! ```text
//! hello:   C5 1D ver patient:u32 lane_count:u8 (lane:u8 resume:u32)* crc:u16
//! control: C5 1E ver code:u8 retry_after_s:u16 count:u32 crc:u16
//! ```
//!
//! Parsing is incremental-friendly: [`hello_len`] names the full record
//! length as soon as the fixed prefix has arrived, so a reader can wait
//! for exactly the right number of bytes under its handshake deadline.
//! [`encode_control`] writes into a caller-provided fixed array — the
//! steady-state server path never allocates to say goodbye.

use cs_core::{crc16, FRAME_MAGIC};

/// Record-type byte for the client hello.
pub const HELLO_TYPE: u8 = 0x1D;
/// Record-type byte for a server control record.
pub const CONTROL_TYPE: u8 = 0x1E;
/// Ingest protocol version (independent of the frame format version).
pub const INGEST_VERSION: u8 = 0x01;
/// Hello bytes before the lane list: magic, type, version, patient, count.
pub const HELLO_FIXED_BYTES: usize = 8;
/// Bytes per lane entry: lane id + resume-from sequence.
pub const HELLO_LANE_BYTES: usize = 5;
/// Most lanes one session may declare (a 12-lead ECG is the clinical max).
pub const MAX_HELLO_LANES: usize = 12;
/// Exact size of a control record.
pub const CONTROL_BYTES: usize = 12;

/// Largest possible hello record; a handshake buffer of this size fits
/// any valid hello.
pub const MAX_HELLO_BYTES: usize = HELLO_FIXED_BYTES + MAX_HELLO_LANES * HELLO_LANE_BYTES + 2;

/// One lane declaration in a hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneResume {
    /// ECG lead tag, as carried in frame headers.
    pub lane: u8,
    /// First sequence number the client will (re)send on this lane. The
    /// server does not seek: resume means the client replays its unacked
    /// tail and the engine's reassembler drops what it already emitted.
    pub resume_from: u32,
}

/// A parsed client hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Patient identity; the server maps it to a dense fleet slot, and a
    /// reconnect under the same id lands on the same slot (that mapping
    /// is what makes resume dedup work).
    pub patient: u32,
    /// Declared lanes, at least one, no duplicates.
    pub lanes: Vec<LaneResume>,
}

/// Typed admission verdicts and session endings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCode {
    /// Session admitted; `count` echoes the accepted lane count.
    Accept = 1,
    /// Admission refused under load; retry after the carried hint.
    Shed = 2,
    /// The hello was malformed; the client must not blind-retry.
    BadHandshake = 3,
    /// The server is draining: finish sends, close, reconnect later.
    Draining = 4,
    /// Final accounting at session end; `count` is frames ingested.
    Goodbye = 5,
    /// The server evicted the session (idle timeout or read-rate floor).
    Evicted = 6,
}

impl ControlCode {
    fn from_byte(b: u8) -> Option<ControlCode> {
        Some(match b {
            1 => ControlCode::Accept,
            2 => ControlCode::Shed,
            3 => ControlCode::BadHandshake,
            4 => ControlCode::Draining,
            5 => ControlCode::Goodbye,
            6 => ControlCode::Evicted,
            _ => return None,
        })
    }
}

/// A parsed server control record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Control {
    /// What the server decided.
    pub code: ControlCode,
    /// Reconnect hint in seconds (meaningful for `Shed` and `Draining`).
    pub retry_after_secs: u16,
    /// Code-dependent count (lanes accepted, frames ingested, …).
    pub count: u32,
}

/// Why a hello or control record failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Not enough bytes yet (incremental readers keep reading).
    Truncated,
    /// First byte was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// Second byte named a record type this parser does not speak.
    BadType(u8),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Checksum mismatch.
    BadCrc,
    /// Zero lanes, more than [`MAX_HELLO_LANES`], or a duplicate lane id.
    BadLaneSet,
    /// Unknown control code byte.
    BadCode(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "record truncated"),
            ProtoError::BadMagic(b) => write!(f, "bad magic 0x{b:02X}"),
            ProtoError::BadType(b) => write!(f, "unexpected record type 0x{b:02X}"),
            ProtoError::BadVersion(b) => write!(f, "unsupported ingest protocol version {b}"),
            ProtoError::BadCrc => write!(f, "CRC mismatch"),
            ProtoError::BadLaneSet => write!(f, "lane set empty, oversized, or duplicated"),
            ProtoError::BadCode(b) => write!(f, "unknown control code 0x{b:02X}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Full hello length once the fixed prefix is visible; `None` while
/// fewer than [`HELLO_FIXED_BYTES`] bytes have arrived.
pub fn hello_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < HELLO_FIXED_BYTES {
        return None;
    }
    Some(HELLO_FIXED_BYTES + buf[7] as usize * HELLO_LANE_BYTES + 2)
}

/// Parses a complete hello record.
///
/// # Errors
///
/// [`ProtoError`] naming the first failed check; [`ProtoError::Truncated`]
/// if `buf` is shorter than the length its own lane count implies.
pub fn parse_hello(buf: &[u8]) -> Result<Hello, ProtoError> {
    let len = hello_len(buf).ok_or(ProtoError::Truncated)?;
    if buf.len() < len {
        return Err(ProtoError::Truncated);
    }
    let buf = &buf[..len];
    if buf[0] != FRAME_MAGIC {
        return Err(ProtoError::BadMagic(buf[0]));
    }
    if buf[1] != HELLO_TYPE {
        return Err(ProtoError::BadType(buf[1]));
    }
    if buf[2] != INGEST_VERSION {
        return Err(ProtoError::BadVersion(buf[2]));
    }
    let body = &buf[..len - 2];
    let expected = u16::from_le_bytes([buf[len - 2], buf[len - 1]]);
    if crc16(body) != expected {
        return Err(ProtoError::BadCrc);
    }
    let lane_count = buf[7] as usize;
    if lane_count == 0 || lane_count > MAX_HELLO_LANES {
        return Err(ProtoError::BadLaneSet);
    }
    let patient = u32::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]);
    let mut lanes = Vec::with_capacity(lane_count);
    for entry in buf[HELLO_FIXED_BYTES..len - 2].chunks_exact(HELLO_LANE_BYTES) {
        let lane = entry[0];
        if lanes.iter().any(|l: &LaneResume| l.lane == lane) {
            return Err(ProtoError::BadLaneSet);
        }
        lanes.push(LaneResume {
            lane,
            resume_from: u32::from_le_bytes([entry[1], entry[2], entry[3], entry[4]]),
        });
    }
    Ok(Hello { patient, lanes })
}

/// Serializes a hello (client side).
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut out = Vec::with_capacity(HELLO_FIXED_BYTES + hello.lanes.len() * HELLO_LANE_BYTES + 2);
    out.push(FRAME_MAGIC);
    out.push(HELLO_TYPE);
    out.push(INGEST_VERSION);
    out.extend_from_slice(&hello.patient.to_le_bytes());
    out.push(hello.lanes.len() as u8);
    for lane in &hello.lanes {
        out.push(lane.lane);
        out.extend_from_slice(&lane.resume_from.to_le_bytes());
    }
    let crc = crc16(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Serializes a control record into a fixed buffer (no allocation — the
/// server says goodbye on the steady-state path).
pub fn encode_control(control: Control, out: &mut [u8; CONTROL_BYTES]) {
    out[0] = FRAME_MAGIC;
    out[1] = CONTROL_TYPE;
    out[2] = INGEST_VERSION;
    out[3] = control.code as u8;
    out[4..6].copy_from_slice(&control.retry_after_secs.to_le_bytes());
    out[6..10].copy_from_slice(&control.count.to_le_bytes());
    let crc = crc16(&out[..CONTROL_BYTES - 2]);
    out[10..12].copy_from_slice(&crc.to_le_bytes());
}

/// Parses a complete control record (client side).
///
/// # Errors
///
/// [`ProtoError`] naming the first failed check.
pub fn parse_control(buf: &[u8]) -> Result<Control, ProtoError> {
    if buf.len() < CONTROL_BYTES {
        return Err(ProtoError::Truncated);
    }
    let buf = &buf[..CONTROL_BYTES];
    if buf[0] != FRAME_MAGIC {
        return Err(ProtoError::BadMagic(buf[0]));
    }
    if buf[1] != CONTROL_TYPE {
        return Err(ProtoError::BadType(buf[1]));
    }
    if buf[2] != INGEST_VERSION {
        return Err(ProtoError::BadVersion(buf[2]));
    }
    let expected = u16::from_le_bytes([buf[10], buf[11]]);
    if crc16(&buf[..10]) != expected {
        return Err(ProtoError::BadCrc);
    }
    let code = ControlCode::from_byte(buf[3]).ok_or(ProtoError::BadCode(buf[3]))?;
    Ok(Control {
        code,
        retry_after_secs: u16::from_le_bytes([buf[4], buf[5]]),
        count: u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let hello = Hello {
            patient: 0xDEAD_BEEF,
            lanes: vec![
                LaneResume { lane: 0, resume_from: 42 },
                LaneResume { lane: 3, resume_from: 0 },
            ],
        };
        let bytes = encode_hello(&hello);
        assert_eq!(hello_len(&bytes), Some(bytes.len()));
        assert_eq!(parse_hello(&bytes).unwrap(), hello);
    }

    #[test]
    fn hello_rejects_each_failure_mode() {
        let good = encode_hello(&Hello {
            patient: 9,
            lanes: vec![LaneResume { lane: 1, resume_from: 0 }],
        });
        assert_eq!(parse_hello(&good[..4]), Err(ProtoError::Truncated));
        let mut bad = good.clone();
        bad[0] = 0x00;
        assert_eq!(parse_hello(&bad), Err(ProtoError::BadMagic(0x00)));
        let mut bad = good.clone();
        bad[2] = 0x7F;
        assert_eq!(parse_hello(&bad), Err(ProtoError::BadVersion(0x7F)));
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert_eq!(parse_hello(&bad), Err(ProtoError::BadCrc));
        // Duplicate lane ids re-CRC'd so only the lane-set check fires.
        let dup = encode_hello(&Hello {
            patient: 9,
            lanes: vec![
                LaneResume { lane: 1, resume_from: 0 },
                LaneResume { lane: 1, resume_from: 5 },
            ],
        });
        assert_eq!(parse_hello(&dup), Err(ProtoError::BadLaneSet));
    }

    #[test]
    fn control_round_trips_every_code() {
        for code in [
            ControlCode::Accept,
            ControlCode::Shed,
            ControlCode::BadHandshake,
            ControlCode::Draining,
            ControlCode::Goodbye,
            ControlCode::Evicted,
        ] {
            let control = Control { code, retry_after_secs: 7, count: 12345 };
            let mut buf = [0u8; CONTROL_BYTES];
            encode_control(control, &mut buf);
            assert_eq!(parse_control(&buf).unwrap(), control);
        }
        let mut buf = [0u8; CONTROL_BYTES];
        encode_control(Control { code: ControlCode::Accept, retry_after_secs: 0, count: 0 }, &mut buf);
        buf[3] = 0xEE; // unknown code: caught by CRC first? No — re-CRC.
        let crc = cs_core::crc16(&buf[..10]);
        buf[10..12].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(parse_control(&buf), Err(ProtoError::BadCode(0xEE)));
    }
}
