//! Property tests: socket deframing is equivalent to the in-process path.
//!
//! The contract under test is the tentpole's core robustness claim: a
//! valid multi-frame byte stream split at **any** sequence of chunk
//! boundaries — one byte at a time through jumbo coalesced reads —
//! reassembles into exactly the frames that were written, and
//! [`cs_core::parse_frame`] sees byte-identical input to what an
//! in-process caller would have passed. Mid-frame corruption damages
//! exactly the record it lands in (the engine's CRC rejects it);
//! length-prefix corruption costs bounded, fully-accounted bytes and
//! never desyncs the rest of the session.

use cs_core::{crc16, parse_frame, FRAME_MAGIC, FRAME_VERSION, HEADER_BYTES};
use cs_ingest::{encode_record, Deframer, RECORD_PREFIX_BYTES};
use proptest::prelude::*;

/// Hand-assembles a valid wire frame (kind `R`, full payload bits).
fn make_frame(lane: u8, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len() + 2);
    frame.push(FRAME_MAGIC);
    frame.push(FRAME_VERSION);
    frame.push(lane);
    frame.push(0x52); // Reference
    frame.extend_from_slice(&seq.to_le_bytes());
    let bits = (payload.len() * 8) as u32;
    frame.extend_from_slice(&bits.to_le_bytes()[..3]);
    frame.extend_from_slice(payload);
    let crc = crc16(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Feeds `bytes` through a deframer in the given chunk sizes (cycled),
/// returning every record yielded.
fn reassemble(bytes: &[u8], chunks: &[usize]) -> (Vec<Vec<u8>>, Deframer) {
    let mut deframer = Deframer::new();
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut chunk_idx = 0usize;
    while offset < bytes.len() {
        let want = chunks[chunk_idx % chunks.len()].max(1);
        chunk_idx += 1;
        let spare = deframer.spare();
        let n = want.min(spare.len()).min(bytes.len() - offset);
        spare[..n].copy_from_slice(&bytes[offset..offset + n]);
        deframer.commit(n);
        offset += n;
        while let Some(record) = deframer.next_frame() {
            records.push(record.to_vec());
        }
    }
    (records, deframer)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any chunking of a valid stream yields the frames verbatim, and
    /// parsing them gives results identical to the in-process path.
    #[test]
    fn any_chunking_is_equivalent_to_in_process(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600),
            1..8,
        ),
        chunks in proptest::collection::vec(1usize..1500, 1..40),
    ) {
        let frames: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| make_frame((i % 3) as u8, i as u32, p))
            .collect();
        let mut wire = Vec::new();
        for frame in &frames {
            encode_record(frame, &mut wire);
        }
        let (records, deframer) = reassemble(&wire, &chunks);
        prop_assert_eq!(&records, &frames);
        prop_assert_eq!(deframer.stats().resyncs, 0);
        prop_assert_eq!(deframer.pending(), 0);
        for (record, frame) in records.iter().zip(&frames) {
            let socket_parse = parse_frame(record).unwrap();
            let direct_parse = parse_frame(frame).unwrap();
            prop_assert_eq!(socket_parse.0, direct_parse.0, "header fields must match");
            prop_assert_eq!(socket_parse.1, direct_parse.1, "payload bytes must match");
        }
    }

    /// A bit flip inside a frame body corrupts exactly that record: all
    /// other records parse identically to the in-process path, and the
    /// damaged one is rejected by the frame CRC (the engine's job), not
    /// by the deframer.
    #[test]
    fn mid_frame_corruption_damages_exactly_one_record(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 4..200),
            2..6,
        ),
        chunks in proptest::collection::vec(1usize..700, 1..20),
        victim_pick in any::<u16>(),
        offset_pick in any::<u16>(),
        bit in 0u8..8,
    ) {
        let frames: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| make_frame(0, i as u32, p))
            .collect();
        let victim = victim_pick as usize % frames.len();
        let mut wire = Vec::new();
        let mut victim_span = 0..0;
        for (i, frame) in frames.iter().enumerate() {
            let start = wire.len();
            encode_record(frame, &mut wire);
            if i == victim {
                // Frame body only, past the magic byte: the length
                // prefix and the magic are boundary signal, and damage
                // there takes the (bounded, accounted) resync path
                // covered by the next property.
                victim_span = start + RECORD_PREFIX_BYTES + 1..wire.len();
            }
        }
        let flip_at = victim_span.start + offset_pick as usize % victim_span.len();
        wire[flip_at] ^= 1 << bit;

        let (records, deframer) = reassemble(&wire, &chunks);
        prop_assert_eq!(records.len(), frames.len(), "boundaries survive body damage");
        prop_assert_eq!(deframer.stats().resyncs, 0);
        for (i, (record, frame)) in records.iter().zip(&frames).enumerate() {
            if i == victim {
                prop_assert!(parse_frame(record).is_err(), "CRC must reject the damage");
            } else {
                prop_assert_eq!(record, frame, "undamaged record {} must be verbatim", i);
            }
        }
    }

    /// A bit flip in a length prefix never desyncs the stream: every
    /// byte is yielded, skipped, or pending, records before the victim
    /// are untouched, and the deframer keeps making progress.
    #[test]
    fn prefix_corruption_is_bounded_and_accounted(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 4..200),
            2..6,
        ),
        chunks in proptest::collection::vec(1usize..700, 1..20),
        victim_pick in any::<u16>(),
        bit in 0u8..16,
    ) {
        let frames: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| make_frame(0, i as u32, p))
            .collect();
        let victim = victim_pick as usize % frames.len();
        let mut wire = Vec::new();
        let mut prefix_at = 0usize;
        for (i, frame) in frames.iter().enumerate() {
            if i == victim {
                prefix_at = wire.len();
            }
            encode_record(frame, &mut wire);
        }
        wire[prefix_at + (bit as usize) / 8] ^= 1 << (bit % 8);

        let (records, deframer) = reassemble(&wire, &chunks);
        let stats = deframer.stats();
        let yielded: usize = records.iter().map(|r| r.len() + RECORD_PREFIX_BYTES).sum();
        prop_assert_eq!(
            yielded as u64 + stats.skipped_bytes + deframer.pending() as u64,
            wire.len() as u64,
            "every byte must be yielded, skipped, or pending"
        );
        for (record, frame) in records.iter().zip(&frames).take(victim) {
            prop_assert_eq!(record, frame, "records before the victim must be untouched");
        }
    }
}
