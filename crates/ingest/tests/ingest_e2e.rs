//! End-to-end ingest service tests over real loopback sockets.
//!
//! Each test stands up the full stack — streaming wire engine, ingest
//! listener, protocol clients — and proves one lifecycle contract:
//! admission and decode, typed shedding, handshake deadlines, slow-loris
//! eviction, reconnect-with-resume dedup, and graceful drain with zero
//! loss for well-behaved clients. Timeouts are tuned short so the whole
//! file stays test-suite-fast.

use cs_core::{
    run_fleet_wire_stream, uniform_codebook, Encoder, FleetConfig, FleetReport, SolverPolicy,
    SystemConfig, WireFrame,
};
use cs_ingest::{Connect, ControlCode, IngestClient, IngestConfig, IngestServer, LaneResume};
use cs_telemetry::{IngestDisconnect, IngestState, TelemetryRegistry};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp();
            (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
        })
        .collect()
}

/// Pre-encoded wire frames for one patient lane.
fn lane_frames(config: &SystemConfig, count: usize, lane: u8, phase: f64) -> Vec<Vec<u8>> {
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let mut encoder = Encoder::new(config, codebook).unwrap();
    (0..count)
        .map(|k| {
            let samples = synthetic_packet(config.packet_len(), phase + k as f64 * 0.003);
            encoder.encode_packet(&samples).unwrap().to_bytes_tagged(lane)
        })
        .collect()
}

struct Stack {
    server: IngestServer,
    engine: std::thread::JoinHandle<Result<FleetReport, cs_core::PipelineError>>,
    telemetry: TelemetryRegistry,
    emitted: Arc<AtomicU64>,
}

/// Engine + listener with the given ingest policy.
fn stack(config: &SystemConfig, ingest: IngestConfig) -> Stack {
    let telemetry = TelemetryRegistry::new();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let (feed, source) = crossbeam::channel::bounded::<WireFrame>(64);
    let emitted = Arc::new(AtomicU64::new(0));
    let engine = {
        let config = config.clone();
        let telemetry = telemetry.clone();
        let emitted = Arc::clone(&emitted);
        std::thread::spawn(move || {
            let fleet = FleetConfig { workers: 2, ..FleetConfig::default() };
            run_fleet_wire_stream::<f32, _>(
                &config,
                codebook,
                source,
                SolverPolicy::default(),
                &fleet,
                &telemetry,
                move |_packet| {
                    emitted.fetch_add(1, Ordering::Relaxed);
                },
            )
        })
    };
    let server =
        IngestServer::bind("127.0.0.1:0", ingest, telemetry.clone(), feed).expect("bind ingest");
    Stack { server, engine, telemetry, emitted }
}

fn quick_config() -> SystemConfig {
    SystemConfig::paper_default()
}

#[test]
fn frames_over_tcp_decode_and_account_exactly() {
    let config = quick_config();
    let stack = stack(&config, IngestConfig::default());
    let frames = lane_frames(&config, 4, 0, 0.0);

    let addr = stack.server.local_addr();
    let lanes = [LaneResume { lane: 0, resume_from: 0 }];
    let Connect::Accepted(mut client) =
        IngestClient::connect(addr, 77, &lanes, 8, Duration::from_secs(2)).unwrap()
    else {
        panic!("admission must accept the first session")
    };
    for frame in &frames {
        client.send_frame(frame).unwrap();
    }
    let goodbye = client.finish(Duration::from_secs(5)).unwrap();
    assert_eq!(goodbye.code, ControlCode::Goodbye);
    assert_eq!(goodbye.count, 4, "goodbye carries the ingested frame count");

    let summary = stack.server.drain();
    let report = stack.engine.join().unwrap().unwrap();
    assert_eq!(summary.frames, 4);
    assert_eq!(summary.patients, 1);
    assert_eq!(report.faults.frames, 4);
    assert_eq!(report.faults.decoded, 4);
    assert_eq!(report.packets_decoded, 4);
    assert_eq!(stack.emitted.load(Ordering::Relaxed), 4);

    // Telemetry: the session gauge is balanced and the disconnect is typed.
    let snap = stack.telemetry.snapshot();
    for state in IngestState::ALL {
        assert_eq!(snap.ingest_sessions[state.index()].1, 0, "gauge leaked for {state}");
    }
    assert_eq!(snap.ingest_disconnects[IngestDisconnect::ClientClosed.index()].1, 1);
    assert_eq!(snap.ingest_frames, 4);
}

#[test]
fn admission_sheds_with_typed_nack_and_retry_after() {
    let config = quick_config();
    let ingest = IngestConfig {
        max_sessions: 1,
        retry_after: Duration::from_secs(7),
        ..IngestConfig::default()
    };
    let stack = stack(&config, ingest);
    let addr = stack.server.local_addr();
    let lanes = [LaneResume { lane: 0, resume_from: 0 }];

    let Connect::Accepted(first) =
        IngestClient::connect(addr, 1, &lanes, 0, Duration::from_secs(2)).unwrap()
    else {
        panic!("first session fills the only slot")
    };
    let second = IngestClient::connect(addr, 2, &lanes, 0, Duration::from_secs(2)).unwrap();
    let Connect::Refused(nack) = second else {
        panic!("second session must be shed")
    };
    assert_eq!(nack.code, ControlCode::Shed);
    assert_eq!(nack.retry_after_secs, 7, "NACK carries the Retry-After hint");
    assert_eq!(stack.telemetry.ingest_shed_total(), 1);

    let goodbye = first.finish(Duration::from_secs(5)).unwrap();
    assert_eq!(goodbye.code, ControlCode::Goodbye);
    // Capacity freed: a retry now succeeds.
    let third = IngestClient::connect(addr, 2, &lanes, 0, Duration::from_secs(2)).unwrap();
    assert!(matches!(third, Connect::Accepted(_)), "released slot re-admits");
    drop(third);
    let summary = stack.server.drain();
    assert_eq!(summary.sheds, 1);
    drop(stack.engine.join().unwrap().unwrap());
}

#[test]
fn partial_hello_is_cut_at_the_handshake_deadline() {
    let config = quick_config();
    let ingest = IngestConfig {
        handshake_deadline: Duration::from_millis(300),
        poll: Duration::from_millis(25),
        ..IngestConfig::default()
    };
    let stack = stack(&config, ingest);
    let mut conn = TcpStream::connect(stack.server.local_addr()).unwrap();
    conn.write_all(&[0xC5, 0x1D]).unwrap(); // two bytes, then silence
    let start = std::time::Instant::now();
    // The server must close us out once the deadline passes.
    let mut buf = Vec::new();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = std::io::Read::read_to_end(&mut conn, &mut buf);
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stalled hello held its thread past the deadline"
    );
    drop(conn);
    // The disconnect surfaced with the right taxonomy.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let snap = stack.telemetry.snapshot();
        if snap.ingest_disconnects[IngestDisconnect::HandshakeTimeout.index()].1 == 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "handshake timeout never recorded");
        std::thread::sleep(Duration::from_millis(10));
    }
    stack.server.drain();
    drop(stack.engine.join().unwrap().unwrap());
}

#[test]
fn garbage_hello_gets_bad_handshake_nack() {
    let config = quick_config();
    let stack = stack(&config, IngestConfig::default());
    let mut conn = TcpStream::connect(stack.server.local_addr()).unwrap();
    // Valid magic/type but a corrupt CRC.
    let mut hello = cs_ingest::encode_hello(&cs_ingest::Hello {
        patient: 5,
        lanes: vec![LaneResume { lane: 0, resume_from: 0 }],
    });
    let last = hello.len() - 1;
    hello[last] ^= 0xFF;
    conn.write_all(&hello).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; cs_ingest::CONTROL_BYTES];
    std::io::Read::read_exact(&mut conn, &mut buf).unwrap();
    let control = cs_ingest::parse_control(&buf).unwrap();
    assert_eq!(control.code, ControlCode::BadHandshake);
    let snap = stack.telemetry.snapshot();
    assert_eq!(snap.ingest_disconnects[IngestDisconnect::BadHandshake.index()].1, 1);
    stack.server.drain();
    drop(stack.engine.join().unwrap().unwrap());
}

#[test]
fn trickling_session_is_evicted_as_slow_loris() {
    let config = quick_config();
    let ingest = IngestConfig {
        floor_window: Duration::from_millis(200),
        floor_bytes: 1024,
        idle_timeout: Duration::from_secs(30),
        poll: Duration::from_millis(25),
        ..IngestConfig::default()
    };
    let stack = stack(&config, ingest);
    let lanes = [LaneResume { lane: 0, resume_from: 0 }];
    let Connect::Accepted(mut client) = IngestClient::connect(
        stack.server.local_addr(),
        3,
        &lanes,
        0,
        Duration::from_secs(2),
    )
    .unwrap() else {
        panic!("admission accepts")
    };
    // Trickle one junk byte per poll: enough to defeat the idle timeout,
    // far under the floor.
    let start = std::time::Instant::now();
    let mut evicted = None;
    while start.elapsed() < Duration::from_secs(5) {
        let frame = [0xAAu8; 1];
        // Raw socket write (not a record): the deframer will hold it as
        // a partial prefix, which is exactly the slow-loris shape.
        if client.send_raw(&frame).is_err() {
            break;
        }
        if let Ok(Some(control)) = client.poll_control() {
            evicted = Some(control);
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let evicted = evicted.expect("server must evict the trickler");
    assert_eq!(evicted.code, ControlCode::Evicted);
    let snap = stack.telemetry.snapshot();
    assert_eq!(snap.ingest_disconnects[IngestDisconnect::SlowLoris.index()].1, 1);
    stack.server.drain();
    drop(stack.engine.join().unwrap().unwrap());
}

#[test]
fn resume_replays_tail_without_double_emission() {
    let config = quick_config();
    let stack = stack(&config, IngestConfig::default());
    let frames = lane_frames(&config, 6, 0, 0.0);
    let addr = stack.server.local_addr();
    let lanes = [LaneResume { lane: 0, resume_from: 0 }];

    // First session: frames 0..4, then the connection "tears" (drop
    // without finish — no goodbye, tail kept).
    let Connect::Accepted(mut first) =
        IngestClient::connect(addr, 42, &lanes, 8, Duration::from_secs(2)).unwrap()
    else {
        panic!("admission accepts")
    };
    for frame in &frames[..4] {
        first.send_frame(frame).unwrap();
    }
    let tail = first.into_tail();
    assert_eq!(tail.len(), 4);

    // Resume: same patient, replay the whole unacked tail, then new data.
    let Connect::Accepted(mut second) = IngestClient::connect(
        addr,
        42,
        &[LaneResume { lane: 0, resume_from: 2 }],
        8,
        Duration::from_secs(2),
    )
    .unwrap() else {
        panic!("reconnect accepts")
    };
    second.replay(&tail).unwrap();
    for frame in &frames[4..] {
        second.send_frame(frame).unwrap();
    }
    let goodbye = second.finish(Duration::from_secs(5)).unwrap();
    assert_eq!(goodbye.code, ControlCode::Goodbye);

    let summary = stack.server.drain();
    let report = stack.engine.join().unwrap().unwrap();
    // 4 + (4 replayed) + 2 arrived; the replays dedup inside the engine.
    assert_eq!(summary.frames, 10);
    assert_eq!(summary.patients, 1, "same patient resumes onto the same slot");
    assert_eq!(report.faults.frames, 10);
    assert_eq!(report.faults.duplicates + report.faults.late, 4, "replayed tail dedups");
    assert_eq!(report.faults.decoded, 6);
    assert_eq!(
        stack.emitted.load(Ordering::Relaxed),
        6,
        "no window may be emitted twice after resume"
    );
}

#[test]
fn graceful_drain_loses_nothing_from_wellbehaved_clients() {
    let config = quick_config();
    let ingest = IngestConfig {
        drain_grace: Duration::from_secs(5),
        poll: Duration::from_millis(25),
        ..IngestConfig::default()
    };
    let stack = stack(&config, ingest);
    let frames = Arc::new(lane_frames(&config, 6, 0, 0.0));
    let addr = stack.server.local_addr();

    // A well-behaved client: streams slowly, finishes its in-flight
    // sends and closes when it sees the drain announcement.
    let client_frames = Arc::clone(&frames);
    let client = std::thread::spawn(move || {
        let lanes = [LaneResume { lane: 0, resume_from: 0 }];
        let Connect::Accepted(mut client) =
            IngestClient::connect(addr, 9, &lanes, 0, Duration::from_secs(2)).unwrap()
        else {
            panic!("admission accepts")
        };
        let mut sent = 0usize;
        let mut draining = false;
        for frame in client_frames.iter() {
            client.send_frame(frame).unwrap();
            sent += 1;
            if let Ok(Some(control)) = client.poll_control() {
                if control.code == ControlCode::Draining {
                    draining = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(30));
        }
        let goodbye = client.finish(Duration::from_secs(5)).unwrap();
        (sent, draining, goodbye)
    });

    // Let a few frames flow, then drain mid-stream.
    std::thread::sleep(Duration::from_millis(100));
    let summary = stack.server.drain();
    let (sent, _draining, goodbye) = client.join().unwrap();
    let report = stack.engine.join().unwrap().unwrap();

    assert_eq!(goodbye.code, ControlCode::Goodbye);
    assert_eq!(goodbye.count as usize, sent, "every sent frame was ingested");
    assert_eq!(summary.frames as usize, sent);
    assert_eq!(report.faults.frames as usize, sent);
    assert_eq!(report.faults.decoded as usize, sent, "zero frames lost across the drain");
    let snap = stack.telemetry.snapshot();
    assert_eq!(
        snap.ingest_disconnects[IngestDisconnect::Drained.index()].1
            + snap.ingest_disconnects[IngestDisconnect::ClientClosed.index()].1,
        1
    );
}
