//! Steady-state per-frame ingest must be allocation-free.
//!
//! A counting global allocator wraps the system allocator; after session
//! setup (one deframer buffer, one control scratch) the per-frame
//! transport path — read-chunk push, record reassembly, frame
//! validation, control-record encoding — performs **zero** heap
//! allocations, whatever the read split. The single deliberate
//! exception is the decode-queue handoff ([`cs_core::WireFrame`] takes
//! owned bytes, one `Vec` per frame — the same buffer the in-process
//! path materializes per frame); it is measured separately here and
//! pinned at exactly one allocation per frame so a regression in either
//! direction is caught.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no concurrent test can pollute the allocation counter
//! (`zero_alloc*.rs` standard, see `crates/core/tests/`).

use cs_core::{crc16, parse_frame, WireFrame, FRAME_MAGIC, FRAME_VERSION, HEADER_BYTES};
use cs_ingest::{
    encode_control, encode_record, Control, ControlCode, Deframer, CONTROL_BYTES,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts allocations (not deallocations: retiring a buffer is benign,
/// taking a fresh one is the defect being guarded against).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn make_frame(lane: u8, seq: u32, payload_len: usize) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload_len + 2);
    frame.push(FRAME_MAGIC);
    frame.push(FRAME_VERSION);
    frame.push(lane);
    frame.push(0x52);
    frame.extend_from_slice(&seq.to_le_bytes());
    let bits = (payload_len * 8) as u32;
    frame.extend_from_slice(&bits.to_le_bytes()[..3]);
    frame.extend_from_slice(&vec![0x5A; payload_len]);
    let crc = crc16(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

#[test]
fn steady_state_ingest_allocates_nothing() {
    // Session setup: the wire stream, the deframer, the control scratch.
    // Allocations are free here.
    let frames: Vec<Vec<u8>> = (0..64).map(|s| make_frame(0, s, 700)).collect();
    let mut wire = Vec::new();
    for frame in &frames {
        encode_record(frame, &mut wire);
    }
    let mut deframer = Deframer::new();
    let mut control_scratch = [0u8; CONTROL_BYTES];

    // Warm one full cycle (first compaction etc. — nothing should
    // allocate even here, but the measured loop is the contract).
    let spare = deframer.spare();
    spare[..128].copy_from_slice(&wire[..128]);
    deframer.commit(128);
    while deframer.next_frame().is_some() {}

    // Measured: the transport path at three read-split extremes.
    let mut offset = 128usize;
    let mut records = 0u64;
    let splits = [1usize, 17, 1400];
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut split_idx = 0usize;
    while offset < wire.len() {
        let want = splits[split_idx % splits.len()];
        split_idx += 1;
        let spare = deframer.spare();
        let n = want.min(spare.len()).min(wire.len() - offset);
        spare[..n].copy_from_slice(&wire[offset..offset + n]);
        deframer.commit(n);
        offset += n;
        while let Some(record) = deframer.next_frame() {
            // Frame validation borrows; the goodbye encode is stack-only.
            let parsed = parse_frame(record);
            assert!(parsed.is_ok());
            records += 1;
            encode_control(
                Control {
                    code: ControlCode::Goodbye,
                    retry_after_secs: 0,
                    count: records as u32,
                },
                &mut control_scratch,
            );
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(records >= 60, "the measured loop must actually stream frames");
    assert_eq!(
        after - before,
        0,
        "steady-state ingest of {records} records allocated {} times",
        after - before
    );

    // The decode-queue handoff is the one owned-buffer boundary: exactly
    // one allocation per frame, never more.
    let mut deframer = Deframer::new();
    let spare = deframer.spare();
    let take = wire.len().min(spare.len());
    spare[..take].copy_from_slice(&wire[..take]);
    deframer.commit(take);
    let mut handoffs = 0u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    while let Some(record) = deframer.next_frame() {
        let frame = WireFrame { stream: 0, bytes: record.to_vec() };
        std::hint::black_box(&frame);
        handoffs += 1;
        drop(frame);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(handoffs > 0);
    assert_eq!(
        after - before,
        handoffs,
        "handoff must cost exactly one allocation per frame"
    );
}
