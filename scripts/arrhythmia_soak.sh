#!/usr/bin/env bash
# Clinical gate: the streaming arrhythmia pipeline must hold its
# accuracy and alarm SLOs on *reconstructed* signals, not pristine ones.
#
#   scripts/arrhythmia_soak.sh                  # full profile (nightly)
#   SOAK_SHORT=1 scripts/arrhythmia_soak.sh     # short CI profile
#
# Runs the seeded arrhythmia_soak harness — four phases, every failure
# an Err and a non-zero exit:
#
#   1. detection accuracy: >= 95 % QRS sensitivity and PPV against the
#      synthesizer's beat annotations, after decode, across CR 50-75 %,
#   2. the same floor under seeded wire chaos (dropped windows, forced
#      concealment) at CR 2:1,
#   3. alarm latency: tachy / brady / PVC-run episodes must alarm within
#      10 s of annotated onset, escalate the compression tier, and
#      restore it after the quiet holdoff,
#   4. false-alarm control: a clean sinus record raises nothing, clean
#      or behind the chaos profile (concealment-aware suppression).
#
# Deterministic per seed; a failure reproduces locally with --seed.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${SOAK_SEED:-2024}"
HARD_LIMIT="${SOAK_HARD_LIMIT:-300}"
ARGS=(--seed "$SEED")
[[ -n "${SOAK_SHORT:-}" ]] && ARGS+=(--short)

cargo build --release -q -p cs-bench --bin arrhythmia_soak

echo "== arrhythmia soak: seed ${SEED}${SOAK_SHORT:+, short profile} =="
timeout --signal=KILL "${HARD_LIMIT}s" \
    target/release/arrhythmia_soak "${ARGS[@]}"
