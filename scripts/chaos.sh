#!/usr/bin/env bash
# Chaos gate: the fleet must survive a hostile wire, with the books
# balanced.
#
#   scripts/chaos.sh              # 60 s soak (the nightly profile)
#   CHAOS_SECONDS=5 scripts/chaos.sh   # short CI profile
#
# Runs the seeded chaos soak — burst bit errors at mean BER 1e-3, 5 %
# drops, 2 % reordering, 1 % duplication, 1 % truncation over 8 streams
# on 4 workers — under coreutils `timeout`, so all three failure modes
# turn into a non-zero exit:
#
#   * a panic escaping the supervisor (the binary aborts),
#   * an accounting/ordering violation (the binary exits 1),
#   * a deadlock or livelock (timeout kills it, exit 124).
#
# The soak is deterministic per seed; a failure prints the round seed so
# the exact traffic replays locally.
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_BUDGET="${CHAOS_SECONDS:-60}"
SEED="${CHAOS_SEED:-7}"
# Give the binary its budget plus generous slack for build-free startup
# and the final round in flight; anything beyond that is a hang.
HARD_LIMIT=$((SECONDS_BUDGET * 2 + 120))

cargo build --release -q -p cs-bench --bin chaos_soak
timeout --signal=KILL "${HARD_LIMIT}s" \
    target/release/chaos_soak \
    --seconds "$SECONDS_BUDGET" --seed "$SEED" \
    --streams 8 --workers 4 \
    --ber 1e-3 --drop 0.05 --reorder 0.02 --dup 0.01 --truncate 0.01 \
    --signal-seconds 8
