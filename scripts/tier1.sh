#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a change lands.
#
#   scripts/tier1.sh
#
# Release build (the benches and report binaries only make sense
# optimized), the full test suite, and clippy with warnings denied.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
