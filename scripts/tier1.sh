#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a change lands.
#
#   scripts/tier1.sh
#
# Release build (the benches and report binaries only make sense
# optimized), the full test suite, clippy with warnings denied, the
# steady-state zero-allocation guarantee under the optimizer, a quick
# benchmark snapshot (exercises the parse + report plumbing, not the
# committed numbers), and a short live-telemetry smoke run of the fleet
# report.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# The zero-alloc tests run in the debug suite above too, but the claim
# that matters is about the optimized decoder, so pin them in release —
# the sequential steady state and the batched (MMV) steady state.
cargo test -q --release -p cs-core --test zero_alloc
cargo test -q --release -p cs-core --test zero_alloc_batch

# Batch-vs-sequential equivalence under the optimizer: bit-exactness is
# the MMV path's contract, and fast-math-style regressions only show up
# in release codegen.
cargo test -q --release --test numerical_equivalence

scripts/bench_snapshot.sh --quick

# The quick snapshot doubles as the batched-bench smoke: fail if the
# MMV benches stopped producing rows (a silent rename would otherwise
# leave the committed baseline comparing against nothing).
grep -q '"fleet_throughput/fleet_batch/8"' target/BENCH_decode_quick.json
grep -q '"batched_fista/batch_8"' target/BENCH_decode_quick.json

# Telemetry smoke: one tiny fleet (~2 s of signal) with the live
# registry and both exporters; fails if the scrape comes out empty.
# (Captured first: grep -q on a pipe would SIGPIPE the report binary.)
smoke="$(target/release/fleet_report --records 1 --seconds 2 --telemetry)"
grep -q 'cs_stage_latency_ns_bucket{stage="fista_solve"' <<<"$smoke"
grep -q 'cs_fault_total{kind="concealed_loss"' <<<"$smoke"

# Chaos smoke: a short seeded soak of the lossy-wire fleet (the 60 s
# profile runs out of band; see scripts/chaos.sh).
CHAOS_SECONDS="${CHAOS_SECONDS:-5}" scripts/chaos.sh

# Crash-recovery smoke: SIGKILL the archive writer mid-append and
# require a lossless recovery scan (the 8-round profile runs out of
# band; see scripts/archive_crash.sh).
CRASH_ROUNDS="${CRASH_ROUNDS:-2}" scripts/archive_crash.sh
