#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a change lands.
#
#   scripts/tier1.sh
#
# Release build (the benches and report binaries only make sense
# optimized), the full test suite, clippy with warnings denied, the
# steady-state zero-allocation guarantee under the optimizer, a quick
# benchmark snapshot (exercises the parse + report plumbing, not the
# committed numbers), and a short live-telemetry smoke run of the fleet
# report.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# The zero-alloc test runs in the debug suite above too, but the claim
# that matters is about the optimized decoder, so pin it in release.
cargo test -q --release -p cs-core --test zero_alloc

scripts/bench_snapshot.sh --quick

# Telemetry smoke: one tiny fleet (~2 s of signal) with the live
# registry and both exporters; fails if the scrape comes out empty.
# (Captured first: grep -q on a pipe would SIGPIPE the report binary.)
smoke="$(target/release/fleet_report --records 1 --seconds 2 --telemetry)"
grep -q 'cs_stage_latency_ns_bucket{stage="fista_solve"' <<<"$smoke"
grep -q 'cs_fault_total{kind="concealed_loss"' <<<"$smoke"

# Chaos smoke: a short seeded soak of the lossy-wire fleet (the 60 s
# profile runs out of band; see scripts/chaos.sh).
CHAOS_SECONDS="${CHAOS_SECONDS:-5}" scripts/chaos.sh

# Crash-recovery smoke: SIGKILL the archive writer mid-append and
# require a lossless recovery scan (the 8-round profile runs out of
# band; see scripts/archive_crash.sh).
CRASH_ROUNDS="${CRASH_ROUNDS:-2}" scripts/archive_crash.sh
