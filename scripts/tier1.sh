#!/usr/bin/env bash
# Tier-1 gate: everything must pass before a change lands.
#
#   scripts/tier1.sh
#
# Release build (the benches and report binaries only make sense
# optimized), the full test suite, clippy with warnings denied, the
# steady-state zero-allocation guarantee under the optimizer, a quick
# benchmark snapshot (exercises the parse + report plumbing, not the
# committed numbers), and a short live-telemetry smoke run of the fleet
# report.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# The zero-alloc tests run in the debug suite above too, but the claim
# that matters is about the optimized decoder, so pin them in release —
# the sequential steady state, the batched (MMV) steady state, and the
# prior-driven (support-weighted / group-prox) steady states.
cargo test -q --release -p cs-core --test zero_alloc
cargo test -q --release -p cs-core --test zero_alloc_batch
cargo test -q --release -p cs-core --test zero_alloc_prior
cargo test -q --release -p cs-core --test zero_alloc_prior_batch

# The ingest transport path makes the same claim one layer down: after
# session setup, deframe + validate + control encode allocate nothing,
# and the decode-queue handoff costs exactly one buffer per frame.
cargo test -q --release -p cs-ingest --test zero_alloc_ingest

# Prior-driven solver guarantees under the optimizer: the ≥ 20 %
# iteration win across the CR sweep at equal-or-better PRD, and bounded
# degradation on a mid-stream arrhythmic morphology change.
cargo test -q --release --test solver_priors

# Batch-vs-sequential equivalence under the optimizer: bit-exactness is
# the MMV path's contract, and fast-math-style regressions only show up
# in release codegen.
cargo test -q --release --test numerical_equivalence

# Bench regression gate: runs the quick snapshot, prints a per-row
# min_ns delta table against the committed BENCH_decode.json, and fails
# only on a gross (>40 %) regression — see scripts/bench_check.sh.
scripts/bench_check.sh

# The quick snapshot doubles as the batched-bench smoke: fail if the
# MMV benches stopped producing rows (a silent rename would otherwise
# leave the committed baseline comparing against nothing).
grep -q '"fleet_throughput/fleet_batch/8"' target/BENCH_decode_quick.json
grep -q '"batched_fista/batch_8"' target/BENCH_decode_quick.json
grep -q '"ingest_throughput/deframe/1400B"' target/BENCH_decode_quick.json

# Telemetry smoke: one tiny fleet (~2 s of signal) with the live
# registry and both exporters; fails if the scrape comes out empty.
# (Captured first: grep -q on a pipe would SIGPIPE the report binary.)
smoke="$(target/release/fleet_report --records 1 --seconds 2 --telemetry)"
grep -q 'cs_stage_latency_ns_bucket{stage="fista_solve"' <<<"$smoke"
grep -q 'cs_fault_total{kind="concealed_loss"' <<<"$smoke"

# HTTP serve smoke: the same short run behind the live /metrics
# endpoint. The report announces its ephemeral port on stdout before
# decoding and parks after the report, so scrape it over real TCP with
# a hard timeout, then kill the parked process.
serve_log="$(mktemp)"
target/release/fleet_report --records 1 --seconds 2 --serve 127.0.0.1:0 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
for _ in $(seq 50); do
  grep -q '^serving http://' "$serve_log" && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log" >&2; exit 1; }
  sleep 0.2
done
serve_addr="$(sed -n 's|^serving http://\([^/]*\)/metrics.*|\1|p' "$serve_log" | head -1)"
[[ -n "$serve_addr" ]] || { echo "tier1: fleet_report --serve never announced its port" >&2; cat "$serve_log" >&2; exit 1; }
# The e2e gauges only populate once the traced run has emitted packets;
# poll until the decode finishes (bounded by the loop, 5 s per scrape).
for i in $(seq 60); do
  scrape="$(curl -sS --max-time 5 "http://$serve_addr/metrics")"
  grep -q 'cs_e2e_latency_seconds_bucket{patient="0"' <<<"$scrape" && break
  [[ "$i" == 60 ]] && { echo "tier1: /metrics never showed e2e latency rows" >&2; exit 1; }
  sleep 0.5
done
grep -q 'cs_patient_health{patient="0",state="healthy"} 1' <<<"$scrape"
grep -q 'cs_slo_burn_rate{patient="0",window="fast"' <<<"$scrape"
grep -q 'cs_lane_freshness_seconds{patient="0"' <<<"$scrape"
health="$(curl -sS --max-time 5 -o /dev/null -w '%{http_code}' "http://$serve_addr/healthz")"
[[ "$health" == 200 ]] || { echo "tier1: /healthz returned $health for a healthy run" >&2; exit 1; }
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"

# Chaos smoke: a short seeded soak of the lossy-wire fleet (the 60 s
# profile runs out of band; see scripts/chaos.sh).
CHAOS_SECONDS="${CHAOS_SECONDS:-5}" scripts/chaos.sh

# Crash-recovery smoke: SIGKILL the archive writer mid-append and
# require a lossless recovery scan (the 8-round profile runs out of
# band; see scripts/archive_crash.sh).
CRASH_ROUNDS="${CRASH_ROUNDS:-2}" scripts/archive_crash.sh

# Ingest smoke: a 200-mote swarm through the socket service, clean and
# behind the chaos proxy, with every lifecycle invariant checked (the
# 1000-mote profile runs out of band; see scripts/ingest_soak.sh).
SWARM_MOTES="${SWARM_MOTES:-200}" scripts/ingest_soak.sh

# Clinical smoke: the short-profile arrhythmia soak — detection accuracy
# on reconstructed signals, alarm latency, adaptive-CR escalation and
# the false-alarm controls (the full profile runs out of band; see
# scripts/arrhythmia_soak.sh).
SOAK_SHORT=1 scripts/arrhythmia_soak.sh
