#!/usr/bin/env bash
# Hot-path benchmark snapshot → BENCH_decode.json.
#
#   scripts/bench_snapshot.sh            # full run, writes ./BENCH_decode.json
#   scripts/bench_snapshot.sh --quick    # reduced samples, writes target/BENCH_decode_quick.json
#
# Runs the four hot-path Criterion benches (solver_iteration,
# sensing_apply, fleet_throughput, ingest_throughput) plus a seeded
# fleet_report pass, parses
# the vendored-criterion `time: [min median mean max]` lines and the
# report's throughput/latency summary, and emits one JSON document. The
# `min` statistic is the one to compare across commits: these benches run
# on small shared hosts where median and mean absorb scheduler steal.
#
# All inputs are deterministic (fixed RNG seeds in the benches, synthetic
# database in fleet_report), so run-to-run differences are machine noise,
# not workload drift.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

if [[ $QUICK -eq 1 ]]; then
  # 500 ms windows: a quick min over ~10² samples sits above the full
  # baseline's min-of-10⁴ floor no matter what, but below ~500 ms the
  # gap swings wildly run-to-run and trips bench_check's fail band.
  MEASURE_MS=500
  RECORDS=1
  SECONDS_PER_RECORD=4
  OUT=target/BENCH_decode_quick.json
  mkdir -p target
else
  # 4 s windows: the fleet rows differ by single-digit percent, and on a
  # shared host the min of a 2 s window still wobbles by more than that.
  MEASURE_MS=4000
  RECORDS=4
  SECONDS_PER_RECORD=16
  OUT=BENCH_decode.json
fi

cargo build --release >/dev/null
export CRITERION_MEASUREMENT_MS="$MEASURE_MS"

bench_lines="$(
  cargo bench -p cs-bench --bench solver_iteration 2>/dev/null
  cargo bench -p cs-bench --bench sensing_apply 2>/dev/null
  cargo bench -p cs-bench --bench fleet_throughput 2>/dev/null
  cargo bench -p cs-bench --bench ingest_throughput 2>/dev/null
)"

report="$(target/release/fleet_report --records "$RECORDS" --seconds "$SECONDS_PER_RECORD")"

# ── Parse criterion lines: "<name>  time: [min median mean max] (N samples)"
bench_json="$(awk '
  function to_ns(v, u) {
    if (u == "ns") return v
    if (u == "µs" || u == "us") return v * 1e3
    if (u == "ms") return v * 1e6
    return v * 1e9  # "s"
  }
  /time: \[/ {
    name = $1
    match($0, /\[[^]]*\]/)
    nf = split(substr($0, RSTART + 1, RLENGTH - 2), f, " ")
    samples = 0
    if (match($0, /\([0-9]+ samples\)/)) {
      samples = substr($0, RSTART + 1, RLENGTH - 2) + 0
    }
    printf "%s    \"%s\": {\"min_ns\": %.1f, \"median_ns\": %.1f, \"mean_ns\": %.1f, \"max_ns\": %.1f, \"samples\": %d}",
      (n++ ? ",\n" : ""), name,
      to_ns(f[1], f[2]), to_ns(f[3], f[4]), to_ns(f[5], f[6]), to_ns(f[7], f[8]), samples
  }
' <<<"$bench_lines")"

# ── Parse fleet_report summary lines.
fleet_json="$(awk '
  /sequential \(1 stream\)/   { seq = $5 }
  /fleet \([0-9]+ workers\)/  {
    match($0, /\([0-9]+ workers\)/)
    workers = substr($0, RSTART + 1, RLENGTH - 2) + 0
    fleet = $5
  }
  /cold solve p50\/p95\/p99/  { p50 = $5; p95 = $7; p99 = $9 }
  /cold mean iterations/      { cold_it = $5 }
  /warm mean iterations/      { warm_it = $5 }
  /weighted mean iterations/  { weighted_it = $5 }
  /block mean iterations/     { block_it = $5 }
  /cold PRD/                  { cold_prd = $4 }
  /warm PRD/                  { warm_prd = $4 }
  /weighted PRD/              { weighted_prd = $4 }
  /block PRD/                 { block_prd = $4 }
  END {
    printf "\"workers\": %d, \"sequential_packets_per_s\": %s, \"fleet_packets_per_s\": %s, ",
      workers, seq, fleet
    printf "\"cold_solve_p50_ms\": %s, \"cold_solve_p95_ms\": %s, \"cold_solve_p99_ms\": %s, ",
      p50, p95, p99
    printf "\"cold_mean_iterations\": %s, \"warm_mean_iterations\": %s, ", cold_it, warm_it
    printf "\"weighted_mean_iterations\": %s, \"block_mean_iterations\": %s, ",
      weighted_it, block_it
    printf "\"cold_prd_percent\": %s, \"warm_prd_percent\": %s, ", cold_prd, warm_prd
    printf "\"weighted_prd_percent\": %s, \"block_prd_percent\": %s", weighted_prd, block_prd
  }
' <<<"$report")"

cat >"$OUT" <<EOF
{
  "snapshot": "decode hot path",
  "date": "$(date +%F)",
  "quick": $([[ $QUICK -eq 1 ]] && echo true || echo false),
  "statistic_note": "compare min_ns across commits; median/mean absorb scheduler steal on shared hosts",
  "geometry": {"n": 512, "m": 256, "d": 12, "cr_percent": 50.0},
  "criterion_measurement_ms": $MEASURE_MS,
  "benches": {
$bench_json
  },
  "fleet_report": {
    "records": $RECORDS,
    "seconds_per_record": $SECONDS_PER_RECORD,
    $fleet_json
  }
}
EOF

echo "wrote $OUT"
