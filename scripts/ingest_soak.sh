#!/usr/bin/env bash
# Ingest gate: the socket-fed service must survive a hostile TCP path
# at swarm scale, with the books balanced.
#
#   scripts/ingest_soak.sh                 # 1000-mote soak (nightly)
#   SWARM_MOTES=200 scripts/ingest_soak.sh # short CI profile
#
# Runs mote_swarm twice — once clean (admission shedding and graceful
# drain under a straight loopback), once through the seeded TcpChaosProxy
# (RST-style aborts, stalls, single-byte writes, truncated closes, bit
# flips) — under coreutils `timeout`, so every failure mode turns into a
# non-zero exit:
#
#   * a lifecycle invariant violation — accounting leak, double emission
#     after resume, leaked session gauge, /healthz stuck — (exit 1),
#   * a panic in the listener, a session thread, or the engine (abort),
#   * a deadlock or livelock (timeout kills it, exit 124).
#
# The soak is deterministic per seed on the chaos side; a failure
# reproduces locally with the same --seed.
set -euo pipefail
cd "$(dirname "$0")/.."

MOTES="${SWARM_MOTES:-1000}"
FRAMES="${SWARM_FRAMES:-6}"
SEED="${SWARM_SEED:-7}"
# Each mote has a 120 s wall-clock budget but the swarm runs them over a
# bounded pool; the hard limit is a hang detector, not a pace-setter.
HARD_LIMIT="${SWARM_HARD_LIMIT:-600}"

cargo build --release -q -p cs-bench --bin mote_swarm

echo "== ingest soak: clean, ${MOTES} motes =="
timeout --signal=KILL "${HARD_LIMIT}s" \
    target/release/mote_swarm \
    --motes "$MOTES" --frames "$FRAMES" --seed "$SEED"

echo "== ingest soak: chaos proxy, ${MOTES} motes =="
timeout --signal=KILL "${HARD_LIMIT}s" \
    target/release/mote_swarm \
    --motes "$MOTES" --frames "$FRAMES" --seed "$SEED" --chaos
