#!/usr/bin/env bash
# Bench regression gate: compare a fresh quick snapshot against the
# committed baseline.
#
#   scripts/bench_check.sh                 # runs bench_snapshot.sh --quick, then compares
#   scripts/bench_check.sh --no-run        # compare an existing target/BENCH_decode_quick.json
#
# Compares `min_ns` per bench row (the statistic BENCH_decode.json's own
# note says to compare across commits; median/mean absorb scheduler
# steal on shared hosts) and prints a per-row delta table.
#
# Tunables:
#   BENCH_CHECK_TOLERANCE_PCT  warn threshold, default 20 (±20 %)
#   BENCH_CHECK_HARD_PCT       fail threshold, default 40 — non-zero exit
#                              only on a *regression* (slowdown) past it;
#                              speedups never fail, they just suggest the
#                              baseline wants refreshing.
#
# The gate is advisory by design, and the fail band is deliberately wide:
# the committed baseline's min is taken over ~10⁴ samples (4 s windows)
# and so sits near the true floor, while a quick run's min over a few
# hundred samples lands 10–30 % above that floor on a noisy host — a
# structural bias of min-of-N, not a regression. The gate exists to catch
# gross slowdowns (accidental debug codegen, complexity blowups), which
# clear 40 % comfortably. Refresh the baseline with
# `scripts/bench_snapshot.sh` (full) when a change legitimately moves the
# numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_decode.json
CURRENT=target/BENCH_decode_quick.json

if [[ "${1:-}" != "--no-run" ]]; then
  scripts/bench_snapshot.sh --quick
fi

[[ -f "$BASELINE" ]] || { echo "bench_check: missing $BASELINE" >&2; exit 2; }
[[ -f "$CURRENT"  ]] || { echo "bench_check: missing $CURRENT (run scripts/bench_snapshot.sh --quick)" >&2; exit 2; }

BENCH_CHECK_TOLERANCE_PCT="${BENCH_CHECK_TOLERANCE_PCT:-20}" \
BENCH_CHECK_HARD_PCT="${BENCH_CHECK_HARD_PCT:-40}" \
python3 - "$BASELINE" "$CURRENT" <<'PY'
import json, os, sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
warn_pct = float(os.environ["BENCH_CHECK_TOLERANCE_PCT"])
hard_pct = float(os.environ["BENCH_CHECK_HARD_PCT"])

with open(baseline_path) as f:
    baseline_doc = json.load(f)
with open(current_path) as f:
    current_doc = json.load(f)
baseline = baseline_doc["benches"]
current = current_doc["benches"]

def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:9.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:9.2f} µs"
    return f"{ns:9.0f} ns"

rows, missing, regressions, drifts = [], [], [], []
for name, base in sorted(baseline.items()):
    cur = current.get(name)
    if cur is None:
        missing.append(name)
        continue
    base_ns, cur_ns = base["min_ns"], cur["min_ns"]
    delta = (cur_ns - base_ns) / base_ns * 100.0
    if delta > hard_pct:
        verdict = "FAIL"
        regressions.append((name, delta))
    elif abs(delta) > warn_pct:
        verdict = "warn"
        drifts.append((name, delta))
    else:
        verdict = "ok"
    rows.append((name, base_ns, cur_ns, delta, verdict))

new_rows = sorted(set(current) - set(baseline))

width = max((len(r[0]) for r in rows), default=20)
print(f"bench_check: min_ns vs {baseline_path} "
      f"(warn ±{warn_pct:.0f} %, fail >{hard_pct:.0f} % regression)")
print(f"{'bench':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}  verdict")
for name, base_ns, cur_ns, delta, verdict in rows:
    print(f"{name:<{width}}  {fmt_ns(base_ns)}  {fmt_ns(cur_ns)}  {delta:+7.1f}%  {verdict}")
for name in missing:
    print(f"{name:<{width}}  {'—':>12}  {'—':>12}  {'—':>8}  MISSING from current run")
for name in new_rows:
    print(f"{name:<{width}}  {'—':>12}  {fmt_ns(current[name]['min_ns'])}  {'new':>8}  not in baseline")

# ── Fleet solver gate: the prior-driven solve path's iteration ceiling.
#
# The committed (full) baseline must uphold the headline win — the
# support-weighted prior solves in ≤ 80 % of the warm baseline's mean
# iterations at equal-or-better PRD (±0.5 pp). That invariant is checked
# *within* the baseline document, so it never wobbles with host noise.
# The quick run's iteration means are compared against the baseline only
# advisorily (quick uses a smaller corpus, so the workload itself
# shifts); a gross drift past the generous band warns.
ITER_DRIFT_PCT = 40.0
solver_failures = []
base_fleet = baseline_doc.get("fleet_report", {})
cur_fleet = current_doc.get("fleet_report", {})

bw, bwt = base_fleet.get("warm_mean_iterations"), base_fleet.get("weighted_mean_iterations")
if bw is None or bwt is None:
    solver_failures.append(
        "baseline fleet_report lacks warm/weighted mean iterations — "
        "refresh with scripts/bench_snapshot.sh")
else:
    if bwt > 0.8 * bw:
        solver_failures.append(
            f"baseline weighted mean iterations {bwt} > 80 % of warm {bw}")
    bp, bwp = base_fleet.get("warm_prd_percent"), base_fleet.get("weighted_prd_percent")
    if bp is None or bwp is None:
        solver_failures.append("baseline fleet_report lacks warm/weighted PRD")
    elif bwp > bp + 0.5:
        solver_failures.append(
            f"baseline weighted PRD {bwp} % worse than warm {bp} % by > 0.5 pp")

print("\nbench_check: fleet solver iterations "
      f"(advisory drift band ±{ITER_DRIFT_PCT:.0f} %; baseline invariant is hard)")
for field in ("cold_mean_iterations", "warm_mean_iterations",
              "weighted_mean_iterations", "block_mean_iterations"):
    b, c = base_fleet.get(field), cur_fleet.get(field)
    if b is None or c is None:
        print(f"  {field:<26} baseline={b} current={c}  (incomparable)")
        continue
    delta = (c - b) / b * 100.0 if b else 0.0
    note = "ok" if abs(delta) <= ITER_DRIFT_PCT else "warn (smaller quick corpus shifts the workload)"
    print(f"  {field:<26} {b:>8.1f} -> {c:>8.1f}  {delta:+6.1f}%  {note}")
cw, cwt = cur_fleet.get("warm_mean_iterations"), cur_fleet.get("weighted_mean_iterations")
if cw is not None and cwt is not None and cwt > 0.8 * cw:
    print(f"  note: current quick run weighted {cwt} > 80 % of warm {cw} "
          "(advisory; the gate reads the committed baseline)")

if solver_failures:
    print(f"\nbench_check: {len(solver_failures)} fleet solver gate failure(s):")
    for msg in solver_failures:
        print(f"  {msg}")
    sys.exit(1)

if drifts:
    print(f"\nbench_check: {len(drifts)} row(s) drifted past ±{warn_pct:.0f} % (advisory)")
if missing:
    print(f"\nbench_check: {len(missing)} baseline row(s) missing — "
          "a silent bench rename leaves the baseline comparing nothing")
    sys.exit(1)
if regressions:
    print(f"\nbench_check: {len(regressions)} regression(s) past {hard_pct:.0f} %:")
    for name, delta in regressions:
        print(f"  {name}: {delta:+.1f}%")
    sys.exit(1)
print("\nbench_check: ok")
PY
