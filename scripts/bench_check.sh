#!/usr/bin/env bash
# Bench regression gate: compare a fresh quick snapshot against the
# committed baseline.
#
#   scripts/bench_check.sh                 # runs bench_snapshot.sh --quick, then compares
#   scripts/bench_check.sh --no-run        # compare an existing target/BENCH_decode_quick.json
#
# Compares `min_ns` per bench row (the statistic BENCH_decode.json's own
# note says to compare across commits; median/mean absorb scheduler
# steal on shared hosts) and prints a per-row delta table.
#
# Tunables:
#   BENCH_CHECK_TOLERANCE_PCT  warn threshold, default 15 (±15 %)
#   BENCH_CHECK_HARD_PCT       fail threshold, default 25 — non-zero exit
#                              only on a *regression* (slowdown) past it;
#                              speedups never fail, they just suggest the
#                              baseline wants refreshing.
#
# The gate is advisory by design: quick snapshots (200 ms windows) on a
# shared host wobble, so the warn band is wide and only a gross slowdown
# fails. Refresh the baseline with `scripts/bench_snapshot.sh` (full)
# when a change legitimately moves the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_decode.json
CURRENT=target/BENCH_decode_quick.json

if [[ "${1:-}" != "--no-run" ]]; then
  scripts/bench_snapshot.sh --quick
fi

[[ -f "$BASELINE" ]] || { echo "bench_check: missing $BASELINE" >&2; exit 2; }
[[ -f "$CURRENT"  ]] || { echo "bench_check: missing $CURRENT (run scripts/bench_snapshot.sh --quick)" >&2; exit 2; }

BENCH_CHECK_TOLERANCE_PCT="${BENCH_CHECK_TOLERANCE_PCT:-15}" \
BENCH_CHECK_HARD_PCT="${BENCH_CHECK_HARD_PCT:-25}" \
python3 - "$BASELINE" "$CURRENT" <<'PY'
import json, os, sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
warn_pct = float(os.environ["BENCH_CHECK_TOLERANCE_PCT"])
hard_pct = float(os.environ["BENCH_CHECK_HARD_PCT"])

with open(baseline_path) as f:
    baseline = json.load(f)["benches"]
with open(current_path) as f:
    current = json.load(f)["benches"]

def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:9.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:9.2f} µs"
    return f"{ns:9.0f} ns"

rows, missing, regressions, drifts = [], [], [], []
for name, base in sorted(baseline.items()):
    cur = current.get(name)
    if cur is None:
        missing.append(name)
        continue
    base_ns, cur_ns = base["min_ns"], cur["min_ns"]
    delta = (cur_ns - base_ns) / base_ns * 100.0
    if delta > hard_pct:
        verdict = "FAIL"
        regressions.append((name, delta))
    elif abs(delta) > warn_pct:
        verdict = "warn"
        drifts.append((name, delta))
    else:
        verdict = "ok"
    rows.append((name, base_ns, cur_ns, delta, verdict))

new_rows = sorted(set(current) - set(baseline))

width = max((len(r[0]) for r in rows), default=20)
print(f"bench_check: min_ns vs {baseline_path} "
      f"(warn ±{warn_pct:.0f} %, fail >{hard_pct:.0f} % regression)")
print(f"{'bench':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}  verdict")
for name, base_ns, cur_ns, delta, verdict in rows:
    print(f"{name:<{width}}  {fmt_ns(base_ns)}  {fmt_ns(cur_ns)}  {delta:+7.1f}%  {verdict}")
for name in missing:
    print(f"{name:<{width}}  {'—':>12}  {'—':>12}  {'—':>8}  MISSING from current run")
for name in new_rows:
    print(f"{name:<{width}}  {'—':>12}  {fmt_ns(current[name]['min_ns'])}  {'new':>8}  not in baseline")

if drifts:
    print(f"\nbench_check: {len(drifts)} row(s) drifted past ±{warn_pct:.0f} % (advisory)")
if missing:
    print(f"\nbench_check: {len(missing)} baseline row(s) missing — "
          "a silent bench rename leaves the baseline comparing nothing")
    sys.exit(1)
if regressions:
    print(f"\nbench_check: {len(regressions)} regression(s) past {hard_pct:.0f} %:")
    for name, delta in regressions:
        print(f"  {name}: {delta:+.1f}%")
    sys.exit(1)
print("\nbench_check: ok")
PY
