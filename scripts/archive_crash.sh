#!/usr/bin/env bash
# Crash-recovery gate: a SIGKILLed archive writer must never lose a
# completed record.
#
#   scripts/archive_crash.sh                 # 8 kill/verify rounds
#   CRASH_ROUNDS=3 scripts/archive_crash.sh  # short CI profile
#
# Each round starts `archive_crash write` appending CRC'd records as
# fast as it can, kills it with SIGKILL after a fraction of a second
# (via coreutils `timeout`), then runs `archive_crash verify` — a
# read-only recovery scan that requires every lane's sequence numbers to
# be contiguous from 0 with byte-exact payloads. The next round's writer
# reopens the same directory, exercising the truncate-and-resume path on
# top of whatever the kill left behind. Verification failure exits
# non-zero with the evidence left in place.
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${CRASH_ROUNDS:-8}"
WRITE_SECONDS="${CRASH_WRITE_SECONDS:-0.4}"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/cs-archive-crash.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

cargo build --release -q -p cs-bench --bin archive_crash

for round in $(seq 1 "$ROUNDS"); do
    # timeout delivers SIGKILL mid-append; exit 137 is the expected kill.
    # (The reaping `wait` runs inside a stderr-silenced subshell so
    # bash's own "Killed" job notice stays out of the log.)
    rc=0
    (timeout --signal=KILL "$WRITE_SECONDS" \
        target/release/archive_crash write "$DIR" & wait $!) 2>/dev/null || rc=$?
    if [ "$rc" -ne 137 ]; then
        echo "FAIL round $round: writer exited $rc instead of being killed" >&2
        exit 1
    fi
    target/release/archive_crash verify "$DIR"
done
echo "OK: $ROUNDS kill/verify rounds, no record loss beyond torn tails"
