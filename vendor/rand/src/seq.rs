//! Sequence helpers (`choose`, `shuffle`) over slices.

use crate::distributions::uniform::SampleRange;
use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_single(rng))
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
