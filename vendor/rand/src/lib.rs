//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the small slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and
//! the [`distributions::Standard`] distribution. The generator is
//! xoshiro256++ seeded by splitmix64 — a different stream than upstream
//! `rand`'s ChaCha12, which is fine here because every consumer in this
//! workspace treats the stream as an arbitrary deterministic source.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // splitmix64 (Steele, Lea & Flood), the upstream expansion.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    /// Fills a mutable slice-like with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_with(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be filled with random data.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Returns a generator seeded from a process-local entropy source.
///
/// Deliberately *deterministic per process* (seeded from the monotonic
/// clock) — good enough for the workloads in this workspace, which either
/// seed explicitly or only need arbitrary data.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10_u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5_i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25_f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_uniform_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
