//! Distributions: the `Standard` uniform distribution and range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution: full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $via as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64,
);

pub mod uniform {
    //! Uniform sampling from ranges.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that [`crate::Rng::gen_range`] can sample uniformly.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform draw from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range forms accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "gen_range: empty range");
            T::sample_inclusive(rng, lo, hi)
        }
    }

    /// Uniform draw from `[0, span)` by rejection, avoiding modulo bias.
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if wide <= zone {
                return wide % span;
            }
        }
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i128).wrapping_sub(low as i128) as u128;
                    let off = below(rng, span);
                    ((low as i128).wrapping_add(off as i128)) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                    if span == 0 {
                        // Full u128 span cannot occur for <=64-bit types.
                        return rng.next_u64() as $t;
                    }
                    let off = below(rng, span);
                    ((low as i128).wrapping_add(off as i128)) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = low as f64 + unit * (high as f64 - low as f64);
                    // Floating rounding can land exactly on `high`; clamp back.
                    if v as $t >= high { low } else { v as $t }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                    (low as f64 + unit * (high as f64 - low as f64)) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);
}
