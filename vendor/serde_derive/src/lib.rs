//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub:
//! they accept the attribute position and expand to nothing, which is all
//! the workspace's off-by-default serde features require to compile.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
