//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification: fixed or a range of lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u128 + 1;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec(element, len)` — vectors of generated
/// elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
