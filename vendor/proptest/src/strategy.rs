//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several same-typed strategies per generated
/// value (the expansion of [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof: no options");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.below(self.options.len() as u128) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy over a type's full value range.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T` (full integer range, unit-interval floats,
/// fair booleans).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, symmetric, spanning many magnitudes.
        let mag = rng.next_unit_f64();
        let exp = (rng.below(64) as i32) - 32;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag * (2.0_f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below(span);
                ((self.start as i128).wrapping_add(off as i128)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                let off = rng.below(span);
                ((lo as i128).wrapping_add(off as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_unit_f64();
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
