//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the slice of proptest it uses: the [`proptest!`]
//! macro, `prop_assert*` macros, range / `any` / `Just` / tuple / vec
//! strategies, `prop_oneof!`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **Deterministic**: every test function derives its RNG seed from its
//!   own module path and case index, so failures reproduce exactly across
//!   runs and machines — there is no persistence file. (Existing
//!   `*.proptest-regressions` files are ignored.)
//! * **No shrinking**: a failing case reports its case index and message
//!   instead of a minimized input. Determinism makes the failure
//!   re-runnable under a debugger.
//! * Value generation is uniform over the requested range rather than
//!   edge-biased.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident $args:tt $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            const __PT_NAME: &str = concat!(module_path!(), "::", stringify!($name));
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            for __pt_case in 0..__pt_config.cases {
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_case(__PT_NAME, __pt_case as u64);
                let __pt_outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $crate::__proptest_bind!(__pt_rng, $args);
                    $crate::__proptest_run!($body)
                };
                if let ::std::result::Result::Err(e) = __pt_outcome {
                    ::std::panic!(
                        "proptest case {}/{} of {} failed: {}",
                        __pt_case + 1,
                        __pt_config.cases,
                        __PT_NAME,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($body:block) => {
        (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            #[allow(unreachable_code)]
            ::std::result::Result::Ok(())
        })()
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, ($($args:tt)*)) => {
        $crate::__proptest_bind_inner!($rng, $($args)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind_inner {
    ($rng:ident,) => {};
    ($rng:ident, $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind_inner!($rng, $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniformly picks one of several same-typed strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($strat),+])
    };
}
