//! The deterministic case runner: config, RNG and failure type.

use std::fmt;

/// Per-test configuration. Only the field this workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    ///
    /// The `PROPTEST_CASES` environment variable, when set, caps the count
    /// — useful to shorten CI or deepen local soak runs.
    pub fn with_cases(cases: u32) -> Self {
        let cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(u32::MAX);
        ProptestConfig {
            cases: cases.min(cap).max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this workspace's properties are
        // numerical and debug-built on small hosts, so default lighter.
        ProptestConfig::with_cases(64)
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`] for rejected
    /// (filtered-out) inputs.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (splitmix64 over a seed derived from
/// the test's module path and the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the fully qualified test name...
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // ...mixed with the case index so each case gets its own stream.
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64(); // discard the correlated first output
        rng
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea & Flood).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 random bits.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, span)` without modulo bias.
    pub fn below(&mut self, span: u128) -> u128 {
        assert!(span > 0, "TestRng::below: zero span");
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if wide <= zone {
                return wide % span;
            }
        }
    }
}
