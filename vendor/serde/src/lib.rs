//! Vendored stub of `serde`.
//!
//! The workspace declares optional `serde` support behind off-by-default
//! features, and the build environment cannot download the real crate.
//! This stub keeps the dependency graph resolvable. The `derive` feature
//! expands to no-op derives (see `serde_derive`), so `--features serde`
//! builds still compile; actual serialization is not provided and nothing
//! in the workspace currently calls it.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
