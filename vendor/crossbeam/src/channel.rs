//! Multi-producer multi-consumer FIFO channels with optional capacity.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has hung up.
/// Carries the unsent message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver has hung up.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has hung up.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender has hung up.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// The sending half of a channel. Clonable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded FIFO channel with the given capacity.
///
/// `send` blocks while the queue holds `cap` messages (back-pressure). A
/// capacity of zero is promoted to one: true rendezvous channels are not
/// needed by this workspace and a one-slot buffer preserves every ordering
/// and hang-up property its pipelines rely on.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make_channel(Some(cap.max(1)))
}

/// Creates an unbounded FIFO channel (`send` never blocks).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued, or errors if all receivers
    /// are gone (the message is handed back).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = self
                .shared
                .capacity
                .is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel poisoned");
        }
    }

    /// Enqueues without blocking, or reports why it can't.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if self
            .shared
            .capacity
            .is_some_and(|cap| state.queue.len() >= cap)
        {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or errors once the channel is empty
    /// and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel poisoned");
        }
    }

    /// Dequeues without blocking, or reports why it can't.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel poisoned").queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders blocked on a full queue so they observe the
            // disconnect instead of hanging forever.
            self.shared.not_full.notify_all();
        }
    }
}

/// Borrowing message iterator; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning message iterator.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded(8);
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn send_blocks_at_capacity_and_resumes() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let handle = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv().unwrap(), 1);
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(5).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn mpmc_sum_is_conserved() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().sum::<u64>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..3).map(|p| (0..100).map(|i| p * 1000 + i).sum::<u64>()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }
}
