//! Vendored, API-compatible subset of `crossbeam`.
//!
//! The build environment has no network access, so the workspace vendors
//! the one crossbeam facility it uses: **MPMC bounded channels** with
//! blocking `send`/`recv`, non-blocking `try_*` variants and disconnect
//! semantics. The implementation is a `Mutex<VecDeque>` with two condvars
//! — not lock-free like the real crate, but semantically identical for
//! FIFO order, backpressure and hang-up behaviour, which is what the
//! decode pipeline and its tests rely on.

#![forbid(unsafe_code)]

pub mod channel;
