//! Vendored, API-compatible subset of `criterion`.
//!
//! Supports the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId::from_parameter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! wall-clock runner: a short warm-up, a timed measurement window, and a
//! one-line `name ... time: [min median mean max]` report. No statistics
//! engine, plots or HTML reports. `min` leads because on small shared
//! hosts it is the statistic least distorted by scheduler steal; compare
//! builds on `min`, read `median`/`mean` as a noise gauge. A substring
//! filter narrows a run to matching benches (`cargo bench -- <filter>`
//! or `CRITERION_FILTER=<filter>`).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, usually built from a sweep parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The bench context handed to each registered function.
#[derive(Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short windows: these benches run on small single-core hosts and
        // exist for relative comparisons, not publication-grade numbers.
        // CRITERION_MEASUREMENT_MS overrides for longer local runs.
        let ms = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            warm_up_time: Duration::from_millis(ms / 3),
            measurement_time: Duration::from_millis(ms),
            filter: std::env::var("CRITERION_FILTER").ok().filter(|s| !s.is_empty()),
        }
    }
}

impl Criterion {
    /// Sets the measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Accepted for API compatibility; sampling count is time-driven here.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Reads the substring filter upstream takes on the command line
    /// (`cargo bench -- <filter>`); flags are ignored. The
    /// `CRITERION_FILTER` environment variable is an equivalent spelling
    /// for harnesses that cannot thread argv through.
    pub fn configure_from_args(mut self) -> Self {
        if let Some(filter) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
            self.filter = Some(filter);
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into().name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs every registered bench function (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Sets the measurement window for the rest of the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sample throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let window = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if window.elapsed() >= self.budget || self.samples.len() >= 100_000 {
                break;
            }
        }
    }
}

fn run_one(criterion: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    // Warm-up pass, discarded.
    let mut warm = Bencher {
        samples: Vec::new(),
        budget: criterion.warm_up_time,
    };
    f(&mut warm);

    let mut bencher = Bencher {
        samples: Vec::new(),
        budget: criterion.measurement_time,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<48} no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let max = *samples.last().expect("non-empty samples");
    println!(
        "{label:<48} time: [{} {} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Registers a group of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
