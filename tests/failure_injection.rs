//! Failure injection: the decoder must degrade with structured errors —
//! never panics, never silently wrong state — under corruption, loss and
//! adversarial inputs.

use cs_ecg_monitor::platform::ChannelModel;
use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::system::{EncodedPacket, FaultStats, MultiChannelEncoder};
use cs_ecg_monitor::telemetry::{FaultKind, TelemetryRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn stream(seconds: f64) -> Vec<i16> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: seconds,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256
        .iter()
        .map(|&v| adc.to_signed(adc.quantize(v)))
        .collect()
}

fn pair(config: &SystemConfig) -> (Encoder, Decoder<f32>) {
    let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    (
        Encoder::new(config, Arc::clone(&cb)).unwrap(),
        Decoder::new(config, cb, SolverPolicy::default()).unwrap(),
    )
}

/// Every single-bit flip of a real packet either decodes (payload bits
/// still form valid codes — the differencing bounds the damage) or errors
/// cleanly; the process never panics and never produces non-finite
/// samples.
#[test]
fn exhaustive_single_bit_flips_on_one_packet() {
    let config = SystemConfig::builder().packet_len(256).levels(4).build().unwrap();
    let samples = stream(8.0);
    let (mut enc, _) = pair(&config);
    let wire = enc.encode_packet(&samples[..256]).unwrap();
    let bytes = wire.to_bytes();

    for bit in 0..bytes.len() * 8 {
        let mut corrupted = bytes.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        let Ok(parsed) = EncodedPacket::from_bytes(&corrupted) else {
            continue; // framing rejected it — fine
        };
        // Fresh decoder per flip so state cannot leak between cases.
        let (_, mut dec) = pair(&config);
        if let Ok(out) = dec.decode_packet(&parsed) {
            assert!(
                out.samples.iter().all(|v| v.is_finite()),
                "bit {bit} produced non-finite output"
            );
        }
    }
}

/// Replaying an old packet after newer state is *accepted* by design
/// (delta packets are stateful but self-consistent); what must never
/// happen is an out-of-bounds or panic. Verify a shuffled stream is
/// handled.
#[test]
fn reordered_stream_never_panics() {
    let config = SystemConfig::builder().reference_interval(4).build().unwrap();
    let samples = stream(24.0);
    let (mut enc, mut dec) = pair(&config);
    let wires: Vec<EncodedPacket> = packetize(&samples, 512)
        .map(|p| enc.encode_packet(p).unwrap())
        .collect();
    // Deliver in a fixed adversarial order.
    let order = [3usize, 0, 7, 1, 2, 6, 4, 5, 8, 9];
    for &i in order.iter().filter(|&&i| i < wires.len()) {
        let _ = dec.decode_packet(&wires[i]); // may Err; must not panic
    }
}

/// Sustained loss at a high BER with periodic references: the decoder
/// recovers after every reference and total goodput matches the channel
/// statistics within tolerance.
#[test]
fn goodput_tracks_channel_statistics() {
    let config = SystemConfig::builder().reference_interval(4).build().unwrap();
    let samples = stream(120.0); // 60 packets
    let (mut enc, mut dec) = pair(&config);
    let mut channel = ChannelModel::new(2e-4, 99);

    let mut sent = 0;
    let mut delivered = 0;
    let mut decoded = 0;
    for packet in packetize(&samples, 512) {
        let wire = enc.encode_packet(packet).unwrap();
        sent += 1;
        if !channel.transmit(wire.framed_bytes()) {
            dec.desynchronize();
            continue;
        }
        delivered += 1;
        if dec.decode_packet(&wire).is_ok() {
            decoded += 1;
        }
    }
    assert!(sent >= 55);
    // With reference interval 4, at most 3 delivered deltas are rejected
    // per loss event.
    let dropped = sent - delivered;
    assert!(
        delivered - decoded <= dropped * 3,
        "rejections ({}) exceed the resync bound for {dropped} losses",
        delivered - decoded
    );
    // And after the stream, a fresh reference always restores decode.
    let (mut enc2, _) = pair(&config);
    let wire = enc2.encode_packet(&samples[..512]).unwrap();
    assert!(dec.decode_packet(&wire).is_ok());
}

/// Extreme inputs: rails-saturated ADC codes and alternating full-scale
/// samples survive the full pipeline with finite output.
#[test]
fn full_scale_inputs_survive() {
    let config = SystemConfig::paper_default();
    let (mut enc, mut dec) = pair(&config);
    let rails: Vec<i16> = (0..512)
        .map(|i| if i % 2 == 0 { 1023 } else { -1024 })
        .collect();
    let wire = enc.encode_packet(&rails).unwrap();
    let out = dec.decode_packet(&wire).unwrap();
    assert!(out.samples.iter().all(|v| v.is_finite()));

    let dc: Vec<i16> = vec![1023; 512];
    let wire = enc.encode_packet(&dc).unwrap();
    let out = dec.decode_packet(&wire).unwrap();
    assert!(out.samples.iter().all(|v| v.is_finite()));
}

/// Two-lead wire frames for `streams` synthetic patients, `seconds` of
/// signal each.
fn fleet_traffic(
    config: &SystemConfig,
    streams: usize,
    seconds: f64,
    channels: usize,
) -> Vec<Vec<Vec<u8>>> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: streams,
        duration_s: seconds,
        ..DatabaseConfig::default()
    });
    let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let n = config.packet_len();
    (0..db.len())
        .map(|i| {
            let record = db.record(i);
            let adc = record.adc();
            let lead = |c: usize| -> Vec<i16> {
                resample_360_to_256(&record.signal_mv(c))
                    .iter()
                    .map(|&v| adc.to_signed(adc.quantize(v)))
                    .collect()
            };
            let (lead0, lead1) = (lead(0), lead(1));
            let mut enc =
                MultiChannelEncoder::new(config, Arc::clone(&cb), channels).unwrap();
            let mut frames = Vec::new();
            for w in 0..lead0.len().min(lead1.len()) / n {
                let leads = [&lead0[w * n..(w + 1) * n], &lead1[w * n..(w + 1) * n]];
                for packet in enc.encode_frame(&leads[..channels]).unwrap() {
                    frames.push(packet.to_bytes());
                }
            }
            frames
        })
        .collect()
}

/// Pushes every stream through its own seeded [`LossyLink`]; returns the
/// mangled traffic and the total frames the links actually delivered.
fn mangle_traffic(clean: &[Vec<Vec<u8>>], spec: FaultSpec, seed: u64) -> (Vec<Vec<Vec<u8>>>, u64) {
    let mut delivered = 0u64;
    let traffic = clean
        .iter()
        .enumerate()
        .map(|(i, frames)| {
            let mut link = LossyLink::new(spec, seed.wrapping_add(i as u64 * 0x9E37));
            let mut out = Vec::new();
            for frame in frames {
                link.offer(frame, &mut out);
            }
            link.flush(&mut out);
            delivered += out.len() as u64;
            out.into_iter().map(|d| d.bytes).collect()
        })
        .collect();
    (traffic, delivered)
}

/// Runs the wire fleet and checks the invariants every chaos test shares:
/// per-lane strictly increasing window indices, emitted == delivered()
/// accounting, and the ingest partition identity. Returns the fault stats
/// and the per-slot outcomes.
fn run_chaos_fleet(
    config: &SystemConfig,
    traffic: &[Vec<Vec<u8>>],
    fleet: &FleetConfig,
    registry: &TelemetryRegistry,
) -> (FaultStats, Vec<(usize, u8, PacketOutcome)>) {
    let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let last_index = Mutex::new(HashMap::<(usize, u8), u64>::new());
    let emitted = Mutex::new(Vec::new());
    let report = run_fleet_wire::<f32, _>(
        config,
        cb,
        traffic,
        SolverPolicy::default(),
        fleet,
        registry,
        |p| {
            let mut last = last_index.lock().unwrap();
            if let Some(&prev) = last.get(&(p.stream, p.channel)) {
                assert!(
                    p.packet.index > prev,
                    "stream {} lead {}: window {} after {}",
                    p.stream,
                    p.channel,
                    p.packet.index,
                    prev
                );
            }
            last.insert((p.stream, p.channel), p.packet.index);
            assert_eq!(
                p.packet.concealed,
                !matches!(p.outcome, PacketOutcome::Decoded),
                "concealed flag must match the outcome"
            );
            emitted.lock().unwrap().push((p.stream, p.channel, p.outcome));
        },
    )
    .expect("chaos must degrade, not fail the run");

    let f = report.faults;
    let emitted = emitted.into_inner().unwrap();
    assert_eq!(emitted.len() as u64, f.delivered(), "emission accounting");
    assert_eq!(
        f.frames,
        f.frame_rejects + f.duplicates + f.late + f.decoded + f.concealed_desync + f.quarantined,
        "every ingested frame lands in exactly one bucket: {f:?}"
    );
    (f, emitted)
}

/// Fleet chaos, clean payloads: drops, reordering and duplication only.
/// Nothing is corrupt, so nothing may be rejected or quarantined — every
/// fault is healed (reorder, dup) or concealed (drop), in order.
#[test]
fn fleet_chaos_drops_reorder_duplicates() {
    let config = SystemConfig::paper_default();
    let clean = fleet_traffic(&config, 8, 16.0, 2);
    let spec = FaultSpec {
        drop: 0.08,
        duplicate: 0.03,
        reorder: 0.05,
        truncate: 0.0,
        gilbert_elliott: None,
    };
    let (traffic, link_delivered) = mangle_traffic(&clean, spec, 0xFA11);
    let fleet = FleetConfig { workers: 4, warm_start: true, ..FleetConfig::default() };
    let (f, _) =
        run_chaos_fleet(&config, &traffic, &fleet, &TelemetryRegistry::disabled());

    assert_eq!(f.frames, link_delivered);
    assert_eq!(f.frame_rejects, 0, "clean payloads must never be rejected");
    assert_eq!(f.quarantined, 0, "clean payloads must never be quarantined");
    assert!(f.decoded > 0);
    assert!(
        f.concealed_loss > 0,
        "an 8 % drop rate over {link_delivered} frames must conceal something"
    );
}

/// Fleet chaos under the full hostile profile: burst bit errors on top of
/// drops, reordering, duplication and truncation. Corrupt frames must be
/// stopped at the CRC and surface as rejects + concealments — never as
/// panics or out-of-order output.
#[test]
fn fleet_chaos_gilbert_elliott_burst_errors() {
    let config = SystemConfig::paper_default();
    let clean = fleet_traffic(&config, 8, 16.0, 2);
    let spec = FaultSpec {
        drop: 0.05,
        duplicate: 0.01,
        reorder: 0.02,
        truncate: 0.02,
        gilbert_elliott: Some(GilbertElliottParams::for_mean_ber(2e-3)),
    };
    let (traffic, link_delivered) = mangle_traffic(&clean, spec, 0xB52);
    let fleet = FleetConfig { workers: 4, warm_start: true, ..FleetConfig::default() };
    let registry = TelemetryRegistry::new();
    let (f, _) = run_chaos_fleet(&config, &traffic, &fleet, &registry);

    assert_eq!(f.frames, link_delivered);
    assert!(f.frame_rejects > 0, "burst errors at BER 2e-3 must trip the CRC");
    assert!(f.decoded > 0, "most traffic still decodes");
    assert!(f.concealed() > 0);
    // The registry saw the same story the report tells.
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.fault(FaultKind::FrameRejected), f.frame_rejects);
    assert_eq!(snapshot.fault(FaultKind::ConcealedLoss), f.concealed_loss);
}

/// A worker panic mid-decode is contained by the supervisor: the packet is
/// quarantined, the worker restarts with a fresh workspace, the lane keeps
/// emitting, and the event is visible in both the report and telemetry.
#[test]
fn worker_panic_recovered_by_supervisor() {
    let config = SystemConfig::paper_default();
    // Two streams on two workers: stream affinity (`worker = stream mod
    // M`) isolates the blast radius to worker 1, and panicking on stream
    // 1's *last* frame makes the run fully deterministic — a mid-stream
    // restart would legitimately desync whatever shares the worker.
    let traffic = fleet_traffic(&config, 2, 8.0, 1);
    let last_seq = traffic[1].len() as u64 - 1; // single lane: frame position == wire seq
    let fleet = FleetConfig {
        workers: 2,
        chaos_panic: Some((1, last_seq)),
        ..FleetConfig::default()
    };
    let registry = TelemetryRegistry::new();
    let (f, emitted) = run_chaos_fleet(&config, &traffic, &fleet, &registry);

    assert_eq!(f.worker_restarts, 1);
    assert_eq!(f.quarantined, 1);
    assert_eq!(f.frames, f.decoded + f.quarantined, "clean wire: no other faults");
    // The poisoned slot is emitted as a flagged placeholder on stream 1;
    // everything else decodes untouched.
    let poisoned: Vec<_> = emitted
        .iter()
        .filter(|(s, _, o)| *s == 1 && matches!(o, PacketOutcome::Quarantined))
        .collect();
    assert_eq!(poisoned.len(), 1);
    assert!(emitted
        .iter()
        .all(|(_, _, o)| !matches!(o, PacketOutcome::Concealed(_))));
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.fault(FaultKind::WorkerRestart), 1);
    assert_eq!(snapshot.fault(FaultKind::Quarantined), 1);
}

/// A lane that panics while being staged into an MMV batch must not
/// poison its batchmates: the offender is quarantined and the worker's
/// decoders restart, but every other lane staged into that same batch
/// still emits a decoded window — their solve blocks were already copied
/// into the batch workspace, and lanes staged after the restart rebuild
/// their decoders lazily.
#[test]
fn batched_lane_panic_does_not_poison_batchmates() {
    let config = SystemConfig::paper_default();
    // One window per stream (2 s of signal), so every frame is a DPCM
    // reference: whatever order the four lanes land in the batch relative
    // to the panic, the post-restart decoders need no prior state and the
    // outcome is fully deterministic.
    let traffic = fleet_traffic(&config, 4, 2.0, 1);
    for frames in &traffic {
        assert_eq!(frames.len(), 1, "expected exactly one window per stream");
    }
    let fleet = FleetConfig {
        workers: 1,
        batch: 4,
        chaos_panic: Some((2, 0)),
        ..FleetConfig::default()
    };
    let registry = TelemetryRegistry::new();
    let (f, emitted) = run_chaos_fleet(&config, &traffic, &fleet, &registry);

    assert_eq!(f.worker_restarts, 1);
    assert_eq!(f.quarantined, 1);
    assert_eq!(f.decoded, 3, "all batchmates of the poisoned lane must decode");
    for (stream, _, outcome) in &emitted {
        if *stream == 2 {
            assert!(
                matches!(outcome, PacketOutcome::Quarantined),
                "poisoned lane must surface as quarantined, got {outcome:?}"
            );
        } else {
            assert!(
                matches!(outcome, PacketOutcome::Decoded),
                "stream {stream} poisoned by a batchmate: {outcome:?}"
            );
        }
    }
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.fault(FaultKind::WorkerRestart), 1);
    assert_eq!(snapshot.fault(FaultKind::Quarantined), 1);
}

/// A decoder built with a different reference interval than the encoder
/// still never panics (it may reject or mis-track — configuration
/// mismatch is an operator error the system must survive).
#[test]
fn config_mismatch_is_survivable() {
    let enc_cfg = SystemConfig::builder().reference_interval(4).build().unwrap();
    let dec_cfg = SystemConfig::builder().reference_interval(7).build().unwrap();
    let cb = Arc::new(uniform_codebook(512).unwrap());
    let mut enc = Encoder::new(&enc_cfg, Arc::clone(&cb)).unwrap();
    let mut dec: Decoder<f32> = Decoder::new(&dec_cfg, cb, SolverPolicy::default()).unwrap();
    let samples = stream(16.0);
    for packet in packetize(&samples, 512) {
        let wire = enc.encode_packet(packet).unwrap();
        let _ = dec.decode_packet(&wire);
    }
}
