//! Failure injection: the decoder must degrade with structured errors —
//! never panics, never silently wrong state — under corruption, loss and
//! adversarial inputs.

use cs_ecg_monitor::platform::ChannelModel;
use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::system::EncodedPacket;
use std::sync::Arc;

fn stream(seconds: f64) -> Vec<i16> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: seconds,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256
        .iter()
        .map(|&v| adc.to_signed(adc.quantize(v)))
        .collect()
}

fn pair(config: &SystemConfig) -> (Encoder, Decoder<f32>) {
    let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    (
        Encoder::new(config, Arc::clone(&cb)).unwrap(),
        Decoder::new(config, cb, SolverPolicy::default()).unwrap(),
    )
}

/// Every single-bit flip of a real packet either decodes (payload bits
/// still form valid codes — the differencing bounds the damage) or errors
/// cleanly; the process never panics and never produces non-finite
/// samples.
#[test]
fn exhaustive_single_bit_flips_on_one_packet() {
    let config = SystemConfig::builder().packet_len(256).levels(4).build().unwrap();
    let samples = stream(8.0);
    let (mut enc, _) = pair(&config);
    let wire = enc.encode_packet(&samples[..256]).unwrap();
    let bytes = wire.to_bytes();

    for bit in 0..bytes.len() * 8 {
        let mut corrupted = bytes.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        let Ok(parsed) = EncodedPacket::from_bytes(&corrupted) else {
            continue; // framing rejected it — fine
        };
        // Fresh decoder per flip so state cannot leak between cases.
        let (_, mut dec) = pair(&config);
        if let Ok(out) = dec.decode_packet(&parsed) {
            assert!(
                out.samples.iter().all(|v| v.is_finite()),
                "bit {bit} produced non-finite output"
            );
        }
    }
}

/// Replaying an old packet after newer state is *accepted* by design
/// (delta packets are stateful but self-consistent); what must never
/// happen is an out-of-bounds or panic. Verify a shuffled stream is
/// handled.
#[test]
fn reordered_stream_never_panics() {
    let config = SystemConfig::builder().reference_interval(4).build().unwrap();
    let samples = stream(24.0);
    let (mut enc, mut dec) = pair(&config);
    let wires: Vec<EncodedPacket> = packetize(&samples, 512)
        .map(|p| enc.encode_packet(p).unwrap())
        .collect();
    // Deliver in a fixed adversarial order.
    let order = [3usize, 0, 7, 1, 2, 6, 4, 5, 8, 9];
    for &i in order.iter().filter(|&&i| i < wires.len()) {
        let _ = dec.decode_packet(&wires[i]); // may Err; must not panic
    }
}

/// Sustained loss at a high BER with periodic references: the decoder
/// recovers after every reference and total goodput matches the channel
/// statistics within tolerance.
#[test]
fn goodput_tracks_channel_statistics() {
    let config = SystemConfig::builder().reference_interval(4).build().unwrap();
    let samples = stream(120.0); // 60 packets
    let (mut enc, mut dec) = pair(&config);
    let mut channel = ChannelModel::new(2e-4, 99);

    let mut sent = 0;
    let mut delivered = 0;
    let mut decoded = 0;
    for packet in packetize(&samples, 512) {
        let wire = enc.encode_packet(packet).unwrap();
        sent += 1;
        if !channel.transmit(wire.framed_bytes()) {
            dec.desynchronize();
            continue;
        }
        delivered += 1;
        if dec.decode_packet(&wire).is_ok() {
            decoded += 1;
        }
    }
    assert!(sent >= 55);
    // With reference interval 4, at most 3 delivered deltas are rejected
    // per loss event.
    let dropped = sent - delivered;
    assert!(
        delivered - decoded <= dropped * 3,
        "rejections ({}) exceed the resync bound for {dropped} losses",
        delivered - decoded
    );
    // And after the stream, a fresh reference always restores decode.
    let (mut enc2, _) = pair(&config);
    let wire = enc2.encode_packet(&samples[..512]).unwrap();
    assert!(dec.decode_packet(&wire).is_ok());
}

/// Extreme inputs: rails-saturated ADC codes and alternating full-scale
/// samples survive the full pipeline with finite output.
#[test]
fn full_scale_inputs_survive() {
    let config = SystemConfig::paper_default();
    let (mut enc, mut dec) = pair(&config);
    let rails: Vec<i16> = (0..512)
        .map(|i| if i % 2 == 0 { 1023 } else { -1024 })
        .collect();
    let wire = enc.encode_packet(&rails).unwrap();
    let out = dec.decode_packet(&wire).unwrap();
    assert!(out.samples.iter().all(|v| v.is_finite()));

    let dc: Vec<i16> = vec![1023; 512];
    let wire = enc.encode_packet(&dc).unwrap();
    let out = dec.decode_packet(&wire).unwrap();
    assert!(out.samples.iter().all(|v| v.is_finite()));
}

/// A decoder built with a different reference interval than the encoder
/// still never panics (it may reject or mis-track — configuration
/// mismatch is an operator error the system must survive).
#[test]
fn config_mismatch_is_survivable() {
    let enc_cfg = SystemConfig::builder().reference_interval(4).build().unwrap();
    let dec_cfg = SystemConfig::builder().reference_interval(7).build().unwrap();
    let cb = Arc::new(uniform_codebook(512).unwrap());
    let mut enc = Encoder::new(&enc_cfg, Arc::clone(&cb)).unwrap();
    let mut dec: Decoder<f32> = Decoder::new(&dec_cfg, cb, SolverPolicy::default()).unwrap();
    let samples = stream(16.0);
    for packet in packetize(&samples, 512) {
        let wire = enc.encode_packet(packet).unwrap();
        let _ = dec.decode_packet(&wire);
    }
}
