//! End-to-end observability: the `*_observed` pipelines must populate a
//! live telemetry registry with exactly one span per stage per packet,
//! per-worker counters that sum to the packet count, and a solve trace
//! per decode — while changing nothing about the reconstruction itself.

use cs_ecg_monitor::prelude::*;
use std::sync::Arc;

const N: usize = 512;

fn ecg_like(npackets: usize, phase: f64) -> Vec<i16> {
    (0..npackets * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

fn setup() -> (SystemConfig, Arc<Codebook>) {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    (config, codebook)
}

/// A fleet run against a live registry records every pipeline stage the
/// expected number of times and journals one solve trace per packet.
#[test]
fn observed_fleet_populates_every_stage() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..3).map(|s| ecg_like(2, s as f64 * 0.03)).collect();
    let streams: Vec<FleetStream<'_>> =
        inputs.iter().map(|i| FleetStream::single(i)).collect();
    let packets = 6u64; // 3 streams × 2 packets × 1 lead

    let registry = TelemetryRegistry::new();
    let fleet = FleetConfig { workers: 2, ..FleetConfig::default() };
    let report = run_fleet_observed::<f32, _>(
        &config,
        Arc::clone(&codebook),
        &streams,
        SolverPolicy::default(),
        &fleet,
        &registry,
        |_| {},
    )
    .unwrap();
    assert_eq!(report.packets_decoded as u64, packets);

    let snapshot = registry.snapshot();
    for stage in Stage::ALL {
        // IngestValidate and Concealment belong to the wire-feed path
        // (`run_fleet_wire`); the archive stages only fire when a durable
        // sink or replay source is attached; BatchSolve and BatchLinger
        // fire only on the MMV path (`FleetConfig::batch > 1`, pinned
        // below). The sequential in-process fleet never enters any of
        // them.
        if matches!(
            stage,
            Stage::IngestValidate
                | Stage::Concealment
                | Stage::ArchiveAppend
                | Stage::ArchiveReplay
                | Stage::BatchSolve
                | Stage::BatchLinger
        ) {
            assert_eq!(snapshot.stage(stage).count(), 0, "stage {stage} is not in-process");
            continue;
        }
        assert_eq!(
            snapshot.stage(stage).count(),
            packets,
            "stage {stage} should record once per packet"
        );
        assert!(snapshot.stage(stage).quantile(0.50) >= snapshot.stage(stage).min_ns());
        assert!(snapshot.stage(stage).quantile(0.99) <= snapshot.stage(stage).max_ns());
    }

    let per_worker = registry.worker_packets(report.workers);
    assert_eq!(per_worker.iter().sum::<u64>(), packets);

    let traces = registry.journal().drain();
    assert_eq!(traces.len(), packets as usize);
    assert_eq!(registry.journal().pushed(), packets);
    assert_eq!(registry.journal().dropped(), 0);
    for trace in &traces {
        assert!(trace.iterations > 0);
        assert!(trace.solve_ns > 0);
        assert!(trace.residual.is_finite());
        assert!(!trace.warm_started, "cold fleet must not warm-start");
    }

    // Trace context rode every packet: the collector fed the SLO engine
    // one emission per packet, per patient, and the e2e histograms and
    // freshness watermarks are live.
    let slo = registry.slo_snapshot();
    assert_eq!(slo.patients.len(), 3, "one SLO slot per patient");
    for p in &slo.patients {
        assert_eq!(p.emits, 2, "patient {} emissions", p.patient);
        assert_eq!(p.deadline_misses, 0, "in-process decode beats a 2 s deadline");
        assert_eq!(p.health, HealthState::Healthy);
        assert_eq!(p.lanes.len(), 1, "single-lead stream");
        assert_eq!(p.lanes[0].newest_seq, 1, "two packets → newest seq 1");
    }
    assert_eq!(registry.e2e(0).snapshot().count(), 2);

    let scrape = registry.prometheus();
    assert!(scrape.contains("cs_stage_latency_ns_bucket"));
    assert!(scrape.contains("stage=\"fista_solve\""));
    assert!(scrape.contains("stage=\"queue_wait\""));
    assert!(scrape.contains("stage=\"emit_deliver\""));
    assert!(scrape.contains("cs_worker_packets_total"));
    assert!(scrape.contains("cs_e2e_latency_seconds_bucket{patient=\"0\""));
    assert!(scrape.contains("cs_patient_health{patient=\"0\",state=\"healthy\"} 1"));
    let line = registry.json_line();
    assert!(line.contains("\"stages\"") && !line.contains('\n'));
    assert!(line.contains("\"slo\":[") && line.contains("\"health\":\"healthy\""));
}

/// A batched fleet run solves through `Stage::BatchSolve` (one span per
/// fused sweep, never the per-lane `FistaSolve` stage) and accounts for
/// every packet exactly once in the `cs_batch_occupancy` histogram.
#[test]
fn observed_batched_fleet_records_batch_spans() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..3).map(|s| ecg_like(2, s as f64 * 0.03)).collect();
    let streams: Vec<FleetStream<'_>> =
        inputs.iter().map(|i| FleetStream::single(i)).collect();
    let packets = 6u64;

    let registry = TelemetryRegistry::new();
    let fleet = FleetConfig { batch: 3, ..FleetConfig::default() };
    let report = run_fleet_observed::<f32, _>(
        &config,
        Arc::clone(&codebook),
        &streams,
        SolverPolicy::default(),
        &fleet,
        &registry,
        |_| {},
    )
    .unwrap();
    assert_eq!(report.packets_decoded as u64, packets);

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.stage(Stage::FistaSolve).count(), 0, "MMV path bypasses FistaSolve");
    let sweeps = snapshot.stage(Stage::BatchSolve).count();
    assert!(sweeps >= 1, "at least one fused sweep");
    // Realized widths depend on arrival interleaving, but the histogram
    // must hold one entry per sweep and sum to the packet count: every
    // packet solved in exactly one batch.
    let occupancy = registry.batch_occupancy().snapshot();
    assert_eq!(occupancy.count(), sweeps);
    assert_eq!(occupancy.sum_ns(), packets);
    assert!(registry.prometheus().contains("cs_batch_occupancy_count"));
    // Trace context survives the batched path: queue wait is measured at
    // every receive, and the collector still emits one SLO record per
    // packet (linger rounds depend on arrival interleaving, so only the
    // per-packet invariants are pinned).
    assert_eq!(snapshot.stage(Stage::QueueWait).count(), packets);
    assert_eq!(snapshot.stage(Stage::EmitDeliver).count(), packets);
    let slo = registry.slo_snapshot();
    assert_eq!(slo.patients.iter().map(|p| p.emits).sum::<u64>(), packets);
}

/// Observation must not perturb the numbers: the observed stream decode
/// is bit-exact against the unobserved default path.
#[test]
fn observation_does_not_change_reconstruction() {
    let (config, codebook) = setup();
    let samples = ecg_like(3, 0.0);

    let mut plain = Vec::new();
    run_streaming::<f64, _>(
        &config,
        Arc::clone(&codebook),
        &samples,
        SolverPolicy::default(),
        |p| plain.push(p.samples.clone()),
    )
    .unwrap();

    let registry = TelemetryRegistry::new();
    let mut observed = Vec::new();
    run_streaming_observed::<f64, _>(
        &config,
        codebook,
        &samples,
        SolverPolicy::default(),
        &registry,
        |p| observed.push(p.samples.clone()),
    )
    .unwrap();

    assert_eq!(plain, observed);
    assert_eq!(
        registry.snapshot().stage(Stage::FistaSolve).count(),
        3,
        "three packets solved under observation"
    );
}

/// The default (unobserved) pipelines route through the process-wide
/// disabled registry, which must stay empty no matter how much traffic
/// passes through it.
#[test]
fn disabled_registry_records_nothing() {
    let (config, codebook) = setup();
    let samples = ecg_like(2, 0.01);
    run_streaming::<f32, _>(&config, codebook, &samples, SolverPolicy::default(), |_| {})
        .unwrap();

    let disabled = TelemetryRegistry::disabled();
    assert!(!disabled.is_enabled());
    let snapshot = disabled.snapshot();
    for stage in Stage::ALL {
        assert_eq!(snapshot.stage(stage).count(), 0);
    }
    assert_eq!(snapshot.journal_pushed, 0);
    assert_eq!(snapshot.worker_packets.iter().sum::<u64>(), 0);
}
