//! Cross-implementation equivalence tests: every fast path in the
//! workspace has a slow, obviously-correct counterpart, and these tests
//! pin them together.

use cs_ecg_monitor::dsp::wavelet::{Dwt, Wavelet};
use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::recovery::{
    fista_warm_batch_ws, fista_warm_ws, lambda_max, BatchWorkspace, DenseOperator,
    FistaWorkspace, LinearOperator,
};
use cs_ecg_monitor::sensing::MotePrng;
use proptest::prelude::*;

/// The matrix-free periodized DWT must agree with an explicitly
/// materialized orthogonal matrix.
#[test]
fn dwt_matches_materialized_matrix() {
    let n = 64;
    let wavelet = Wavelet::daubechies(3).unwrap();
    let dwt: Dwt<f64> = Dwt::new(&wavelet, n, 3).unwrap();

    // Materialize W row by row: row k = analyze(e_k)ᵀ ... actually
    // column k of the analysis matrix is analyze(e_k).
    let mut w = vec![vec![0.0_f64; n]; n];
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = dwt.analyze(&e);
        for i in 0..n {
            w[i][j] = col[i];
        }
    }

    // 1. The matrix is orthogonal: WᵀW = I.
    for a in 0..n {
        for b in 0..n {
            let dot: f64 = (0..n).map(|i| w[i][a] * w[i][b]).sum();
            let expect = if a == b { 1.0 } else { 0.0 };
            assert!((dot - expect).abs() < 1e-10, "WᵀW[{a}][{b}] = {dot}");
        }
    }

    // 2. Dense multiply equals the fast transform on random input.
    let mut rng = MotePrng::new(42);
    let x: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    let fast = dwt.analyze(&x);
    for i in 0..n {
        let dense: f64 = (0..n).map(|j| w[i][j] * x[j]).sum();
        assert!((dense - fast[i]).abs() < 1e-10);
    }

    // 3. Synthesis equals the transpose multiply.
    let c: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    let slow_synth: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| w[j][i] * c[j]).sum())
        .collect();
    let fast_synth = dwt.synthesize(&c);
    for i in 0..n {
        assert!((slow_synth[i] - fast_synth[i]).abs() < 1e-10);
    }
}

/// The sparse binary apply must agree with its dense materialization, and
/// the adjoint must be the exact transpose.
#[test]
fn sparse_sensing_matches_dense_transpose() {
    let phi = SparseBinarySensing::new(48, 96, 6, 9).unwrap();
    let dense: Vec<f64> = Sensing::<f64>::to_dense(&phi);
    let mut rng = MotePrng::new(7);
    let x: Vec<f64> = (0..96).map(|_| rng.next_gaussian()).collect();
    let y: Vec<f64> = phi.apply(x.as_slice());
    for i in 0..48 {
        let manual: f64 = (0..96).map(|j| dense[i * 96 + j] * x[j]).sum();
        assert!((manual - y[i]).abs() < 1e-12);
    }
    let r: Vec<f64> = (0..48).map(|_| rng.next_gaussian()).collect();
    let bt: Vec<f64> = phi.adjoint(r.as_slice());
    for j in 0..96 {
        let manual: f64 = (0..48).map(|i| dense[i * 96 + j] * r[i]).sum();
        assert!((manual - bt[j]).abs() < 1e-12);
    }
}

/// Huffman code lengths from package–merge must be *optimal* among all
/// prefix codes for small alphabets — verified against brute force over
/// every admissible length assignment.
#[test]
fn package_merge_is_optimal_for_small_alphabets() {
    // All Kraft-complete length multisets for 4 symbols with cap 16 that
    // are achievable by a prefix code: enumerate lengths 1..=4 per symbol
    // and filter by Kraft equality.
    let count_sets = [
        [100u64, 50, 20, 5],
        [1, 1, 1, 1],
        [1000, 1, 1, 1],
        [7, 7, 6, 1],
    ];
    for counts in count_sets {
        let cb = Codebook::from_counts(&counts, 4).unwrap();
        let cost: u64 = counts
            .iter()
            .zip(cb.lengths())
            .map(|(&c, &l)| c * l as u64)
            .sum();
        // Brute force.
        let mut best = u64::MAX;
        for l0 in 1..=4u8 {
            for l1 in 1..=4u8 {
                for l2 in 1..=4u8 {
                    for l3 in 1..=4u8 {
                        let lens = [l0, l1, l2, l3];
                        let kraft: u64 =
                            lens.iter().map(|&l| 1u64 << (16 - l)).sum();
                        if kraft != 1 << 16 {
                            continue;
                        }
                        let c: u64 = counts
                            .iter()
                            .zip(&lens)
                            .map(|(&cnt, &l)| cnt * l as u64)
                            .sum();
                        best = best.min(c);
                    }
                }
            }
        }
        assert_eq!(cost, best, "suboptimal code for {counts:?}");
    }
}

/// The matrix-free composed operator equals its dense materialization
/// inside the solver: FISTA run on both must produce the same iterates.
#[test]
fn fista_identical_on_matrix_free_and_dense() {
    use cs_ecg_monitor::recovery::{fista, lambda_max, ShrinkageConfig};

    let wavelet = Wavelet::daubechies(4).unwrap();
    let dwt: Dwt<f64> = Dwt::new(&wavelet, 128, 3).unwrap();
    let phi = SparseBinarySensing::new(64, 128, 8, 3).unwrap();
    let op = SynthesisOperator::new(&phi, &dwt);
    let dense = DenseOperator::materialize(&op, KernelMode::Unrolled4);

    let x: Vec<f64> = (0..128)
        .map(|i| (i as f64 * 0.17).sin() * 100.0)
        .collect();
    let y: Vec<f64> = phi.apply(x.as_slice());
    let cfg = ShrinkageConfig {
        lambda: 0.01 * lambda_max(&op, &y),
        max_iterations: 120,
        tolerance: 0.0,
        residual_tolerance: 0.0,
        kernel: KernelMode::Unrolled4,
        record_objective: false,
    };
    // Same explicit Lipschitz constant so the trajectories match exactly.
    let a = fista(&op, &y, &cfg, Some(40.0));
    let b = fista(&dense, &y, &cfg, Some(40.0));
    for (u, v) in a.solution.iter().zip(&b.solution) {
        assert!((u - v).abs() < 1e-7, "{u} vs {v}");
    }
}

/// Builds `k` lanes of CS measurements (plus warm seeds on odd lanes) for
/// the production matrix-free geometry, at either precision.
#[allow(clippy::type_complexity)]
fn batch_lanes<T: cs_ecg_monitor::dsp::Real>(
    phi: &SparseBinarySensing,
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<(Vec<T>, Option<Vec<T>>)> {
    let mut rng = MotePrng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..k)
        .map(|lane| {
            let x: Vec<T> = (0..n)
                .map(|_| T::from_f64(rng.next_gaussian() * 50.0))
                .collect();
            let y: Vec<T> = phi.apply(x.as_slice());
            // Odd lanes warm-start from a small pseudo-previous-window
            // iterate, so the harness covers warm recycling too.
            let warm = (lane % 2 == 1).then(|| {
                (0..n)
                    .map(|_| T::from_f64(rng.next_gaussian() * 0.05))
                    .collect()
            });
            (y, warm)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched MMV FISTA must reproduce the sequential solver **bit-for-bit**,
    /// lane by lane: same solution bits, same iteration count, same
    /// convergence flag, same residual norm — across random sensing seeds,
    /// geometries, warm seeds, and K ∈ {1, 2, 4, 8}. K = 1 runs exactly the
    /// sequential operation order, so the batch of one *is* the sequential
    /// path.
    #[test]
    fn batched_fista_bitwise_matches_sequential_f64(
        seed in any::<u64>(),
        k_idx in 0_usize..4,
        small in any::<bool>(),
    ) {
        let k = [1_usize, 2, 4, 8][k_idx];
        let n = if small { 64 } else { 128 };
        let m = n / 2;
        let wavelet = Wavelet::daubechies(4).unwrap();
        let dwt: Dwt<f64> = Dwt::new(&wavelet, n, 3).unwrap();
        let phi = SparseBinarySensing::new(m, n, 6, seed).unwrap();
        let op = SynthesisOperator::new(&phi, &dwt);
        let lanes = batch_lanes::<f64>(&phi, n, k, seed);
        // Data-adaptive λ per lane, like the production decoder.
        let configs: Vec<ShrinkageConfig<f64>> = lanes
            .iter()
            .map(|(y, _)| ShrinkageConfig {
                lambda: 0.02 * lambda_max(&op, y),
                max_iterations: 80,
                tolerance: 1e-4,
                ..ShrinkageConfig::new(0.0)
            })
            .collect();

        let mut bws = BatchWorkspace::for_operator(&op, k);
        bws.begin(op.rows(), op.cols());
        for (y, warm) in &lanes {
            bws.stage_lane(y, warm.as_deref());
        }
        fista_warm_batch_ws(&op, &configs, None, Some(40.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        for (lane, (y, warm)) in lanes.iter().enumerate() {
            let seq = fista_warm_ws(&op, y, &configs[lane], Some(40.0), warm.as_deref(), &mut ws);
            prop_assert_eq!(bws.iterations(lane), seq.iterations, "lane {} iterations", lane);
            prop_assert_eq!(bws.converged(lane), seq.converged, "lane {} converged", lane);
            prop_assert_eq!(
                bws.residual_norm(lane).to_bits(),
                seq.residual_norm.to_bits(),
                "lane {} residual norm", lane
            );
            for (i, (a, b)) in bws.solution(lane).iter().zip(&seq.solution).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "K={} lane {} coeff {}", k, lane, i);
            }
            ws.recycle_solution(seq.solution);
        }
    }
}

/// The f32 batched path is bit-identical too — there is no divergence to
/// bound: batching never reassociates a reduction across lanes (each
/// output element's gather, threshold, and momentum arithmetic is the
/// same instruction sequence on the same lane-contiguous data the scalar
/// solver uses), so the usual MMV drift source — fused cross-column
/// accumulation — structurally cannot occur at either precision.
#[test]
fn batched_fista_bitwise_matches_sequential_f32() {
    for (k, seed) in [(1_usize, 11_u64), (2, 22), (4, 33), (8, 44)] {
        let n = 128;
        let wavelet = Wavelet::daubechies(4).unwrap();
        let dwt: Dwt<f32> = Dwt::new(&wavelet, n, 3).unwrap();
        let phi = SparseBinarySensing::new(64, n, 6, seed).unwrap();
        let op = SynthesisOperator::new(&phi, &dwt);
        let lanes = batch_lanes::<f32>(&phi, n, k, seed);
        let configs: Vec<ShrinkageConfig<f32>> = lanes
            .iter()
            .map(|(y, _)| ShrinkageConfig {
                lambda: 0.02 * lambda_max(&op, y),
                max_iterations: 80,
                tolerance: 1e-3,
                ..ShrinkageConfig::new(0.0)
            })
            .collect();

        let mut bws = BatchWorkspace::for_operator(&op, k);
        bws.begin(op.rows(), op.cols());
        for (y, warm) in &lanes {
            bws.stage_lane(y, warm.as_deref());
        }
        fista_warm_batch_ws(&op, &configs, None, Some(40.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        for (lane, (y, warm)) in lanes.iter().enumerate() {
            let seq = fista_warm_ws(&op, y, &configs[lane], Some(40.0), warm.as_deref(), &mut ws);
            assert_eq!(bws.iterations(lane), seq.iterations, "K={k} lane {lane} iterations");
            for (i, (a, b)) in bws.solution(lane).iter().zip(&seq.solution).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "K={k} lane {lane} coeff {i}");
            }
            ws.recycle_solution(seq.solution);
        }
    }
}

/// The streaming FIR filter must agree with batch convolution for every
/// chunking of the same input.
#[test]
fn streaming_fir_chunking_invariance() {
    use cs_ecg_monitor::dsp::fir::{convolve, ConvMode, FirFilter};

    let taps = vec![0.3_f64, -0.2, 0.5, 0.1, -0.05];
    let x: Vec<f64> = (0..200).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
    let reference = convolve(&x, &taps, ConvMode::Full);
    for chunk in [1usize, 3, 7, 50, 200] {
        let mut f = FirFilter::new(taps.clone()).unwrap();
        let mut streamed = Vec::new();
        for c in x.chunks(chunk) {
            streamed.extend(f.process(c));
        }
        for (i, (a, b)) in streamed.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-12, "chunk {chunk}, sample {i}");
        }
    }
}

/// Resampling then decimating in a different rational decomposition must
/// agree: 360→256 equals 360→720→256 up to filter transients.
#[test]
fn resampler_composition_consistency() {
    use cs_ecg_monitor::ecg::Resampler;

    let x: Vec<f64> = (0..3600)
        .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / 360.0).sin())
        .collect();
    let direct = Resampler::new(256, 360).resample(&x);
    let up = Resampler::new(720, 360).resample(&x);
    let two_step = Resampler::new(256, 720).resample(&up);
    let n = direct.len().min(two_step.len());
    // Compare away from the edges (different transient lengths).
    for i in 200..n - 200 {
        assert!(
            (direct[i] - two_step[i]).abs() < 1e-2,
            "sample {i}: {} vs {}",
            direct[i],
            two_step[i]
        );
    }
}
