//! The liveness contract end to end: a fleet decodes against a live
//! registry, the HTTP endpoint reports every patient healthy — then one
//! patient's lane goes silent past the configured stall budget and a
//! real TCP scrape of `/healthz` must flip from `200` to `503` while
//! `/metrics` pins the blame on the stalled patient. This is the
//! pager-path test: a ward monitor that keeps answering `200` while a
//! patient's stream is dead is worse than no monitor at all.

use cs_ecg_monitor::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 512;

fn ecg_like(npackets: usize, phase: f64) -> Vec<i16> {
    (0..npackets * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

/// A blocking HTTP/1.1 GET with hard timeouts: this test must fail, not
/// hang, if the server wedges.
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

#[test]
fn healthz_flips_to_503_when_a_lane_stalls() {
    // A stall budget far below the deadline budget, so the flip is
    // driven purely by lane silence and the test stays fast.
    let stall_after = Duration::from_millis(120);
    let registry = TelemetryRegistry::with_slo_config(SloConfig {
        stall_after,
        ..SloConfig::default()
    });

    // Two patients decode normally: both lanes emit, both healthy.
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let inputs: Vec<Vec<i16>> = (0..2).map(|s| ecg_like(2, s as f64 * 0.03)).collect();
    let streams: Vec<FleetStream<'_>> = inputs.iter().map(|i| FleetStream::single(i)).collect();
    run_fleet_observed::<f32, _>(
        &config,
        Arc::clone(&codebook),
        &streams,
        SolverPolicy::default(),
        &FleetConfig::default(),
        &registry,
        |_| {},
    )
    .unwrap();

    let server = MetricsServer::bind("127.0.0.1:0", registry.clone()).unwrap();
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "freshly-emitting fleet must be healthy: {body}");
    assert!(body.contains("\"stalled\":0"), "no patient stalled yet: {body}");

    // Patient 1's mote goes silent. Keep patient 0 fresh across the
    // stall horizon so exactly one patient trips the budget — the probe
    // must page on one dead stream even while others look fine.
    let deadline = std::time::Instant::now() + stall_after * 3;
    while std::time::Instant::now() < deadline {
        let captured = registry.now_ns();
        registry.record_emit(&TraceContext::new(0, 0, 2, captured));
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 503, "stalled lane must flip the probe: {body}");
    assert!(body.contains("\"stalled\":1"), "exactly one stalled patient: {body}");

    let (status, scrape) = get(addr, "/metrics");
    assert_eq!(status, 200, "/metrics stays scrapeable during the incident");
    assert!(
        scrape.contains("cs_patient_health{patient=\"1\",state=\"stalled\"} 1"),
        "metrics must name the stalled patient"
    );
    assert!(
        scrape.contains("cs_patient_health{patient=\"0\",state=\"healthy\"} 1"),
        "the fresh patient stays healthy"
    );

    // Recovery: the silent lane comes back, the probe clears.
    let captured = registry.now_ns();
    registry.record_emit(&TraceContext::new(1, 0, 2, captured));
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "recovered lane must clear the probe: {body}");

    drop(server);
}
