//! Prior-driven solver guarantees across the system: the support-weighted
//! FISTA path must break the warm-start iteration ceiling (≥ 20 % fewer
//! mean iterations) at equal-or-better PRD across the paper's CR sweep,
//! and must degrade gracefully — bounded, not catastrophic — when the
//! beat morphology changes mid-stream (the prior's support estimate goes
//! stale for exactly one window).
//!
//! CI runs this suite in release (`solver-priors` job): iteration counts
//! are what the real-time budget pays for, and the release-codegen
//! numbers are the ones BENCH_decode.json commits to.

use cs_ecg_monitor::ecg::{BeatType, EcgModel, EcgModelConfig};
use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::system::PriorMode;
use std::sync::Arc;

/// Streams `samples` through one decoder per policy (all warm-started)
/// and returns `(mean iterations, PRD %)` per policy, PRD taken over
/// every window jointly.
fn decode_with_policies(
    config: &SystemConfig,
    samples: &[i16],
    policies: &[SolverPolicy<f64>],
) -> Vec<(f64, f64)> {
    let n = config.packet_len();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let mut encoder = Encoder::new(config, Arc::clone(&codebook)).unwrap();
    let mut decoders: Vec<Decoder<f64>> = policies
        .iter()
        .map(|&p| {
            let mut d = Decoder::new(config, Arc::clone(&codebook), p).unwrap();
            d.set_warm_start(true);
            d
        })
        .collect();
    let mut totals = vec![(0usize, 0u64, 0.0f64, 0.0f64); policies.len()];
    for window in samples.chunks_exact(n) {
        let wire = encoder.encode_packet(window).unwrap();
        for (slot, dec) in decoders.iter_mut().enumerate() {
            let out = dec.decode_packet(&wire).unwrap();
            let t = &mut totals[slot];
            t.0 += out.iterations;
            t.1 += 1;
            for (&x, &xh) in window.iter().zip(&out.samples) {
                let x = x as f64;
                t.2 += (x - xh) * (x - xh);
                t.3 += x * x;
            }
        }
    }
    totals
        .into_iter()
        .map(|(it, count, err, energy)| {
            (it as f64 / count.max(1) as f64, 100.0 * (err / energy).sqrt())
        })
        .collect()
}

/// Mote-ready samples for one corpus record's first lead.
fn prepare(record: &Record) -> Vec<i16> {
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect()
}

/// The headline guarantee, swept over the paper's operating range:
/// CR 50 % (m = 256), 62.5 % (m = 192), 75 % (m = 128) at n = 512. At
/// every point the support-weighted prior must solve in at most 80 % of
/// the warm baseline's mean iterations without giving up reconstruction
/// quality (≤ +0.5 pp PRD; in practice it *improves* PRD, since the
/// reduced shrinkage on the true support deblurs the estimate).
#[test]
fn weighted_prior_breaks_the_iteration_ceiling_across_the_cr_sweep() {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: 20.0,
        ..DatabaseConfig::default()
    });
    let samples = prepare(&db.record(0));

    for cr in [50.0, 62.5, 75.0] {
        let config = SystemConfig::builder().compression_ratio(cr).build().unwrap();
        let results = decode_with_policies(
            &config,
            &samples,
            &[SolverPolicy::default(), SolverPolicy::support_prior()],
        );
        let (warm_it, warm_prd) = results[0];
        let (weighted_it, weighted_prd) = results[1];
        assert!(
            weighted_it <= 0.8 * warm_it,
            "CR {cr}: weighted mean iterations {weighted_it:.1} > 80 % of warm {warm_it:.1}"
        );
        assert!(
            weighted_prd <= warm_prd + 0.5,
            "CR {cr}: weighted PRD {weighted_prd:.2} % vs warm {warm_prd:.2} %"
        );
    }
}

/// The block-sparse wavelet-tree prior must also hold quality on the
/// default geometry while solving in fewer iterations than the warm
/// baseline (group shrinkage prunes whole off-support blocks at once).
#[test]
fn block_prior_holds_quality_at_fewer_iterations() {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: 16.0,
        ..DatabaseConfig::default()
    });
    let samples = prepare(&db.record(0));
    let config = SystemConfig::paper_default();
    let results = decode_with_policies(
        &config,
        &samples,
        &[SolverPolicy::default(), SolverPolicy::block_prior()],
    );
    let (warm_it, warm_prd) = results[0];
    let (block_it, block_prd) = results[1];
    assert!(
        block_it < warm_it,
        "block mean iterations {block_it:.1} not below warm {warm_it:.1}"
    );
    assert!(
        block_prd <= warm_prd + 0.5,
        "block PRD {block_prd:.2} % vs warm {warm_prd:.2} %"
    );
}

/// Seeded chaos: the beat morphology changes mid-stream — 10 s of clean
/// sinus rhythm, then 10 s riddled with PVCs (wide, high-amplitude
/// ectopic QRS, verified present via the synthesizer's own beat
/// annotations as ground truth). The support prior estimated on the
/// last sinus window is *wrong* for the first arrhythmic window; the
/// weight floor and the adaptive restart must bound the damage: on
/// every window of the transition region the weighted PRD may exceed
/// the unweighted warm PRD by at most 1 pp, and over the whole record
/// the weighted path must still win on iterations.
#[test]
fn support_prior_survives_arrhythmic_morphology_change() {
    let n = 512;
    let sinus = EcgModelConfig::default();
    let mut arrhythmic = EcgModelConfig::default();
    arrhythmic.rhythm.pvc_probability = 0.45;

    let (clean, clean_beats) = EcgModel::new(sinus, 0xC5EC).synthesize(10.0);
    let (ectopic, ectopic_beats) = EcgModel::new(arrhythmic, 0xC5ED).synthesize(10.0);
    assert!(
        clean_beats.iter().all(|b| b.beat == BeatType::Normal),
        "sinus segment must be PVC-free"
    );
    let pvcs = ectopic_beats.iter().filter(|b| b.beat == BeatType::Pvc).count();
    assert!(pvcs >= 3, "arrhythmic segment only synthesized {pvcs} PVCs");

    // Concatenate at 360 Hz, resample to the mote rate, quantize.
    let mut signal = clean;
    let boundary_360 = signal.len();
    signal.extend_from_slice(&ectopic);
    let at_256 = resample_360_to_256(&signal);
    let boundary_window = (boundary_360 * 256).div_ceil(360 * n);
    let samples: Vec<i16> = at_256.iter().map(|&v| (v * 400.0) as i16).collect();

    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
    let mut warm: Decoder<f64> =
        Decoder::new(&config, Arc::clone(&codebook), SolverPolicy::default()).unwrap();
    let mut weighted: Decoder<f64> =
        Decoder::new(&config, codebook, SolverPolicy::support_prior()).unwrap();
    warm.set_warm_start(true);
    weighted.set_warm_start(true);
    assert_eq!(weighted.policy().prior, PriorMode::Support);

    let mut warm_iters = 0usize;
    let mut weighted_iters = 0usize;
    for (w, window) in samples.chunks_exact(n).enumerate() {
        let wire = encoder.encode_packet(window).unwrap();
        let a = warm.decode_packet(&wire).unwrap();
        let b = weighted.decode_packet(&wire).unwrap();
        warm_iters += a.iterations;
        weighted_iters += b.iterations;
        let energy: f64 = window.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let prd = |out: &[f64]| {
            let err: f64 = window
                .iter()
                .zip(out)
                .map(|(&x, &xh)| (x as f64 - xh) * (x as f64 - xh))
                .sum();
            100.0 * (err / energy).sqrt()
        };
        let (warm_prd, weighted_prd) = (prd(&a.samples), prd(&b.samples));
        // The bound matters most on the transition region, where the
        // prior is stale — but a stale support must never blow up
        // reconstruction anywhere.
        let slack = if w >= boundary_window.saturating_sub(1) && w <= boundary_window + 1 {
            1.0
        } else {
            0.5
        };
        assert!(
            weighted_prd <= warm_prd + slack,
            "window {w} (transition at {boundary_window}): weighted PRD {weighted_prd:.2} % \
             vs warm {warm_prd:.2} % (slack {slack} pp)"
        );
    }
    assert!(
        (weighted_iters as f64) < 0.9 * warm_iters as f64,
        "weighted {weighted_iters} iterations vs warm {warm_iters} across the chaos record"
    );
}
