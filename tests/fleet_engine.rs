//! Integration tests for the fleet decode engine: bit-exactness against
//! the single-stream pipeline, per-stream ordering, warm-start iteration
//! savings, and failure propagation without deadlock.

use cs_ecg_monitor::prelude::*;
use cs_core::{run_fleet_encoded, ChannelPacket, DecodedPacket, MultiChannelEncoder, PipelineError};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 512;

fn ecg_like(npackets: usize, phase: f64) -> Vec<i16> {
    (0..npackets * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

fn setup() -> (SystemConfig, Arc<Codebook>) {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    (config, codebook)
}

/// Every stream decoded by the fleet must be bit-exact against the same
/// stream pushed through the paper's single-stream `run_streaming`
/// pipeline (warm starts off — that is the documented equivalence).
#[test]
fn fleet_output_bit_exact_vs_run_streaming() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..4).map(|s| ecg_like(3, s as f64 * 0.03)).collect();

    // Reference: one run_streaming per stream.
    let mut reference: Vec<Vec<Vec<f64>>> = Vec::new();
    for input in &inputs {
        let mut packets = Vec::new();
        run_streaming::<f64, _>(
            &config,
            Arc::clone(&codebook),
            input,
            SolverPolicy::default(),
            |p| packets.push(p.samples.clone()),
        )
        .unwrap();
        reference.push(packets);
    }

    // Fleet over the same four streams, two workers.
    let streams: Vec<FleetStream<'_>> =
        inputs.iter().map(|i| FleetStream::single(i)).collect();
    let fleet = FleetConfig { workers: 2, ..FleetConfig::default() };
    let mut fleet_out: Vec<Vec<Vec<f64>>> = vec![Vec::new(); inputs.len()];
    let report = run_fleet::<f64, _>(
        &config,
        codebook,
        &streams,
        SolverPolicy::default(),
        &fleet,
        |p| fleet_out[p.stream].push(p.packet.samples.clone()),
    )
    .unwrap();

    assert_eq!(report.packets_decoded, 12);
    for (stream, (fleet_packets, ref_packets)) in
        fleet_out.iter().zip(&reference).enumerate()
    {
        assert_eq!(fleet_packets.len(), ref_packets.len(), "stream {stream}");
        for (i, (a, b)) in fleet_packets.iter().zip(ref_packets).enumerate() {
            assert_eq!(a, b, "stream {stream} packet {i} not bit-exact");
        }
    }
}

/// Packets must arrive strictly in per-stream, frame-major order even
/// when streams outnumber workers and interleave arbitrarily.
#[test]
fn per_stream_order_is_preserved() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..5).map(|s| ecg_like(3, s as f64 * 0.02)).collect();
    let streams: Vec<FleetStream<'_>> = inputs
        .iter()
        .map(|i| FleetStream { leads: vec![i, i] })
        .collect();
    let fleet = FleetConfig { workers: 2, channel_capacity: 1, ..FleetConfig::default() };
    let mut seen: Vec<Vec<(u64, u8)>> = vec![Vec::new(); inputs.len()];
    let report = run_fleet::<f32, _>(
        &config,
        codebook,
        &streams,
        SolverPolicy::default(),
        &fleet,
        |p| seen[p.stream].push((p.packet.index, p.channel)),
    )
    .unwrap();

    assert_eq!(report.packets_decoded, 5 * 3 * 2);
    let expected: Vec<(u64, u8)> =
        (0..3).flat_map(|f| [(f, 0_u8), (f, 1_u8)]).collect();
    for (stream, order) in seen.iter().enumerate() {
        assert_eq!(order, &expected, "stream {stream} out of order");
    }
    // With tiny queues and more streams than workers, producers must have
    // hit backpressure at least once.
    assert!(report.backpressure_stalls > 0, "expected backpressure stalls");
}

/// Warm starts must reduce the fleet's mean iteration count on two-lead
/// streams (the sibling lead is a near-perfect seed) and must never
/// change the packet count or ordering.
#[test]
fn warm_start_reduces_mean_iterations() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..2).map(|s| ecg_like(3, s as f64 * 0.03)).collect();
    let streams: Vec<FleetStream<'_>> = inputs
        .iter()
        .map(|i| FleetStream { leads: vec![i, i] })
        .collect();

    let run = |warm_start: bool| {
        let fleet = FleetConfig { workers: 1, warm_start, ..FleetConfig::default() };
        let mut iterations = Vec::new();
        let report = run_fleet::<f64, _>(
            &config,
            Arc::clone(&codebook),
            &streams,
            SolverPolicy::default(),
            &fleet,
            |p| iterations.push(p.packet.iterations),
        )
        .unwrap();
        (report, iterations)
    };
    let (cold_report, cold_iters) = run(false);
    let (warm_report, warm_iters) = run(true);

    assert_eq!(cold_iters.len(), warm_iters.len());
    assert_eq!(cold_report.streams[0].warm_started, 0);
    assert!(warm_report.streams[0].warm_started > 0, "no packet warm-started");
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    assert!(
        mean(&warm_iters) < mean(&cold_iters),
        "warm {} >= cold {}",
        mean(&warm_iters),
        mean(&cold_iters)
    );
}

/// White-ish noise: dense in the wavelet domain, so FISTA needs far more
/// iterations than on the smooth spike trains — a straggler lane.
fn noisy(npackets: usize, seed: u64) -> Vec<i16> {
    let mut state = seed | 1;
    (0..npackets * N)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 48) as i16) / 64
        })
        .collect()
}

/// With warm starts off, the batched MMV path must be bit-exact against
/// the sequential path at every width: batching fuses the operator walks
/// across lanes but never reassociates any lane's arithmetic, and the
/// per-column convergence masks preserve each lane's iteration count.
#[test]
fn batched_fleet_bit_exact_vs_sequential() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..4).map(|s| ecg_like(3, s as f64 * 0.03)).collect();
    let streams: Vec<FleetStream<'_>> = inputs
        .iter()
        .map(|i| FleetStream { leads: vec![i, i] })
        .collect();

    let run = |batch: usize| {
        let fleet = FleetConfig { workers: 1, batch, ..FleetConfig::default() };
        let mut out: Vec<Vec<(u64, u8, usize, Vec<f64>)>> = vec![Vec::new(); inputs.len()];
        run_fleet::<f64, _>(
            &config,
            Arc::clone(&codebook),
            &streams,
            SolverPolicy::default(),
            &fleet,
            |p| {
                out[p.stream].push((
                    p.packet.index,
                    p.channel,
                    p.packet.iterations,
                    p.packet.samples.clone(),
                ))
            },
        )
        .unwrap();
        out
    };

    let sequential = run(1);
    for k in [2, 4, 8] {
        let batched = run(k);
        for (stream, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(b.len(), s.len(), "stream {stream} length at K={k}");
            for ((bi, bc, bit, bs), (si, sc, sit, ss)) in b.iter().zip(s) {
                assert_eq!((bi, bc), (si, sc), "stream {stream} reordered at K={k}");
                assert_eq!(bit, sit, "stream {stream} window {bi} iterations at K={k}");
                assert!(
                    bs.iter().zip(ss).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "stream {stream} window {bi} lead {bc} not bit-exact at K={k}"
                );
            }
        }
    }
}

/// One straggler lane in a batch (dense noise, slow to converge) must not
/// inflate its batchmates' iteration counts: the convergence mask freezes
/// each converged column while the straggler keeps iterating, so every
/// lane's count equals its sequential one exactly.
#[test]
fn straggler_lane_does_not_inflate_batchmates() {
    let (config, codebook) = setup();
    let hard = noisy(3, 0xDEAD);
    let easies: Vec<Vec<i16>> = (0..3).map(|s| ecg_like(3, s as f64 * 0.02)).collect();
    let mut streams: Vec<FleetStream<'_>> = vec![FleetStream::single(&hard)];
    streams.extend(easies.iter().map(|i| FleetStream::single(i)));

    let run = |batch: usize| {
        let fleet = FleetConfig { workers: 1, batch, ..FleetConfig::default() };
        let mut iters: Vec<Vec<(u64, usize)>> = vec![Vec::new(); streams.len()];
        run_fleet::<f64, _>(
            &config,
            Arc::clone(&codebook),
            &streams,
            SolverPolicy::default(),
            &fleet,
            |p| iters[p.stream].push((p.packet.index, p.packet.iterations)),
        )
        .unwrap();
        iters
    };

    let sequential = run(1);
    let batched = run(4);

    // The noise lane genuinely straggles past every smooth lane…
    let total = |v: &[(u64, usize)]| v.iter().map(|(_, i)| i).sum::<usize>();
    for easy in 1..streams.len() {
        assert!(
            total(&sequential[0]) > total(&sequential[easy]),
            "noise lane ({}) must out-iterate smooth lane {easy} ({})",
            total(&sequential[0]),
            total(&sequential[easy])
        );
    }
    // …yet batching next to it changes nothing: per-lane windows arrive in
    // the same order with the same iteration counts.
    assert_eq!(batched, sequential, "straggler leaked into batchmates");
}

/// Batching must not disturb the fleet's load accounting: with stream
/// affinity, equal-length streams split evenly over the workers whatever
/// the batch width.
#[test]
fn batched_fleet_keeps_worker_load_balanced() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..6).map(|s| ecg_like(3, s as f64 * 0.015)).collect();
    let streams: Vec<FleetStream<'_>> =
        inputs.iter().map(|i| FleetStream::single(i)).collect();
    let fleet = FleetConfig { workers: 2, batch: 4, ..FleetConfig::default() };
    let report = run_fleet::<f32, _>(
        &config,
        codebook,
        &streams,
        SolverPolicy::default(),
        &fleet,
        |_| {},
    )
    .unwrap();

    assert_eq!(report.packets_decoded, 18);
    let max = *report.worker_packets.iter().max().unwrap();
    let min = *report.worker_packets.iter().min().unwrap();
    assert_eq!(
        max - min,
        0,
        "worker imbalance under batching: {:?}",
        report.worker_packets
    );
}

/// A corrupt packet mid-traffic must abort the run with a stream-attributed
/// fleet error — and the run must terminate (no deadlocked producers or
/// workers) even with minimal queue capacity.
#[test]
fn decode_error_propagates_and_run_terminates() {
    let (config, codebook) = setup();
    let mut encoder = MultiChannelEncoder::new(&config, Arc::clone(&codebook), 1).unwrap();
    let samples = ecg_like(4, 0.0);
    let mut packets: Vec<ChannelPacket> = samples
        .chunks_exact(N)
        .map(|chunk| encoder.encode_frame(&[chunk]).unwrap().remove(0))
        .collect();
    // Truncate one payload: parsing runs out of bits and decode errors.
    packets[2].packet.payload.truncate(2);

    let streams = vec![packets.clone(), packets.clone()];
    let fleet = FleetConfig { workers: 2, channel_capacity: 1, ..FleetConfig::default() };
    let err = run_fleet_encoded::<f32, _>(
        &config,
        codebook,
        &streams,
        SolverPolicy::default(),
        &fleet,
        |_| {},
    )
    .unwrap_err();
    match err {
        PipelineError::Fleet { stream, cause } => {
            assert!(stream.is_some(), "error must carry stream attribution");
            assert!(!cause.is_empty());
        }
        other => panic!("expected Fleet error, got {other}"),
    }
}

/// Deterministic replay: the encoded-traffic path and the raw-samples
/// path must produce identical reconstructions.
#[test]
fn encoded_path_matches_raw_path() {
    let (config, codebook) = setup();
    let samples = ecg_like(2, 0.0);
    let mut encoder = MultiChannelEncoder::new(&config, Arc::clone(&codebook), 1).unwrap();
    let packets: Vec<ChannelPacket> = samples
        .chunks_exact(N)
        .map(|chunk| encoder.encode_frame(&[chunk]).unwrap().remove(0))
        .collect();

    let fleet = FleetConfig { workers: 1, ..FleetConfig::default() };

    let mut raw_out: Vec<DecodedPacket<f64>> = Vec::new();
    let streams = [FleetStream::single(&samples)];
    run_fleet::<f64, _>(
        &config,
        Arc::clone(&codebook),
        &streams,
        SolverPolicy::default(),
        &fleet,
        |p| raw_out.push(p.packet.clone()),
    )
    .unwrap();

    let mut enc_out: Vec<DecodedPacket<f64>> = Vec::new();
    run_fleet_encoded::<f64, _>(
        &config,
        codebook,
        &[packets],
        SolverPolicy::default(),
        &fleet,
        |p| enc_out.push(p.packet.clone()),
    )
    .unwrap();

    assert_eq!(raw_out.len(), enc_out.len());
    for (a, b) in raw_out.iter().zip(&enc_out) {
        assert_eq!(a.samples, b.samples);
    }
}

/// The fleet report's aggregate accounting must be consistent with its
/// per-stream summaries.
#[test]
fn report_accounting_is_consistent() {
    let (config, codebook) = setup();
    let inputs: Vec<Vec<i16>> = (0..3).map(|s| ecg_like(2, s as f64 * 0.01)).collect();
    let streams: Vec<FleetStream<'_>> =
        inputs.iter().map(|i| FleetStream::single(i)).collect();
    let fleet = FleetConfig { workers: 3, ..FleetConfig::default() };
    let report = run_fleet::<f32, _>(
        &config,
        codebook,
        &streams,
        SolverPolicy::default(),
        &fleet,
        |_| {},
    )
    .unwrap();

    let per_stream: usize = report.streams.iter().map(|s| s.packets).sum();
    assert_eq!(per_stream, report.packets_decoded);
    let per_worker: usize = report.worker_packets.iter().sum();
    assert_eq!(per_worker, report.packets_decoded);
    let stream_total: Duration = report.streams.iter().map(|s| s.total_decode_time).sum();
    assert_eq!(stream_total, report.total_decode_time);
    assert!(report.packet_period == Duration::from_secs(2));
    assert_eq!(report.spectral_misses, 1);
    assert_eq!(report.spectral_hits as usize, inputs.len() - 1);
}
