//! The JSON-Lines exporter's schema is a contract: `fleet_monitor`
//! documents it, operators pipe it into `jq`/log shippers, and a field
//! that silently changes type or disappears breaks dashboards without a
//! compile error. This test parses real `json_line()` output back with
//! a small hand-rolled JSON parser (the workspace is dependency-free by
//! design, so no serde) and pins every documented field:
//!
//! * one self-contained object per line, LF-free;
//! * `uptime_s` monotonic, `ts_unix_s` absolute wall-clock;
//! * `stages` entries carry name + count + quantiles;
//! * `e2e` per-patient latency and `slo` health/freshness/burn/lanes
//!   (populated by the traced fleet path);
//! * `journal` accounting and `scrapes` with zero counts elided;
//! * `render` self-observation appears from the second render onward;
//! * `clinical` appears only once the clinical layer has recorded, with
//!   beat census, per-kind alarm counters, suppression accounting and
//!   the QRS confusion/accuracy figures.
//!
//! Extend this test whenever `examples/fleet_monitor.rs`'s schema note
//! gains a field.

use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::telemetry::ScrapeEndpoint;
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser: just enough for the exporter's
// output (objects, arrays, strings with escapes, f64 numbers, literals).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(map) => map.get(key).unwrap_or_else(|| panic!("missing key `{key}`")),
            other => panic!("expected object for key `{key}`, got {other:?}"),
        }
    }

    fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
        value
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&b),
            "expected `{}` at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(text.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos += text.len();
        value
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(map);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.skip_ws();
            self.eat(b':');
            let value = self.value();
            assert!(map.insert(key.clone(), value).is_none(), "duplicate key `{key}`");
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(map);
                }
                other => panic!("expected `,` or `}}`, got `{}`", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected `,` or `]`, got `{}`", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        other => panic!("unsupported escape `\\{}`", other as char),
                    }
                    self.pos += 1;
                }
                b => {
                    // Exporter output is ASCII-safe; accept UTF-8 bytes as-is.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number `{text}` at {start}")))
    }
}

// ---------------------------------------------------------------------
// The schema test proper.
// ---------------------------------------------------------------------

const N: usize = 512;

fn ecg_like(npackets: usize, phase: f64) -> Vec<i16> {
    (0..npackets * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

#[test]
fn json_line_round_trips_the_documented_schema() {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let inputs: Vec<Vec<i16>> = (0..2).map(|s| ecg_like(2, s as f64 * 0.03)).collect();
    let streams: Vec<FleetStream<'_>> = inputs.iter().map(|i| FleetStream::single(i)).collect();

    let registry = TelemetryRegistry::new();
    run_fleet_observed::<f32, _>(
        &config,
        Arc::clone(&codebook),
        &streams,
        SolverPolicy::default(),
        &FleetConfig::default(),
        &registry,
        |_| {},
    )
    .unwrap();
    registry.record_scrape(ScrapeEndpoint::Metrics);

    let line = registry.json_line();
    assert!(!line.contains('\n'), "one self-contained object per line");
    let root = Parser::parse(&line);

    // Clocks: uptime is monotonic-small, ts_unix_s is absolute wall time
    // (anything past 2023 proves it is epoch-based, not uptime-based).
    let uptime = root.get("uptime_s").num();
    assert!(uptime >= 0.0 && uptime < 3600.0, "uptime_s {uptime} not a fresh run");
    let ts = root.get("ts_unix_s").num();
    assert!(ts > 1.7e9, "ts_unix_s {ts} is not absolute wall-clock time");

    // Stages: every entry carries a known stage name and full quantile
    // row; the traced fleet must have produced the e2e segments.
    let stages = root.get("stages").arr();
    assert!(!stages.is_empty());
    let mut stage_names = Vec::new();
    for s in stages {
        let name = s.get("stage").str().to_owned();
        assert!(s.get("count").num() > 0.0, "zero-count stages are elided");
        for key in ["p50_ns", "p95_ns", "p99_ns", "min_ns", "max_ns", "mean_ns"] {
            assert!(s.get(key).num() >= 0.0, "stage `{name}` field `{key}`");
        }
        assert!(s.get("p50_ns").num() <= s.get("max_ns").num(), "stage `{name}` ordering");
        stage_names.push(name);
    }
    for expected in ["huffman_decode", "fista_solve", "queue_wait", "emit_deliver"] {
        assert!(stage_names.iter().any(|n| n == expected), "missing stage `{expected}`");
    }

    // e2e: one per-patient latency summary per traced stream.
    let e2e = root.get("e2e").arr();
    assert_eq!(e2e.len(), 2, "two traced patients");
    for p in e2e {
        assert!(p.get("patient").num() < 2.0);
        assert_eq!(p.get("count").num(), 2.0, "two packets per patient");
        assert!(p.get("p50_ns").num() <= p.get("p99_ns").num());
        assert!(p.get("p99_ns").num() <= p.get("max_ns").num());
    }

    // slo: health verdict, deadline accounting, freshness, burn rates
    // and per-lane watermarks, exactly as the fleet_monitor header says.
    let slo = root.get("slo").arr();
    assert_eq!(slo.len(), 2);
    for p in slo {
        assert_eq!(p.get("health").str(), "healthy");
        assert_eq!(p.get("emits").num(), 2.0);
        assert_eq!(p.get("deadline_misses").num(), 0.0);
        assert!(p.get("freshness_s").num() >= 0.0);
        assert!(p.get("fast_burn").num() >= 0.0);
        assert!(p.get("slow_burn").num() >= 0.0);
        let lanes = p.get("lanes").arr();
        assert_eq!(lanes.len(), 1, "single-lead streams");
        assert_eq!(lanes[0].get("lane").num(), 0.0);
        assert_eq!(lanes[0].get("newest_seq").num(), 1.0);
        assert!(lanes[0].get("age_s").num() >= 0.0);
    }

    // Telemetry self-observation: scrape counters (zero counts elided)
    // and journal accounting.
    assert_eq!(root.get("scrapes").get("metrics").num(), 1.0);
    assert!(root.get("scrapes").opt("healthz").is_none(), "zero counts elided");
    let journal = root.get("journal");
    assert_eq!(journal.get("pushed").num(), 4.0, "one solve trace per packet");
    assert_eq!(journal.get("dropped").num(), 0.0);
    assert!(journal.get("buffered").num() <= journal.get("pushed").num());

    // Render self-observation lags by one render: absent from the first
    // line, present (and parseable) from the second onward.
    assert!(root.opt("render").is_none(), "first render cannot observe itself");
    let second = Parser::parse(&registry.json_line());
    let render = second.get("render");
    assert!(render.get("count").num() >= 1.0);
    assert!(render.get("p50_ns").num() <= render.get("max_ns").num());

    // The second line's clocks moved forward, never backward.
    assert!(second.get("uptime_s").num() >= uptime);
    assert!(second.get("ts_unix_s").num() >= ts);

    // No clinical engine touched this registry: the block is elided
    // entirely rather than rendered full of zeros.
    assert!(root.opt("clinical").is_none(), "clinical block absent without a clinical tap");
}

#[test]
fn clinical_block_round_trips_alarm_and_accuracy_fields() {
    use cs_ecg_monitor::telemetry::{AlarmKind, BeatClass};

    let registry = TelemetryRegistry::new();

    // The exact counter sequence a clinical engine would emit over a
    // short monitored stretch: mostly sinus beats, one PVC, a transient
    // tachycardia (raised then cleared), a PVC run still active at
    // snapshot time, one evaluation suppressed inside a concealed
    // window, and a scored detection stream at 95 % sens / 95 % PPV.
    for _ in 0..3 {
        registry.record_beat(BeatClass::Normal);
    }
    registry.record_beat(BeatClass::Pvc);
    registry.record_alarm_raised(AlarmKind::Tachycardia);
    registry.record_alarm_cleared(AlarmKind::Tachycardia);
    registry.record_alarm_raised(AlarmKind::PvcRun);
    registry.record_alarm_suppressed();
    registry.record_qrs_score(19, 1, 1);

    let root = Parser::parse(&registry.json_line());
    let clinical = root.get("clinical");

    let beats = clinical.get("beats");
    assert_eq!(beats.get("normal").num(), 3.0);
    assert_eq!(beats.get("pvc").num(), 1.0);
    assert!(beats.opt("apc").is_none(), "zero-count beat classes elided");

    let alarms = clinical.get("alarms");
    let tachy = alarms.get("tachycardia");
    assert_eq!(tachy.get("raised").num(), 1.0);
    assert_eq!(tachy.get("cleared").num(), 1.0);
    assert_eq!(tachy.get("active").num(), 0.0);
    let pvc_run = alarms.get("pvc_run");
    assert_eq!(pvc_run.get("raised").num(), 1.0);
    assert_eq!(pvc_run.get("cleared").num(), 0.0);
    assert_eq!(pvc_run.get("active").num(), 1.0);
    assert!(alarms.opt("bradycardia").is_none(), "untouched alarm kinds elided");
    assert!(alarms.opt("asystole").is_none());

    assert_eq!(clinical.get("suppressed").num(), 1.0);

    let qrs = clinical.get("qrs");
    assert_eq!(qrs.get("tp").num(), 19.0);
    assert_eq!(qrs.get("fp").num(), 1.0);
    assert_eq!(qrs.get("fn").num(), 1.0);
    assert!((qrs.get("sensitivity").num() - 0.95).abs() < 1e-9);
    assert!((qrs.get("ppv").num() - 0.95).abs() < 1e-9);
}
