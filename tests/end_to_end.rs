//! Integration tests spanning the whole workspace: synthetic database →
//! resampling → integer encoder → wire format → FISTA decoder → metrics.

use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::system::{EncodedPacket, PacketKind};
use std::sync::Arc;

/// Standard corpus-to-mote preparation used across these tests.
fn prepare(record: &Record) -> Vec<i16> {
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256
        .iter()
        .map(|&v| adc.to_signed(adc.quantize(v)))
        .collect()
}

fn corpus(n: usize, secs: f64) -> Vec<Vec<i16>> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: n,
        duration_s: secs,
        ..DatabaseConfig::default()
    });
    db.iter().map(|r| prepare(&r)).collect()
}

#[test]
fn full_system_round_trip_at_paper_defaults() {
    let streams = corpus(2, 16.0);
    let config = SystemConfig::paper_default();
    for samples in &streams {
        let report =
            train_and_evaluate::<f64>(&config, samples, 3, SolverPolicy::default()).unwrap();
        assert!(report.packets.len() >= 7);
        assert!(report.cr.mean() > 35.0, "CR {}", report.cr.mean());
        assert!(report.prd.mean() < 35.0, "PRD {}", report.prd.mean());
        assert!(report.iterations.mean() > 10.0);
    }
}

#[test]
fn wire_format_survives_serialization() {
    let streams = corpus(1, 8.0);
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
    let mut decoder: Decoder<f64> =
        Decoder::new(&config, Arc::clone(&codebook), SolverPolicy::default()).unwrap();
    let mut decoder_via_bytes: Decoder<f64> =
        Decoder::new(&config, codebook, SolverPolicy::default()).unwrap();

    for packet in packetize(&streams[0], config.packet_len()) {
        let wire = encoder.encode_packet(packet).unwrap();
        let bytes = wire.to_bytes();
        let parsed = EncodedPacket::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, wire);
        let a = decoder.decode_packet(&wire).unwrap();
        let b = decoder_via_bytes.decode_packet(&parsed).unwrap();
        assert_eq!(a.samples, b.samples);
    }
}

#[test]
fn packet_loss_recovers_at_next_reference() {
    let streams = corpus(1, 24.0);
    let config = SystemConfig::builder().reference_interval(4).build().unwrap();
    let training = packetize(&streams[0], 512).take(3).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).unwrap());
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
    let mut decoder: Decoder<f64> =
        Decoder::new(&config, codebook, SolverPolicy::default()).unwrap();

    let packets: Vec<_> = packetize(&streams[0], 512).collect();
    let mut decoded_ok = 0;
    let mut rejected = 0;
    for (i, packet) in packets.iter().enumerate() {
        let wire = encoder.encode_packet(packet).unwrap();
        if i == 2 {
            // Simulate losing packet 2 on the air.
            decoder.desynchronize();
            continue;
        }
        match decoder.decode_packet(&wire) {
            Ok(_) => decoded_ok += 1,
            Err(_) => {
                // Deltas after the loss must be rejected, not silently
                // decoded against stale state.
                assert_eq!(wire.kind, PacketKind::Delta);
                rejected += 1;
            }
        }
    }
    assert!(rejected >= 1, "loss should reject at least one delta");
    // Reference at index 4 resynchronizes; everything after decodes.
    assert!(decoded_ok >= packets.len() - 3);
}

#[test]
fn cr_sweep_is_monotone_in_payload() {
    let streams = corpus(1, 16.0);
    let mut last_bits = f64::INFINITY;
    for cr in [30.0, 50.0, 70.0, 85.0] {
        let config = SystemConfig::builder().compression_ratio(cr).build().unwrap();
        let report =
            train_and_evaluate::<f64>(&config, &streams[0], 3, SolverPolicy::default()).unwrap();
        let mean_bits: f64 = report
            .packets
            .iter()
            .map(|p| p.payload_bits as f64)
            .sum::<f64>()
            / report.packets.len() as f64;
        assert!(
            mean_bits < last_bits,
            "payload did not shrink at CR {cr}: {mean_bits} vs {last_bits}"
        );
        last_bits = mean_bits;
    }
}

#[test]
fn two_channels_compress_independently() {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: 12.0,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let config = SystemConfig::paper_default();
    for ch in 0..record.num_channels() {
        let at_256 = resample_360_to_256(&record.signal_mv(ch));
        let adc = record.adc();
        let samples: Vec<i16> = at_256
            .iter()
            .map(|&v| adc.to_signed(adc.quantize(v)))
            .collect();
        let report =
            train_and_evaluate::<f64>(&config, &samples, 2, SolverPolicy::default()).unwrap();
        assert!(
            report.prd.mean() < 40.0,
            "channel {ch} PRD {}",
            report.prd.mean()
        );
    }
}

#[test]
fn solver_policies_trade_quality_for_time() {
    let streams = corpus(1, 12.0);
    let config = SystemConfig::paper_default();
    let fast = SolverPolicy::<f64> {
        max_iterations: 60,
        tolerance: 0.0,
        ..SolverPolicy::default()
    };
    let slow = SolverPolicy::<f64> {
        max_iterations: 1500,
        tolerance: 1e-6,
        ..SolverPolicy::default()
    };
    let rf = train_and_evaluate::<f64>(&config, &streams[0], 2, fast).unwrap();
    let rs = train_and_evaluate::<f64>(&config, &streams[0], 2, slow).unwrap();
    assert!(
        rs.prd.mean() <= rf.prd.mean() + 0.5,
        "more iterations should not hurt: {} vs {}",
        rs.prd.mean(),
        rf.prd.mean()
    );
    assert!(rs.iterations.mean() > rf.iterations.mean());
}

#[test]
fn seed_mismatch_breaks_reconstruction() {
    // The encoder and decoder must share the sensing seed; with different
    // seeds the decoder sees a different Φ and produces garbage. This is
    // the negative control for the shared-seed design.
    let streams = corpus(1, 8.0);
    let enc_config = SystemConfig::builder().seed(1).build().unwrap();
    let dec_config = SystemConfig::builder().seed(2).build().unwrap();
    let codebook = Arc::new(uniform_codebook(512).unwrap());
    let mut encoder = Encoder::new(&enc_config, Arc::clone(&codebook)).unwrap();
    let mut good: Decoder<f64> =
        Decoder::new(&enc_config, Arc::clone(&codebook), SolverPolicy::default()).unwrap();
    let mut bad: Decoder<f64> =
        Decoder::new(&dec_config, codebook, SolverPolicy::default()).unwrap();

    let packet = &streams[0][..512];
    let x: Vec<f64> = packet.iter().map(|&v| v as f64).collect();
    let wire = encoder.encode_packet(packet).unwrap();
    let ok = good.decode_packet(&wire).unwrap();
    let broken = bad.decode_packet(&wire).unwrap();
    let prd_ok = prd(&x, &ok.samples);
    let prd_bad = prd(&x, &broken.samples);
    assert!(
        prd_bad > prd_ok * 2.0,
        "seed mismatch should degrade badly: {prd_ok} vs {prd_bad}"
    );
}
