//! Integration of the platform models with real pipeline output: the
//! paper's §IV/§V hardware claims checked end-to-end against measured
//! encoder output and solver statistics.

use cs_ecg_monitor::platform::SolveSample;
use cs_ecg_monitor::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn prepared_stream(seconds: f64) -> Vec<i16> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: seconds,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256
        .iter()
        .map(|&v| adc.to_signed(adc.quantize(v)))
        .collect()
}

#[test]
fn node_stays_under_five_percent_cpu_on_real_packets() {
    let samples = prepared_stream(16.0);
    let config = SystemConfig::paper_default();
    let training = packetize(&samples, 512).take(2).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).unwrap());
    let mut encoder = Encoder::new(&config, codebook).unwrap();
    let mote = MoteSpec::msp430f1611();
    for packet in packetize(&samples, 512) {
        let wire = encoder.encode_packet(packet).unwrap();
        let cost = encode_cost(&mote, &config, &wire);
        let util = cost.cpu_utilization(&mote, Duration::from_secs(2));
        assert!(util < 0.05, "packet {} at {util}", wire.index);
    }
}

#[test]
fn coordinator_report_from_real_solves() {
    let samples = prepared_stream(16.0);
    let config = SystemConfig::paper_default();
    let training = packetize(&samples, 512).take(2).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).unwrap());
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
    let mut decoder: Decoder<f32> =
        Decoder::new(&config, codebook, SolverPolicy::default()).unwrap();

    let mut solves = Vec::new();
    for packet in packetize(&samples, 512) {
        let wire = encoder.encode_packet(packet).unwrap();
        let decoded = decoder.decode_packet(&wire).unwrap();
        solves.push(SolveSample {
            iterations: decoded.iterations,
            solve_time: decoded.solve_time,
        });
    }
    let report = analyze_solves(&CoordinatorSpec::iphone_3gs(), &solves);
    // This host is far faster than an iPhone 3GS: real-time must hold and
    // the in-budget iteration count must dwarf the paper's 2000.
    assert!(report.real_time);
    assert!(report.max_iterations_in_budget > 2000);
    assert!(report.cpu_usage_percent < 60.0);
}

#[test]
fn lifetime_extension_positive_at_cr50_with_measured_payloads() {
    let samples = prepared_stream(24.0);
    let config = SystemConfig::paper_default();
    let training = packetize(&samples, 512).take(3).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).unwrap());
    let mut encoder = Encoder::new(&config, codebook).unwrap();
    let mote = MoteSpec::msp430f1611();
    let period = Duration::from_secs(2);

    let mut bits = 0.0;
    let mut util = 0.0;
    let mut count = 0.0;
    for packet in packetize(&samples, 512) {
        let wire = encoder.encode_packet(packet).unwrap();
        bits += wire.framed_bytes() as f64 * 8.0;
        util += encode_cost(&mote, &config, &wire).cpu_utilization(&mote, period);
        count += 1.0;
    }
    let model = EnergyModel::shimmer();
    let cmp = compare_lifetime(&model, 512.0 * 16.0, bits / count, util / count, period);
    assert!(
        cmp.extension_percent > 5.0,
        "extension {}%",
        cmp.extension_percent
    );
    assert!(
        cmp.extension_percent < 25.0,
        "extension {}% suspiciously large",
        cmp.extension_percent
    );
}

#[test]
fn footprint_fits_hardware_for_all_valid_crs() {
    let codebook = uniform_codebook(512).unwrap();
    let spec = MoteSpec::msp430f1611();
    for cr in [30.0, 50.0, 70.0, 90.0] {
        let config = SystemConfig::builder().compression_ratio(cr).build().unwrap();
        let report = encoder_footprint(&config, &codebook);
        assert!(report.fits(&spec), "CR {cr}: {}", report.to_table());
    }
}
