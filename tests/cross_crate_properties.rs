//! Property-based integration tests across crates: wire-format fuzzing,
//! codebook agreement between sides, and pipeline invariants under random
//! inputs.

use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::system::EncodedPacket;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte blobs must never panic the wire parser — it either
    /// parses or returns a structured error.
    #[test]
    fn wire_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = EncodedPacket::from_bytes(&bytes);
    }

    /// Corrupting any single byte of a framed packet either still parses
    /// (payload corruption is the codec's problem) or errors — no panic.
    #[test]
    fn corrupted_frames_handled(flip_at in 0_usize..64, xor in 1_u8..=255) {
        let config = SystemConfig::paper_default();
        let codebook = Arc::new(uniform_codebook(512).unwrap());
        let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
        let wire = encoder.encode_packet(&vec![0_i16; 512]).unwrap();
        let mut bytes = wire.to_bytes();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= xor;
        if let Ok(parsed) = EncodedPacket::from_bytes(&bytes) {
            let mut decoder: Decoder<f32> =
                Decoder::new(&config, codebook, SolverPolicy::default()).unwrap();
            let _ = decoder.decode_packet(&parsed); // may Err, must not panic
        }
    }

    /// End-to-end quality holds across the family of signals the system
    /// is built for: quasi-periodic spike trains (QRS-like), for any
    /// plausible amplitude, rate and spike width. These are sparse in the
    /// wavelet basis, so CR 50 recovery must stay clinically plausible.
    #[test]
    fn round_trip_prd_bounded_for_spiky_signals(
        amp in 300.0_f64..1000.0,
        period in 120.0_f64..300.0,   // samples between beats (~50-130 bpm)
        width in 6.0_f64..14.0,       // QRS-like spike width in samples
    ) {
        let n = 512;
        let samples: Vec<i16> = (0..2 * n)
            .map(|i| {
                let phase = (i as f64) % period;
                let spike = (-(((phase - period / 2.0) / width).powi(2))).exp();
                (amp * spike + 0.08 * amp * (i as f64 / 40.0).sin()) as i16
            })
            .collect();
        let config = SystemConfig::paper_default();
        let report =
            train_and_evaluate::<f64>(&config, &samples, 1, SolverPolicy::default()).unwrap();
        prop_assert!(report.prd.mean() < 30.0, "PRD {}", report.prd.mean());
    }

    /// The trained codebook's serialized lengths always rebuild an
    /// identical codebook (the mote and phone must agree bit-for-bit).
    #[test]
    fn codebook_lengths_rebuild_identically(seed in any::<u64>()) {
        let config = SystemConfig::paper_default();
        let mut state = seed | 1;
        let packets = (0..6).map(move |_| {
            (0..512)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % 1200) as i16 - 600
                })
                .collect::<Vec<i16>>()
        });
        let cb = train_codebook(&config, packets).unwrap();
        let rebuilt = Codebook::from_lengths(cb.lengths()).unwrap();
        prop_assert_eq!(cb, rebuilt);
    }

    /// Quantization + resampling + pipeline must be deterministic: the
    /// same corpus seed yields bit-identical wire packets.
    #[test]
    fn whole_chain_is_deterministic(record_seconds in 4.0_f64..8.0) {
        let make = || {
            let db = SyntheticDatabase::new(DatabaseConfig {
                num_records: 1,
                duration_s: record_seconds,
                ..DatabaseConfig::default()
            });
            let record = db.record(0);
            let at_256 = resample_360_to_256(&record.signal_mv(0));
            let adc = record.adc();
            let samples: Vec<i16> =
                at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();
            let config = SystemConfig::paper_default();
            let codebook = Arc::new(uniform_codebook(512).unwrap());
            let mut encoder = Encoder::new(&config, codebook).unwrap();
            packetize(&samples, 512)
                .map(|p| encoder.encode_packet(p).unwrap().to_bytes())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(make(), make());
    }
}

#[test]
fn sensing_matrix_shared_by_seed_is_identical_across_sides() {
    // The encoder's Φ and a decoder-side reconstruction of Φ from the same
    // config must match column for column.
    let config = SystemConfig::paper_default();
    let a = SparseBinarySensing::new(
        config.measurements(),
        config.packet_len(),
        config.sparse_ones_per_column(),
        config.seed(),
    )
    .unwrap();
    let b = SparseBinarySensing::new(
        config.measurements(),
        config.packet_len(),
        config.sparse_ones_per_column(),
        config.seed(),
    )
    .unwrap();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Entropy-coder round-trip properties: both coders must be exact
// identities over their full input domains, including the degenerate
// blocks real traffic produces (empty payloads, constant runs).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Huffman encode→decode is the identity for any symbol stream over
    /// any (smoothed) count distribution.
    #[test]
    fn huffman_round_trip_identity(
        counts in proptest::collection::vec(0_u64..1000, 16),
        symbols in proptest::collection::vec(0_u16..16, 0..64),
    ) {
        let cb = Codebook::from_counts(&counts, 16).unwrap();
        let mut w = cs_codec::BitWriter::new();
        cb.encode(&symbols, &mut w).unwrap();
        let bytes = w.finish();
        let mut r = cs_codec::BitReader::new(&bytes);
        let decoded = cb.decode(&mut r, symbols.len()).unwrap();
        prop_assert_eq!(decoded, symbols);
    }

    /// A stream that uses one single symbol — the extreme the
    /// delta-dominated CS-ECG payloads approach — still round-trips,
    /// whatever the trained distribution looked like.
    #[test]
    fn huffman_single_symbol_stream_round_trips(
        hot in 0_u16..16,
        len in 1_usize..128,
        skew in 1_u64..10_000,
    ) {
        let mut counts = vec![1_u64; 16];
        counts[hot as usize] = skew;
        let cb = Codebook::from_counts(&counts, 16).unwrap();
        let symbols = vec![hot; len];
        let mut w = cs_codec::BitWriter::new();
        cb.encode(&symbols, &mut w).unwrap();
        let bytes = w.finish();
        let mut r = cs_codec::BitReader::new(&bytes);
        prop_assert_eq!(cb.decode(&mut r, len).unwrap(), symbols);
    }

    /// Rice block encode→decode is the identity for any signed block,
    /// including blocks whose optimal k is at either extreme.
    #[test]
    fn rice_block_round_trip_identity(
        values in proptest::collection::vec(-100_000_i32..100_000, 0..96),
    ) {
        let mut w = cs_codec::BitWriter::new();
        cs_codec::rice_encode_block(&values, &mut w);
        let bytes = w.finish();
        let mut r = cs_codec::BitReader::new(&bytes);
        let decoded = cs_codec::rice_decode_block(values.len(), &mut r).unwrap();
        prop_assert_eq!(decoded, values);
    }

    /// Zigzag is a bijection over the full i32 range Rice coding relies
    /// on.
    #[test]
    fn zigzag_bijective(v in any::<i32>()) {
        prop_assert_eq!(cs_codec::zigzag_decode(cs_codec::zigzag_encode(v)), v);
    }
}

#[test]
fn huffman_empty_stream_round_trips() {
    let cb = uniform_codebook(16).unwrap();
    let mut w = cs_codec::BitWriter::new();
    cb.encode(&[], &mut w).unwrap();
    let bytes = w.finish();
    let mut r = cs_codec::BitReader::new(&bytes);
    assert_eq!(cb.decode(&mut r, 0).unwrap(), Vec::<u16>::new());
}

#[test]
fn rice_empty_and_single_value_blocks_round_trip() {
    for block in [Vec::new(), vec![0_i32], vec![-1], vec![i32::MIN / 2]] {
        let mut w = cs_codec::BitWriter::new();
        cs_codec::rice_encode_block(&block, &mut w);
        let bytes = w.finish();
        let mut r = cs_codec::BitReader::new(&bytes);
        assert_eq!(cs_codec::rice_decode_block(block.len(), &mut r).unwrap(), block);
    }
}
