//! Decode-on-read replay: the archive is a faithful tap of the wire, so
//! replaying a stored session through the fleet decoder must reproduce
//! the live run **bit-for-bit** — same outcomes, same reconstructed
//! samples — and appending must run far ahead of the encode rate.

use cs_ecg_monitor::archive::{Archive, ArchiveConfig, ArchiveSink, ArchiveWriter, FsyncPolicy};
use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::system::MultiChannelEncoder;
use cs_ecg_monitor::telemetry::TelemetryRegistry;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs-archive-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two-lead wire frames for `streams` synthetic patients.
fn fleet_traffic(config: &SystemConfig, streams: usize, seconds: f64) -> Vec<Vec<Vec<u8>>> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: streams,
        duration_s: seconds,
        ..DatabaseConfig::default()
    });
    let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let n = config.packet_len();
    (0..db.len())
        .map(|i| {
            let record = db.record(i);
            let adc = record.adc();
            let lead = |c: usize| -> Vec<i16> {
                resample_360_to_256(&record.signal_mv(c))
                    .iter()
                    .map(|&v| adc.to_signed(adc.quantize(v)))
                    .collect()
            };
            let (lead0, lead1) = (lead(0), lead(1));
            let mut enc = MultiChannelEncoder::new(config, Arc::clone(&cb), 2).unwrap();
            let mut frames = Vec::new();
            for w in 0..lead0.len().min(lead1.len()) / n {
                let leads = [&lead0[w * n..(w + 1) * n], &lead1[w * n..(w + 1) * n]];
                for packet in enc.encode_frame(&leads).unwrap() {
                    frames.push(packet.to_bytes());
                }
            }
            frames
        })
        .collect()
}

type Captured = BTreeMap<(usize, u8, u64), (PacketOutcome, Vec<u32>)>;

/// Runs the wire fleet, capturing every emitted window keyed by
/// `(stream, lead, window index)` with samples as exact bit patterns.
fn run_and_capture(
    config: &SystemConfig,
    traffic: &[Vec<Vec<u8>>],
    fleet: &FleetConfig,
    sink: Option<&Mutex<ArchiveSink>>,
) -> Captured {
    let cb = Arc::new(uniform_codebook(config.alphabet()).unwrap());
    let captured = Mutex::new(BTreeMap::new());
    let capture = |p: &cs_ecg_monitor::system::FleetPacket<f32>| {
        let bits: Vec<u32> = p.packet.samples.iter().map(|s| s.to_bits()).collect();
        let prev = captured
            .lock()
            .unwrap()
            .insert((p.stream, p.channel, p.packet.index), (p.outcome, bits));
        assert!(prev.is_none(), "duplicate emission for one window");
    };
    let registry = TelemetryRegistry::disabled();
    match sink {
        Some(sink) => run_fleet_wire_archived::<f32, _>(
            config,
            cb,
            traffic,
            SolverPolicy::default(),
            fleet,
            &registry,
            sink,
            capture,
        ),
        None => run_fleet_wire::<f32, _>(
            config,
            cb,
            traffic,
            SolverPolicy::default(),
            fleet,
            &registry,
            capture,
        ),
    }
    .expect("fleet run failed");
    captured.into_inner().unwrap()
}

/// A fault-free session archived live, then replayed from disk through
/// the same decoder, reproduces the live decoded output bit-for-bit.
#[test]
fn replayed_session_matches_live_decode_bit_for_bit() {
    let config = SystemConfig::paper_default();
    let traffic = fleet_traffic(&config, 3, 12.0);
    let fleet = FleetConfig { workers: 3, warm_start: true, ..FleetConfig::default() };

    let root = tmp_root("bitexact");
    let sink = Mutex::new(ArchiveSink::create(&root, ArchiveConfig::default()).unwrap());
    let live = run_and_capture(&config, &traffic, &fleet, Some(&sink));
    sink.into_inner().unwrap().finish().unwrap();

    // The archive holds exactly the bytes that crossed the wire.
    let (archive, recovery) = Archive::open(&root).unwrap();
    assert_eq!(recovery.torn_tails, 0, "clean close must not tear");
    let replay_traffic: Vec<Vec<Vec<u8>>> = (0..traffic.len())
        .map(|p| archive.replay_stream(p as u32).unwrap())
        .collect();
    for (p, frames) in traffic.iter().enumerate() {
        assert_eq!(&replay_traffic[p], frames, "stream {p} replays byte-for-byte");
    }

    // And feeding it back through the decoder reproduces the live run.
    let replayed = run_and_capture(&config, &replay_traffic, &fleet, None);
    assert_eq!(live.len(), replayed.len());
    for (key, (outcome, bits)) in &live {
        let (r_outcome, r_bits) = replayed
            .get(key)
            .unwrap_or_else(|| panic!("replay missing window {key:?}"));
        assert_eq!(outcome, r_outcome, "outcome diverged at {key:?}");
        assert_eq!(bits, r_bits, "samples diverged at {key:?}");
    }

    std::fs::remove_dir_all(&root).unwrap();
}

/// `replay_range` seeks: a mid-session range yields exactly the requested
/// window indices, in order, with the same bytes the encoder produced.
#[test]
fn replay_range_selects_exact_windows() {
    let config = SystemConfig::paper_default();
    let traffic = fleet_traffic(&config, 1, 24.0); // 12 windows × 2 lanes
    let root = tmp_root("range");
    let mut w = ArchiveWriter::create(
        &root,
        ArchiveConfig { index_every: 2, ..ArchiveConfig::default() },
    )
    .unwrap();
    let mut lane0 = Vec::new();
    for frame in &traffic[0] {
        let (info, _) = cs_ecg_monitor::system::parse_frame(frame).unwrap();
        w.append(0, info.lane, info.index, frame).unwrap();
        if info.lane == 0 {
            lane0.push((info.index, frame.clone()));
        }
    }
    w.finish().unwrap();

    let (archive, _) = Archive::open(&root).unwrap();
    let got: Vec<_> = archive
        .replay_range(0, 0, 3..9)
        .unwrap()
        .collect::<std::io::Result<Vec<_>>>()
        .unwrap();
    let want: Vec<_> = lane0.iter().filter(|(s, _)| (3..9).contains(s)).collect();
    assert_eq!(got.len(), want.len());
    for (g, (seq, bytes)) in got.iter().zip(&want) {
        assert_eq!(g.seq, *seq);
        assert_eq!(&g.bytes, bytes);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Appending must outpace real time by ≥100×: the paper's mote emits one
/// 512-sample window every 2 s per lead, so archiving 48 windows (96 s of
/// signal) must take under 0.96 s even with periodic fsync.
#[test]
fn append_outpaces_realtime_by_100x() {
    let config = SystemConfig::paper_default();
    let traffic = fleet_traffic(&config, 1, 100.0);
    let frames: Vec<&Vec<u8>> = traffic[0].iter().collect();
    assert!(frames.len() >= 96, "need ≥48 windows × 2 lanes, got {}", frames.len());
    let windows = 48usize;
    let signal_seconds = windows as f64 * config.packet_len() as f64 / 256.0;

    let root = tmp_root("throughput");
    let mut w = ArchiveWriter::create(
        &root,
        ArchiveConfig { fsync: FsyncPolicy::EveryN(8), ..ArchiveConfig::default() },
    )
    .unwrap();
    let start = Instant::now();
    for frame in frames.iter().take(windows * 2) {
        let (info, _) = cs_ecg_monitor::system::parse_frame(frame).unwrap();
        w.append(0, info.lane, info.index, frame).unwrap();
    }
    w.finish().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed * 100.0 < signal_seconds,
        "archived {signal_seconds} s of signal in {elapsed} s — under the 100× floor"
    );
    std::fs::remove_dir_all(&root).unwrap();
}
