//! Offline codebook training — the step that produces the 1.5 kB table
//! flashed onto the mote (§IV-A2).
//!
//! Trains on part of the corpus, reports the code's statistics, shows that
//! the canonical codebook round-trips through its 512 serialized length
//! bytes, and quantifies the benefit over an untrained (uniform) code on
//! held-out records.
//!
//! ```text
//! cargo run --release --example codebook_training
//! ```

use cs_ecg_monitor::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 6,
        duration_s: 20.0,
        ..DatabaseConfig::default()
    });
    let config = SystemConfig::paper_default();

    // Train on records 0–2.
    let mut training = Vec::new();
    for i in 0..3 {
        let samples = prepare(&db.record(i));
        training.extend(packetize(&samples, config.packet_len()).map(|p| p.to_vec()));
    }
    println!("training on {} packets from 3 records…", training.len());
    let trained = Arc::new(train_codebook(&config, training)?);

    println!(
        "codebook: alphabet {}, max codeword {} bits (cap {}), mote storage {} B (paper: 1.5 kB)",
        trained.alphabet_size(),
        trained.max_length(),
        cs_ecg_monitor::codec::MAX_CODE_LEN,
        trained.mote_storage_bytes()
    );

    // Canonical codes serialize as just the length bytes.
    let lengths = trained.lengths().to_vec();
    let rebuilt = Codebook::from_lengths(&lengths)?;
    assert_eq!(*trained, rebuilt);
    println!(
        "serialization: {} length bytes reconstruct the identical codebook ✓",
        lengths.len()
    );

    // Held-out comparison: records 3–5, trained vs uniform codebook.
    let uniform = Arc::new(uniform_codebook(config.alphabet())?);
    let mut trained_bits = 0.0;
    let mut uniform_bits = 0.0;
    let mut packets = 0usize;
    for i in 3..6 {
        let samples = prepare(&db.record(i));
        let rt = evaluate_stream::<f64>(&config, Arc::clone(&trained), &samples, SolverPolicy::default())?;
        let ru = evaluate_stream::<f64>(&config, Arc::clone(&uniform), &samples, SolverPolicy::default())?;
        for (a, b) in rt.packets.iter().zip(&ru.packets) {
            trained_bits += a.payload_bits as f64;
            uniform_bits += b.payload_bits as f64;
            packets += 1;
        }
    }
    println!(
        "\nheld-out ({} packets): trained {:.0} bits/packet vs uniform {:.0} bits/packet \
         ({:.1} % smaller)",
        packets,
        trained_bits / packets as f64,
        uniform_bits / packets as f64,
        (1.0 - trained_bits / uniform_bits) * 100.0
    );
    Ok(())
}

fn prepare(record: &Record) -> Vec<i16> {
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect()
}
