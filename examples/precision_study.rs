//! Precision study: the same decoder at f64 (the paper's Matlab
//! reference) and f32 (the iPhone port), packet by packet — the detailed
//! view behind Fig. 6's "same accuracy" claim.
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use cs_ecg_monitor::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: 24.0,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    let samples: Vec<i16> = at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();

    let config = SystemConfig::paper_default();
    let training = packetize(&samples, config.packet_len()).take(3).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training)?);

    let mut encoder = Encoder::new(&config, Arc::clone(&codebook))?;
    let mut dec64: Decoder<f64> =
        Decoder::new(&config, Arc::clone(&codebook), SolverPolicy::default())?;
    let mut dec32: Decoder<f32> = Decoder::new(&config, codebook, SolverPolicy::default())?;

    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>14}",
        "packet", "PRD f64", "PRD f32", "ΔPRD", "max |Δx| (LSB)"
    );
    let mut worst_gap = 0.0_f64;
    for packet in packetize(&samples, config.packet_len()) {
        let wire = encoder.encode_packet(packet)?;
        let o64 = dec64.decode_packet(&wire)?;
        let o32 = dec32.decode_packet(&wire)?;

        let x: Vec<f64> = packet.iter().map(|&v| v as f64).collect();
        let x64: Vec<f64> = o64.samples.clone();
        let x32: Vec<f64> = o32.samples.iter().map(|&v| v as f64).collect();
        let p64 = prd(&x, &x64);
        let p32 = prd(&x, &x32);
        let max_dx = x64
            .iter()
            .zip(&x32)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        worst_gap = worst_gap.max((p64 - p32).abs());
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>12.4} {:>14.3}",
            wire.index,
            p64,
            p32,
            p64 - p32,
            max_dx
        );
    }
    println!(
        "\nworst |PRD(f64) − PRD(f32)| = {worst_gap:.4} — the paper's Fig. 6 shows the \
         curves coinciding; anything well under one PRD point confirms it."
    );
    Ok(())
}
