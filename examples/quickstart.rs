//! Quickstart: compress and reconstruct one ECG stream with the paper's
//! default system (CR 50 %, sparse binary d = 12, db4, FISTA).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cs_ecg_monitor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get ECG the way the paper does: a two-channel 360 Hz record,
    //    resampled to 256 Hz and digitized at 11 bits over 10 mV.
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: 20.0,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    let samples: Vec<i16> = at_256
        .iter()
        .map(|&v| adc.to_signed(adc.quantize(v)))
        .collect();
    println!(
        "record {}: {:.1} s of ECG, {} beats annotated",
        record.id(),
        record.duration_s(),
        record.annotations().len()
    );

    // 2. Configure the system — both sides share this.
    let config = SystemConfig::paper_default();
    println!(
        "system: N = {}, M = {} (CR {:.0} %), d = {}, wavelet {} × {} levels",
        config.packet_len(),
        config.measurements(),
        config.compression_ratio(),
        config.sparse_ones_per_column(),
        config.wavelet_family(),
        config.levels()
    );

    // 3. Train the offline Huffman codebook on the first packets, then
    //    run the full encode → wire → decode loop.
    let report = train_and_evaluate::<f64>(&config, &samples, 3, SolverPolicy::default())?;

    println!("\n{:>6} {:>8} {:>8} {:>8} {:>7} {:>10}", "packet", "CR %", "PRD %", "SNR dB", "iters", "quality");
    for p in &report.packets {
        println!(
            "{:>6} {:>8.1} {:>8.2} {:>8.2} {:>7} {:>10}",
            p.index,
            p.cr_percent,
            p.prd,
            p.snr_db,
            p.iterations,
            DiagnosticQuality::from_prd(p.prd).to_string()
        );
    }
    println!(
        "\nmean: CR {:.1} %, PRD {:.2} %, SNR {:.2} dB over {} packets",
        report.cr.mean(),
        report.prd.mean(),
        report.snr_db.mean(),
        report.packets.len()
    );
    Ok(())
}
