//! Empirical restricted-isometry diagnostics for the sensing ensembles
//! (the numerical backdrop of the paper's §II-A RIP discussion and the
//! sparse-binary RIP-p argument of its ref. [19]).
//!
//! Samples random S-sparse vectors and reports the spread of
//! `‖Φx‖/‖x‖` plus mutual coherence, for each matrix the paper considers.
//!
//! ```text
//! cargo run --release --example rip_check
//! ```

use cs_ecg_monitor::prelude::*;
use cs_ecg_monitor::sensing::{estimate_isometry, mutual_coherence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let m = 256; // CR 50
    let sparsity = 32;
    let trials = 200;

    let sparse = SparseBinarySensing::new(m, n, 12, 7)?;
    let gauss: DenseSensing<f64> = DenseSensing::gaussian(m, n, 7)?;
    let quant: DenseSensing<f64> = DenseSensing::quantized_gaussian(m, n, 7)?;
    let bern: DenseSensing<f64> = DenseSensing::bernoulli(m, n, 7)?;

    println!(
        "Φ ensembles at M = {m}, N = {n}; S = {sparsity}, {trials} random sparse vectors\n"
    );
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "ensemble", "min", "mean", "max", "δ̂_S", "coherence"
    );

    let row = |name: &str, est: cs_ecg_monitor::sensing::IsometryEstimate, mu: f64| {
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10.3}",
            name,
            est.min_ratio,
            est.mean_ratio,
            est.max_ratio,
            est.delta_lower_bound(),
            mu
        );
    };

    row(
        "sparse binary (d = 12)",
        estimate_isometry(|x| sparse.apply(x), n, sparsity, trials, 11),
        mutual_coherence(&sparse),
    );
    row(
        "Gaussian N(0, 1/N)",
        estimate_isometry(|x| gauss.apply(x), n, sparsity, trials, 11),
        mutual_coherence(&gauss),
    );
    row(
        "quantized Gaussian (8-bit)",
        estimate_isometry(|x| quant.apply(x), n, sparsity, trials, 11),
        mutual_coherence(&quant),
    );
    row(
        "Bernoulli ±1/√N",
        estimate_isometry(|x| bern.apply(x), n, sparsity, trials, 11),
        mutual_coherence(&bern),
    );

    println!(
        "\nAll four concentrate their ratios in a narrow band (near-isometry on sparse\n\
         vectors); the sparse binary ensemble does so with 12 nonzeros per column\n\
         instead of {m} — which is the entire point of §IV-A2."
    );
    Ok(())
}
