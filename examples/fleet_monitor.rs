//! Fleet monitoring: several two-lead patients decoded concurrently by
//! the worker-pool engine — the ward-server generalization of the
//! paper's one-patient iPhone demo.
//!
//! Runs the same traffic twice, cold and warm-started, and reports
//! per-patient quality, worker balance, the shared spectral cache, and
//! the warm-start iteration saving. Both passes decode against a live
//! telemetry registry; a JSON-Lines snapshot of it is emitted every
//! `SNAPSHOT_EVERY` packets. Exits non-zero if any stream comes up
//! short of its expected packets (a decode error upstream).
//!
//! ## JSONL schema
//!
//! Each emitted line is one self-contained JSON object (no trailing
//! comma, LF-terminated), so `fleet_monitor | jq` works line by line:
//!
//! * `uptime_s` — seconds since the registry was created (monotonic);
//! * `ts_unix_s` — absolute wall-clock seconds since the Unix epoch at
//!   snapshot time, for correlating lines across hosts and restarts;
//! * `stages` — per-stage latency quantiles (`p50_ns`/`p95_ns`/...);
//! * `e2e` — per-patient end-to-end latency quantiles (traced runs);
//! * `slo` — per-patient health: `health` (healthy/degraded/stalled),
//!   `emits`, `deadline_misses`, `freshness_s` (age of the newest
//!   emission), burn rates, and per-lane `{lane, newest_seq, age_s}`
//!   freshness watermarks;
//! * `faults`, `workers`, `journal`, `scrapes`, `render` — fault
//!   counters, per-worker load, trace-journal and exporter
//!   self-observation;
//! * `clinical` — present once a clinical engine has recorded into the
//!   registry: `beats` (classified-beat census by class), `alarms`
//!   (per-kind `{raised, cleared, active}` counters), `suppressed`
//!   (alarm evaluations skipped inside concealed windows) and `qrs`
//!   (`{tp, fp, fn}` plus `sensitivity`/`ppv` once annotated beats have
//!   been scored). Zero-count classes and kinds are elided.
//!
//! The repo-level `jsonl_schema` test parses these lines back; extend
//! it when adding fields.
//!
//! ```text
//! cargo run --release --example fleet_monitor
//! ```

use cs_ecg_monitor::prelude::*;
use std::sync::Arc;

/// Emit one telemetry JSONL snapshot per this many delivered packets.
const SNAPSHOT_EVERY: u64 = 16;

fn prepare(record: &Record) -> Vec<i16> {
    let at256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let patients = 4;
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: patients,
        duration_s: 16.0,
        ..DatabaseConfig::default()
    });
    let config = SystemConfig::paper_default();
    let n = config.packet_len();

    let first = prepare(&db.record(0));
    let training = packetize(&first, n).take(5).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training)?);

    // Two leads per patient: the synthetic corpus is single-channel, so
    // lead II stands in for both (decode cost is what matters here).
    let leads: Vec<Vec<i16>> = (0..patients).map(|i| prepare(&db.record(i))).collect();
    let streams: Vec<FleetStream<'_>> = leads
        .iter()
        .map(|l| FleetStream { leads: vec![l, l] })
        .collect();

    // Every packet of both passes records into this live registry; the
    // JSONL lines below are its rolling state, not a post-hoc summary.
    let registry = TelemetryRegistry::new();
    let mut every = Every::new(SNAPSHOT_EVERY);
    let mut short_streams = Vec::new();
    let mut results = Vec::new();
    let deadline = registry.slo_config().deadline;
    for warm_start in [false, true] {
        let fleet = FleetConfig { warm_start, ..FleetConfig::default() };
        let mut stats = vec![StreamStats::new(); patients];
        let mut worst_prd = vec![0.0_f64; patients];
        let report = run_fleet_observed::<f32, _>(
            &config,
            Arc::clone(&codebook),
            &streams,
            SolverPolicy::default(),
            &fleet,
            &registry,
            |p| {
                stats[p.stream].record(
                    p.packet.iterations,
                    p.packet.solve_time.as_secs_f64(),
                    p.packet.warm_started,
                );
                if let Some(e2e) = p.e2e {
                    stats[p.stream].record_e2e(e2e.as_secs_f64(), e2e > deadline);
                }
                let frame = p.packet.index as usize;
                let truth: Vec<f64> = leads[p.stream][frame * n..(frame + 1) * n]
                    .iter()
                    .map(|&v| v as f64)
                    .collect();
                let recon: Vec<f64> = p.packet.samples.iter().map(|&v| v as f64).collect();
                // `try_prd`: a silent window (zero signal energy) reports
                // no quality figure instead of aborting the monitor.
                if let Some(prd) = try_prd(&truth, &recon) {
                    worst_prd[p.stream] = worst_prd[p.stream].max(prd);
                }
                if every.tick() {
                    println!("{}", registry.json_line());
                }
            },
        )?;

        // Each patient stream is two leads of `frames` packets; anything
        // less means a packet was lost to a decode error.
        let frames = leads[0].len() / n;
        for (i, s) in report.streams.iter().enumerate() {
            if s.packets < 2 * frames {
                short_streams.push((warm_start, i, s.packets, 2 * frames));
            }
        }

        println!(
            "== {} fleet: {} patients × 2 leads on {} workers ==",
            if warm_start { "warm" } else { "cold" },
            patients,
            report.workers
        );
        for (i, s) in stats.iter().enumerate() {
            println!(
                "patient {i}: {:3} packets, mean {:6.1} iterations, worst PRD {:5.1} % ({})",
                s.packets(),
                s.iterations.mean(),
                worst_prd[i],
                DiagnosticQuality::from_prd(worst_prd[i]),
            );
        }
        println!(
            "worker balance {:.2}, {} backpressure stalls, spectral cache {} miss / {} hits",
            worker_imbalance(&report.worker_packets),
            report.backpressure_stalls,
            report.spectral_misses,
            report.spectral_hits,
        );
        println!(
            "decoded {} packets in {:.2?} (solver total {:.2?})\n",
            report.packets_decoded, report.wall_time, report.total_decode_time
        );
        results.push(FleetStats::from_streams(&stats));
    }

    let saving = results[1].iteration_saving_vs(&results[0]) * 100.0;
    println!(
        "warm start: {:5.1} → {:5.1} mean iterations ({saving:.1} % saved)",
        results[0].iterations.mean(),
        results[1].iterations.mean()
    );
    let slo = registry.slo_snapshot();
    println!(
        "patient health: {} healthy, {} degraded, {} stalled ({} tracked)",
        slo.count_in(HealthState::Healthy),
        slo.count_in(HealthState::Degraded),
        slo.count_in(HealthState::Stalled),
        slo.patients.len()
    );
    println!("final telemetry: {}", registry.json_line());

    if !short_streams.is_empty() {
        for (warm, stream, got, expected) in &short_streams {
            eprintln!(
                "decode errors: {} fleet stream {stream} delivered {got} of {expected} packets",
                if *warm { "warm" } else { "cold" }
            );
        }
        std::process::exit(1);
    }
    Ok(())
}
