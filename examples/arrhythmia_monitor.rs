//! Diagnostic-quality gate on an arrhythmic record: does compression
//! preserve the beats a downstream detector needs?
//!
//! A PVC-heavy record is compressed at several CRs; the *streaming* QRS
//! detector ([`StreamingQrsDetector`]) consumes each reconstructed
//! window as it comes off the decoder — exactly the deployment shape of
//! the clinical subsystem, no whole-record buffering — and its
//! detections are scored against the synthesizer's ground-truth
//! annotations. This is the clinical-relevance angle of the paper's
//! intro: compression is only useful if the diagnosis survives.
//!
//! The example doubles as a regression gate: at the diagnostic CRs
//! (≤ 75 %) it exits non-zero if sensitivity or precision falls below
//! 95 %, so CI catches a detector or solver regression the moment it
//! lands.
//!
//! ```text
//! cargo run --release --example arrhythmia_monitor
//! ```

use cs_ecg_monitor::prelude::*;

/// Accuracy floor enforced at the diagnostic CRs (≤ `GATED_CR_MAX`).
const FLOOR: f64 = 0.95;
const GATED_CR_MAX: f64 = 75.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A record with forced heavy ectopy.
    let mut model_cfg = EcgModelConfig::default();
    model_cfg.rhythm.pvc_probability = 0.15;
    model_cfg.rhythm.mean_heart_rate_bpm = 80.0;
    let mut model = EcgModel::new(model_cfg, 2024);
    let (mv_360, beats) = model.synthesize(40.0);
    let pvcs = beats.iter().filter(|b| b.beat == BeatType::Pvc).count();
    println!(
        "synthesized 40 s with {} beats ({} PVCs) at 360 Hz",
        beats.len(),
        pvcs
    );

    // To 256 Hz signed counts; rescale annotation positions too.
    let at_256 = resample_360_to_256(&mv_360);
    let adc = AdcModel::mit_bih();
    let samples: Vec<i16> = at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();
    let truth: Vec<cs_ecg_monitor::ecg::BeatAnnotation> = beats
        .iter()
        .map(|b| cs_ecg_monitor::ecg::BeatAnnotation {
            sample: b.sample * 256 / 360,
            beat: b.beat,
        })
        .filter(|b| b.sample < samples.len())
        .collect();

    println!(
        "\n{:>5} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "CR %", "PRD %", "SNR dB", "detected", "sensitivity", "precision"
    );
    let mut regressions = Vec::new();
    for cr in [30.0, 50.0, 70.0, 85.0] {
        let config = SystemConfig::builder().compression_ratio(cr).build()?;
        let report = train_and_evaluate::<f64>(&config, &samples, 3, SolverPolicy::default())?;

        // Stream the decode: each reconstructed window is pushed into
        // the incremental detector the moment it exists.
        let detected = stream_and_detect(&config, &samples)?;
        let (sens, prec) = score_detections(&truth, &detected, 13); // ±50 ms

        println!(
            "{:>5.0} {:>8.2} {:>8.2} {:>12} {:>12.1} {:>12.1}",
            cr,
            report.prd.mean(),
            report.snr_db.mean(),
            detected.len(),
            sens * 100.0,
            prec * 100.0
        );
        if cr <= GATED_CR_MAX {
            if sens < FLOOR {
                regressions.push(format!("CR {cr:.0} %: sensitivity {:.1} %", sens * 100.0));
            }
            if prec < FLOOR {
                regressions.push(format!("CR {cr:.0} %: precision {:.1} %", prec * 100.0));
            }
        }
    }
    println!("\n(sensitivity/precision vs ground-truth R peaks, ±50 ms window)");
    if !regressions.is_empty() {
        eprintln!("REGRESSION: detection fell below {:.0} %:", FLOOR * 100.0);
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    println!("gate: all CRs ≤ {GATED_CR_MAX:.0} % held ≥ {:.0} % sensitivity and precision", FLOOR * 100.0);
    Ok(())
}

/// Round-trips the stream window by window, feeding each reconstructed
/// packet straight into the streaming detector. Returns absolute-sample
/// detection positions.
fn stream_and_detect(
    config: &SystemConfig,
    samples: &[i16],
) -> Result<Vec<usize>, Box<dyn std::error::Error>> {
    use std::sync::Arc;
    let training = packetize(samples, config.packet_len()).take(3).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(config, training)?);
    let mut encoder = Encoder::new(config, Arc::clone(&codebook))?;
    let mut decoder: Decoder<f64> = Decoder::new(config, codebook, SolverPolicy::default())?;
    let mut detector = StreamingQrsDetector::new(QrsDetectorConfig::at_256_hz());
    let mut detections = Vec::new();
    for packet in packetize(samples, config.packet_len()) {
        let wire = encoder.encode_packet(packet)?;
        let decoded = decoder.decode_packet(&wire)?;
        detector.push_window(&decoded.samples, &mut detections);
    }
    detector.flush(&mut detections);
    Ok(detections.into_iter().map(|d| d.sample).collect())
}
