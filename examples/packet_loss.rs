//! Failure injection: stream ECG through a lossy Bluetooth channel and
//! watch the reference-packet cadence bound the damage.
//!
//! A lost delta packet desynchronizes the differencing state; the decoder
//! refuses further deltas (rather than silently reconstructing garbage)
//! until the next reference packet restores it. The experiment sweeps the
//! bit error rate and the reference interval to show the availability /
//! compression trade-off.
//!
//! ```text
//! cargo run --release --example packet_loss
//! ```

use cs_ecg_monitor::platform::{ChannelModel, LossReport};
use cs_ecg_monitor::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 80 seconds of ECG → 40 packets.
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 1,
        duration_s: 80.0,
        ..DatabaseConfig::default()
    });
    let record = db.record(0);
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    let samples: Vec<i16> = at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();

    println!(
        "{:>10} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "BER", "ref every", "sent", "dropped", "rejected", "decoded", "goodput"
    );
    for ber in [0.0, 1e-5, 1e-4, 5e-4] {
        for interval in [4usize, 16, 64] {
            let config = SystemConfig::builder()
                .reference_interval(interval)
                .build()?;
            let training = packetize(&samples, config.packet_len()).take(4).map(|p| p.to_vec());
            let codebook = Arc::new(train_codebook(&config, training)?);
            let mut encoder = Encoder::new(&config, Arc::clone(&codebook))?;
            let mut decoder: Decoder<f32> =
                Decoder::new(&config, codebook, SolverPolicy::default())?;
            let mut channel = ChannelModel::new(ber, 0xC4A2 + interval as u64);

            let mut report = LossReport::default();
            for packet in packetize(&samples, config.packet_len()) {
                let wire = encoder.encode_packet(packet)?;
                report.sent += 1;
                if !channel.transmit(wire.framed_bytes()) {
                    report.dropped += 1;
                    decoder.desynchronize();
                    continue;
                }
                match decoder.decode_packet(&wire) {
                    Ok(_) => report.decoded += 1,
                    Err(_) => report.rejected += 1,
                }
            }
            println!(
                "{:>10.0e} {:>10} {:>8} {:>9} {:>9} {:>9} {:>8.1}%",
                ber,
                interval,
                report.sent,
                report.dropped,
                report.rejected,
                report.decoded,
                report.goodput() * 100.0
            );
        }
    }
    println!(
        "\nShort reference intervals cost compression (more raw packets) but cap the\n\
         post-loss outage; long intervals compress better and stall longer after a loss."
    );
    Ok(())
}
