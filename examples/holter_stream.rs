//! Holter-style continuous monitoring: stream several records through the
//! threaded producer–consumer pipeline (the iPhone app's structure) and
//! report real-time behaviour plus platform-model numbers — an end-to-end
//! analogue of the paper's Fig. 8 demo.
//!
//! ```text
//! cargo run --release --example holter_stream
//! ```

use cs_ecg_monitor::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 3,
        duration_s: 30.0,
        ..DatabaseConfig::default()
    });
    let config = SystemConfig::paper_default();

    // Train the codebook once, offline, on the first record.
    let first = prepare(&db.record(0));
    let training = packetize(&first, config.packet_len()).take(5).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training)?);

    let mote = MoteSpec::msp430f1611();
    let coordinator = CoordinatorSpec::iphone_3gs();

    for idx in 0..db.len() {
        let record = db.record(idx);
        let samples = prepare(&record);
        let mut solves = Vec::new();
        let report = run_streaming::<f32, _>(
            &config,
            Arc::clone(&codebook),
            &samples,
            SolverPolicy::default(),
            |decoded| {
                solves.push(cs_ecg_monitor::platform::SolveSample {
                    iterations: decoded.iterations,
                    solve_time: decoded.solve_time,
                });
            },
        )?;
        let rt = analyze_solves(&coordinator, &solves);
        println!(
            "record {}: {} packets, real-time = {}, worst packet {:.1} % of budget, \
             coordinator CPU {:.1} % (model)",
            record.id(),
            report.packets_delivered,
            report.real_time,
            rt.worst_case_fraction_of_budget * 100.0,
            rt.cpu_usage_percent
        );
    }

    // Node-side summary for one representative packet.
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook))?;
    let samples = prepare(&db.record(0));
    let _ = encoder.encode_packet(&samples[..config.packet_len()])?;
    let wire = encoder.encode_packet(&samples[config.packet_len()..2 * config.packet_len()])?;
    let cost = encode_cost(&mote, &config, &wire);
    println!(
        "\nnode (MSP430 model): {:.1} ms per 2-s packet → {:.2} % CPU (paper: < 5 %)",
        cost.time_on(&mote).as_secs_f64() * 1e3,
        cost.cpu_utilization(&mote, Duration::from_secs(2)) * 100.0
    );
    println!("{}", encoder_footprint(&config, &codebook).to_table());
    Ok(())
}

/// 360 Hz record → 256 Hz signed counts (the mote's serial input).
fn prepare(record: &Record) -> Vec<i16> {
    let at_256 = resample_360_to_256(&record.signal_mv(0));
    let adc = record.adc();
    at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect()
}
