//! Exports the synthetic corpus in PhysioNet WFDB format (format-212
//! `.dat` + `.hea`), so the records can be inspected with standard WFDB
//! tooling or swapped for real MIT-BIH files where licensing allows.
//!
//! ```text
//! cargo run --release --example export_wfdb [output_dir]
//! ```

use cs_ecg_monitor::ecg::wfdb::{record_to_wfdb, unpack_212, WfdbHeader};
use cs_ecg_monitor::prelude::*;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/wfdb-export"));
    fs::create_dir_all(&out_dir)?;

    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: 4,
        duration_s: 30.0,
        ..DatabaseConfig::default()
    });

    for i in 0..db.len() {
        let record = db.record(i);
        let (hea, dat) = record_to_wfdb(&record);
        let base = out_dir.join(record.id());
        fs::write(base.with_extension("hea"), &hea)?;
        fs::write(base.with_extension("dat"), &dat)?;

        // Verify what we wrote parses and round-trips.
        let header =
            WfdbHeader::parse(&hea).ok_or("exported header failed to parse")?;
        assert_eq!(header.num_samples, record.len());
        let (ch0, _) = unpack_212(&dat, record.len());
        assert_eq!(ch0, record.signed_samples(0));

        println!(
            "wrote {}.hea / .dat — {} samples × {} ch @ {} Hz, {} beats annotated",
            base.display(),
            record.len(),
            record.num_channels(),
            record.sample_rate_hz(),
            record.annotations().len()
        );
    }
    println!("\nexport verified: headers parse and format-212 packing round-trips");
    Ok(())
}
